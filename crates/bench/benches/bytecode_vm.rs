//! Experiment B6: the compiled ClightX execution tier — slot-resolved
//! bytecode on a compact register VM (`ccal_clightx::{compile, vm}`) —
//! against the tree-walking interpreter, on the interpreted ticket
//! stack's hot path (the `acq` spin loop; see DESIGN.md).
//!
//! Run with `cargo bench -p ccal-bench --bench bytecode_vm`; pass
//! `-- --quick` (or set `CCAL_BENCH_QUICK=1`) for a fast smoke run.
//! Works with or without the `criterion` feature — the metric is the
//! engine's primitive-step counters plus plain wall-clock timing.
//!
//! This binary owns its process, so the process-global step counters are
//! exact; it doubles as the acceptance gate for the compile tier: at
//! `L = 5` the VM's primitive steps (retired instructions) must be at
//! most 0.6 of the interpreter's (popped work items) on the same
//! certification — a counter ratio, not a wall-clock one, so the gate
//! holds on single-core and noisy hosts. The machine-level atom-steps
//! must agree *exactly* between tiers: the tiers are bit-identical above
//! the primitive boundary, and any drift is a correctness bug, not a
//! performance regression.
//!
//! It also emits `BENCH_6.json` at the repo root — machine-readable
//! primitive-step ratios per schedule length — so the perf trajectory is
//! tracked across changes.

use std::fmt::Write as _;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("CCAL_BENCH_QUICK").is_some();
    let lens: &[usize] = if quick { &[3, 5] } else { &[3, 4, 5] };

    let rows: Vec<_> = lens
        .iter()
        .map(|&l| ccal_bench::scaling::bytecode_row(l))
        .collect();
    println!("{}", ccal_bench::scaling::render_bytecode_rows(&rows));

    for r in &rows {
        assert_eq!(
            r.atom_steps_vm, r.atom_steps_interp,
            "tier drift at L={}: the machine-level atom-steps must be \
             bit-identical across tiers",
            r.schedule_len
        );
    }
    let gate = rows
        .iter()
        .find(|r| r.schedule_len == 5)
        .expect("L=5 row present");
    assert!(
        gate.prim_step_ratio() <= 0.6,
        "B6 acceptance: the compiled tier must cut the primitive steps to \
         <= 0.6 of the interpreter's at L=5, got {} of {} ({:.2})",
        gate.prim_steps_vm,
        gate.prim_steps_interp,
        gate.prim_step_ratio()
    );
    println!(
        "B6 acceptance: L=5 prim-step ratio {:.3} <= 0.6 (vm {} vs interp {})",
        gate.prim_step_ratio(),
        gate.prim_steps_vm,
        gate.prim_steps_interp
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
    std::fs::write(path, render_json(&rows)).expect("write BENCH_6.json");
    println!("wrote {path}");
}

/// Renders the machine-readable benchmark record. Hand-rolled JSON — the
/// workspace is offline and the fields are flat numbers.
fn render_json(rows: &[ccal_bench::scaling::BytecodeRow]) -> String {
    // Recorded so step-ratio trajectories can be compared across hosts:
    // wall-clock sanity numbers depend on the machine's parallelism.
    let hw = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut out = format!("{{\n  \"hardware_threads\": {hw},\n  \"b6\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"len\": {}, \"grid\": {}, \"cases\": {}, \"prim_steps_vm\": {}, \
             \"prim_steps_interp\": {}, \"atom_steps\": {}, \"ratio\": {:.4}}}",
            r.schedule_len,
            r.grid,
            r.cases,
            r.prim_steps_vm,
            r.prim_steps_interp,
            r.atom_steps_vm,
            r.prim_step_ratio(),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
