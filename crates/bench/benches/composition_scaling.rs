//! Experiment B1: compositional vs. monolithic schedule-space exploration
//! — the quantitative form of the paper's local-reasoning claim (§1).
//!
//! Run with `cargo bench -p ccal-bench --bench composition_scaling`.

fn main() {
    println!("{}", ccal_bench::scaling::render_scaling(&[2, 3, 4, 5]));
}
