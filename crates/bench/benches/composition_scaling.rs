//! Experiment B1: compositional vs. monolithic schedule-space exploration
//! — the quantitative form of the paper's local-reasoning claim (§1) —
//! plus the serial vs. parallel engine axis (workers × dedup), and
//! experiment B2: the sleep-set partial-order reduction axis (POR off vs
//! on, serial vs parallel) on the four-pid ticket-lock grid.
//!
//! Run with `cargo bench -p ccal-bench --bench composition_scaling`;
//! pass `-- --quick` (or set `CCAL_BENCH_QUICK=1`) for a fast smoke run.
//! Works with or without the `criterion` feature — it uses plain
//! wall-clock timing either way.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("CCAL_BENCH_QUICK").is_some();
    let lens: &[usize] = if quick { &[2, 3] } else { &[2, 3, 4, 5, 6, 7] };
    println!("{}", ccal_bench::scaling::render_scaling(lens));
    let por_lens: &[usize] = if quick { &[3] } else { &[3, 4, 5] };
    println!("{}", ccal_bench::scaling::render_por(por_lens));
    println!("{}", ccal_bench::scaling::render_por_widened(por_lens));
}
