//! Experiment B7: convergence dedup — canonical state fingerprints
//! collapsing diamond schedules — on the contended ticket stack (see
//! DESIGN.md §"Convergence dedup").
//!
//! Run with `cargo bench -p ccal-bench --bench convergence`; pass
//! `-- --quick` (or set `CCAL_BENCH_QUICK=1`) for a fast smoke run.
//! Works with or without the `criterion` feature — the metric is the
//! engine's atom-step counters plus plain wall-clock timing.
//!
//! This binary owns its process, so the process-global step counters are
//! exact; it doubles as the acceptance gate for the convergence cache:
//! at `L = 5` the dedup run's machine-level atom-steps must be at most
//! 0.6 of the baseline's on the same certification — a counter ratio,
//! not a wall-clock one, so the gate holds on single-core and noisy
//! hosts. The discharged cases, verdicts and rendered outcomes must
//! agree *exactly* between cache settings (asserted inside
//! `scaling::convergence_row` and `scaling::convergence_checker_stats`):
//! the cache is observationally inert, and any drift is a correctness
//! bug, not a performance regression.
//!
//! It also emits `BENCH_7.json` at the repo root — machine-readable
//! atom-step ratios per schedule length plus per-checker hit/evict
//! counters — so the perf trajectory is tracked across changes.

use std::fmt::Write as _;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("CCAL_BENCH_QUICK").is_some();
    let lens: &[usize] = if quick { &[3, 5] } else { &[3, 4, 5] };

    let rows: Vec<_> = lens
        .iter()
        .map(|&l| ccal_bench::scaling::convergence_row(l))
        .collect();
    println!("{}", ccal_bench::scaling::render_convergence_rows(&rows));

    let stats = ccal_bench::scaling::convergence_checker_stats();
    println!("{}", ccal_bench::scaling::render_checker_stats(&stats));
    for s in &stats {
        assert!(
            s.conv_hits > 0,
            "B7: the {} checker produced no convergence hits on its ticket \
             workload — the cache is not reaching that kernel path",
            s.checker
        );
    }

    let gate = rows
        .iter()
        .find(|r| r.schedule_len == 5)
        .expect("L=5 row present");
    assert!(
        gate.atom_step_ratio() <= 0.6,
        "B7 acceptance: convergence dedup must cut the atom-steps to <= 0.6 \
         of the baseline's at L=5 on the contended ticket stack, got {} of \
         {} ({:.2})",
        gate.atom_steps_dedup,
        gate.atom_steps_base,
        gate.atom_step_ratio()
    );
    println!(
        "B7 acceptance: L=5 atom-step ratio {:.3} <= 0.6 (dedup {} vs base {})",
        gate.atom_step_ratio(),
        gate.atom_steps_dedup,
        gate.atom_steps_base
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    std::fs::write(path, render_json(&rows, &stats)).expect("write BENCH_7.json");
    println!("wrote {path}");
}

/// Renders the machine-readable benchmark record. Hand-rolled JSON — the
/// workspace is offline and the fields are flat numbers.
fn render_json(
    rows: &[ccal_bench::scaling::ConvergenceRow],
    stats: &[ccal_bench::scaling::ConvCheckerStat],
) -> String {
    // Recorded so step-ratio trajectories can be compared across hosts:
    // wall-clock sanity numbers depend on the machine's parallelism.
    let hw = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut out = format!("{{\n  \"hardware_threads\": {hw},\n  \"b7\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"len\": {}, \"grid\": {}, \"cases\": {}, \"atom_steps_base\": {}, \
             \"atom_steps_dedup\": {}, \"conv_hits\": {}, \"conv_evictions\": {}, \
             \"ratio\": {:.4}}}",
            r.schedule_len,
            r.grid,
            r.cases,
            r.atom_steps_base,
            r.atom_steps_dedup,
            r.conv_hits,
            r.conv_evictions,
            r.atom_step_ratio(),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"b7_checkers\": [\n");
    for (i, s) in stats.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"checker\": \"{}\", \"cases\": {}, \"atom_steps_base\": {}, \
             \"atom_steps_dedup\": {}, \"conv_hits\": {}, \"conv_evictions\": {}}}",
            s.checker, s.cases, s.atom_steps_base, s.atom_steps_dedup, s.conv_hits,
            s.conv_evictions,
        );
        out.push_str(if i + 1 < stats.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
