//! Experiment B3: ticket vs. MCS lock under contention on the simulated
//! multicore machine (the comparison behind the companion evaluations of
//! Gu et al. [16] and Kim et al. [24]).
//!
//! The two implementations are *interchangeable* behind the same atomic
//! interface (§6); this bench runs each under 1, 2 and 4 contending
//! participants and reports (a) wall time per acquisition on the game
//! machine and (b) the number of shared probe events per acquisition —
//! the simulator-visible analog of interconnect traffic, where MCS's
//! local spinning is expected to scale better than the ticket lock's
//! global `get_n` polling.
//!
//! Run with `cargo bench -p ccal-bench --bench lock_contention`.

use std::collections::BTreeMap;
use std::sync::Arc;

use ccal_core::conc::ConcurrentMachine;
use ccal_core::env::EnvContext;
use ccal_core::event::EventKind;
use ccal_core::id::{Loc, Pid, PidSet};
use ccal_core::layer::LayerInterface;
use ccal_core::strategy::RoundRobinScheduler;
use ccal_core::val::Val;
use ccal_objects::mcs::{l0_mcs_interface, MCS_SOURCE};
use ccal_objects::ticket::{l0_interface, M1_SOURCE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn installed(src: &str, base: LayerInterface) -> LayerInterface {
    ccal_clightx::clightx_module("M", src)
        .expect("lock module parses")
        .install(&base)
        .expect("lock module installs")
}

fn contended_run(iface: &LayerInterface, ncpus: u32, rounds: usize) -> ccal_core::conc::ConcurrentOutcome {
    let b = Loc(0);
    let domain: Vec<Pid> = (0..ncpus).map(Pid).collect();
    let env = EnvContext::new(Arc::new(RoundRobinScheduler::new(domain.clone())));
    let machine = ConcurrentMachine::new(iface.clone(), PidSet::from_pids(domain.clone()), env)
        .with_fuel(2_000_000);
    let mut programs = BTreeMap::new();
    for pid in domain {
        let mut script = Vec::new();
        for _ in 0..rounds {
            script.push(("acq".to_owned(), vec![Val::Loc(b)]));
            script.push(("rel".to_owned(), vec![Val::Loc(b)]));
        }
        programs.insert(pid, script);
    }
    machine.run(&programs).expect("contended run completes")
}

fn probe_events(out: &ccal_core::conc::ConcurrentOutcome) -> usize {
    out.log
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::GetN(_) | EventKind::McsGetLocked(_)
            )
        })
        .count()
}

fn bench_contention(c: &mut Criterion) {
    let ticket = installed(M1_SOURCE, l0_interface());
    let mcs = installed(MCS_SOURCE, l0_mcs_interface());
    let rounds = 3;
    let mut group = c.benchmark_group("lock-contention");
    group.sample_size(10);
    for ncpus in [1_u32, 2, 4] {
        group.bench_with_input(BenchmarkId::new("ticket", ncpus), &ncpus, |b, &n| {
            b.iter(|| contended_run(&ticket, n, rounds));
        });
        group.bench_with_input(BenchmarkId::new("mcs", ncpus), &ncpus, |b, &n| {
            b.iter(|| contended_run(&mcs, n, rounds));
        });
    }
    group.finish();

    println!("\nB3 summary — shared probe events per acquisition (lower = less interconnect traffic):");
    println!("{:>6} {:>14} {:>14}", "cpus", "ticket", "mcs");
    for ncpus in [1_u32, 2, 4] {
        let t = contended_run(&ticket, ncpus, rounds);
        let m = contended_run(&mcs, ncpus, rounds);
        let acqs = (ncpus as usize) * rounds;
        println!(
            "{:>6} {:>14.2} {:>14.2}",
            ncpus,
            probe_events(&t) as f64 / acqs as f64,
            probe_events(&m) as f64 / acqs as f64
        );
    }
    println!();
}

criterion_group!(benches, bench_contention);
criterion_main!(benches);
