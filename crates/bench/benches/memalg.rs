//! Experiment F12: the algebraic memory model (Fig. 12) at scale —
//! composing N per-thread memories (frames + placeholders) into the
//! CPU-local memory, as the thread-safe linking construction does (§5.5).
//!
//! Run with `cargo bench -p ccal-bench --bench memalg`.

use ccal_compcertx::link::simulate_threaded_linking;
use ccal_compcertx::memalg::{compose_n, ld};
use ccal_machine::mem::{Addr, Memory};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds `threads` private memories over `blocks` total frames, block
/// `i` live in thread `i % threads`, placeholders elsewhere.
fn thread_memories(threads: usize, blocks: usize) -> Vec<Memory> {
    let mut mems = vec![Memory::new(); threads];
    for i in 0..blocks {
        for (t, m) in mems.iter_mut().enumerate() {
            if i % threads == t {
                let b = m.alloc(2);
                m.store(Addr::new(b, 0), ccal_core::val::Val::Int(i as i64))
                    .expect("fresh block");
            } else {
                m.liftnb(1);
            }
        }
    }
    mems
}

fn bench_memalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("memalg-compose");
    for &(threads, blocks) in &[(2_usize, 64_usize), (4, 256), (8, 1024)] {
        let mems = thread_memories(threads, blocks);
        group.bench_with_input(
            BenchmarkId::new(format!("{threads}-threads"), blocks),
            &mems,
            |b, mems| {
                b.iter(|| {
                    let m = compose_n(mems).expect("disjointly live");
                    // Touch one load so the composition isn't dead code.
                    std::hint::black_box(ld(&m, Addr::new(0, 0)).expect("live block"));
                });
            },
        );
    }
    group.finish();

    let mut sched_group = c.benchmark_group("threaded-linking");
    for &slices in &[16_usize, 64] {
        let schedule: Vec<(u32, usize)> = (0..slices).map(|i| ((i % 4) as u32, 2)).collect();
        sched_group.bench_with_input(
            BenchmarkId::from_parameter(slices),
            &schedule,
            |b, schedule| {
                b.iter(|| simulate_threaded_linking(schedule).expect("linking holds"));
            },
        );
    }
    sched_group.finish();
}

criterion_group!(benches, bench_memalg);
criterion_main!(benches);
