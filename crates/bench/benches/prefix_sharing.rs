//! Experiments B5 and B5d: prefix-sharing lower-run exploration — the
//! schedule grid organized as a prefix trie so each lower-machine run is
//! executed once per *distinct consumed schedule prefix* instead of once
//! per grid cell (B5, `ccal_core::prefix::PrefixMemo`), plus the
//! query-point snapshot trie that forks the lower machine at every
//! environment query so even runs that never share a whole consumed
//! prefix share their common schedule digits (B5d,
//! `ccal_core::prefix::SnapshotTrie`; see DESIGN.md).
//!
//! Run with `cargo bench -p ccal-bench --bench prefix_sharing`; pass
//! `-- --quick` (or set `CCAL_BENCH_QUICK=1`) for a fast smoke run.
//! Works with or without the `criterion` feature — it uses the engine's
//! atom-step counters plus plain wall-clock timing either way.
//!
//! This binary owns its process, so the process-global step counters are
//! exact; it doubles as the acceptance gate for both optimisations: at
//! `L = 5` the atom-steps with boundary sharing on must be at most half
//! of the memo-free steps (B5), and the atom-steps with deep sharing on
//! must be at most 0.7 of the boundary-shared steps on the *interpreted*
//! ticket stack (B5d) — the workload whose spin loop whole-outcome
//! memoization cannot reach. Both gates are counter-based, not
//! wall-clock-based, so they hold on single-core and noisy hosts.
//!
//! It also emits `BENCH_5.json` at the repo root — machine-readable
//! atom-step ratios for B5/B5d and grid accounting for B2/B2w — so the
//! perf trajectory is tracked across changes.

use std::fmt::Write as _;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("CCAL_BENCH_QUICK").is_some();
    let lens: &[usize] = if quick { &[3, 5] } else { &[3, 4, 5] };

    let rows: Vec<_> = lens
        .iter()
        .map(|&l| ccal_bench::scaling::prefix_row(l))
        .collect();
    println!("{}", ccal_bench::scaling::render_prefix_rows(&rows));
    let deep_rows: Vec<_> = lens
        .iter()
        .map(|&l| ccal_bench::scaling::deep_row(l))
        .collect();
    println!("{}", ccal_bench::scaling::render_deep_rows(&deep_rows));

    let gate = rows
        .iter()
        .find(|r| r.schedule_len == 5)
        .expect("L=5 row present");
    assert!(
        gate.step_ratio() <= 0.5,
        "B5 acceptance: sharing must at least halve the atom-steps at L=5, \
         got {} of {} ({:.2})",
        gate.steps_shared,
        gate.steps_full,
        gate.step_ratio()
    );
    println!(
        "B5 acceptance: L=5 atom-step ratio {:.3} <= 0.5 (shared {} vs full {})",
        gate.step_ratio(),
        gate.steps_shared,
        gate.steps_full
    );
    let dgate = deep_rows
        .iter()
        .find(|r| r.schedule_len == 5)
        .expect("L=5 deep row present");
    assert!(
        dgate.deep_over_shared() <= 0.7,
        "B5d acceptance: query-point snapshots must cut the interpreted-ticket \
         atom-steps to <= 0.7 of the boundary-shared run at L=5, got {} of {} ({:.2})",
        dgate.steps_deep,
        dgate.steps_shared,
        dgate.deep_over_shared()
    );
    println!(
        "B5d acceptance: L=5 deep/share atom-step ratio {:.3} <= 0.7 \
         (deep {} vs shared {}, {} snapshot resumes)",
        dgate.deep_over_shared(),
        dgate.steps_deep,
        dgate.steps_shared,
        dgate.deep_hits
    );

    let workers = ccal_core::par::default_workers();
    let b2 = ccal_bench::scaling::por_row_tuned(5, workers);
    let b2w = ccal_bench::scaling::por_widened_row_tuned(5, workers);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_5.json");
    std::fs::write(path, render_json(&rows, &deep_rows, &b2, &b2w)).expect("write BENCH_5.json");
    println!("wrote {path}");
}

/// Renders the machine-readable benchmark record. Hand-rolled JSON — the
/// workspace is offline and the fields are flat numbers.
fn render_json(
    rows: &[ccal_bench::scaling::PrefixRow],
    deep_rows: &[ccal_bench::scaling::DeepRow],
    b2: &ccal_bench::scaling::PorRow,
    b2w: &ccal_bench::scaling::PorRow,
) -> String {
    // Recorded so step-ratio trajectories can be compared across hosts:
    // the worker-scaling rows depend on the machine's parallelism.
    let hw = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut out = format!("{{\n  \"hardware_threads\": {hw},\n  \"b5\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"len\": {}, \"grid\": {}, \"cases\": {}, \"steps_full\": {}, \
             \"steps_shared\": {}, \"steps_deep\": {}, \"ratio\": {:.4}, \"deep_ratio\": {:.4}}}",
            r.schedule_len,
            r.grid,
            r.cases,
            r.steps_full,
            r.steps_shared,
            r.steps_deep,
            r.step_ratio(),
            r.deep_ratio(),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"b5d\": [\n");
    for (i, r) in deep_rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"len\": {}, \"grid\": {}, \"cases\": {}, \"steps_full\": {}, \
             \"steps_shared\": {}, \"steps_deep\": {}, \"shared_hits\": {}, \"deep_hits\": {}, \
             \"deep_over_shared\": {:.4}, \"deep_over_full\": {:.4}}}",
            r.schedule_len,
            r.grid,
            r.cases,
            r.steps_full,
            r.steps_shared,
            r.steps_deep,
            r.shared_hits,
            r.deep_hits,
            r.deep_over_shared(),
            r.deep_over_full(),
        );
        out.push_str(if i + 1 < deep_rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    for (key, row) in [("b2", b2), ("b2w", b2w)] {
        let _ = write!(
            out,
            "  \"{key}\": {{\"len\": {}, \"grid\": {}, \"explored\": {}, \"skipped\": {}, \
             \"reduced\": {}, \"shrink\": {:.4}}}",
            row.schedule_len,
            row.grid,
            row.explored,
            row.skipped,
            row.reduced,
            row.shrink(),
        );
        out.push_str(if key == "b2" { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}
