//! Experiment B5: prefix-sharing lower-run exploration — the schedule
//! grid organized as a prefix trie so each lower-machine run is executed
//! once per *distinct consumed schedule prefix* instead of once per grid
//! cell (see `ccal_core::prefix` and DESIGN.md).
//!
//! Run with `cargo bench -p ccal-bench --bench prefix_sharing`; pass
//! `-- --quick` (or set `CCAL_BENCH_QUICK=1`) for a fast smoke run.
//! Works with or without the `criterion` feature — it uses the engine's
//! atom-step counters plus plain wall-clock timing either way.
//!
//! This binary owns its process, so the process-global step counters are
//! exact; it doubles as the acceptance gate for the optimisation: at
//! `L = 5` the atom-steps executed with sharing on must be at most half
//! of the steps with sharing off. The gate is counter-based, not
//! wall-clock-based, so it holds on single-core and noisy hosts.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("CCAL_BENCH_QUICK").is_some();
    let lens: &[usize] = if quick { &[3, 5] } else { &[3, 4, 5] };
    let rows: Vec<_> = lens
        .iter()
        .map(|&l| ccal_bench::scaling::prefix_row(l))
        .collect();
    println!("{}", ccal_bench::scaling::render_prefix_rows(&rows));
    let gate = rows
        .iter()
        .find(|r| r.schedule_len == 5)
        .expect("L=5 row present");
    assert!(
        gate.step_ratio() <= 0.5,
        "B5 acceptance: sharing must at least halve the atom-steps at L=5, \
         got {} of {} ({:.2})",
        gate.steps_shared,
        gate.steps_full,
        gate.step_ratio()
    );
    println!(
        "B5 acceptance: L=5 atom-step ratio {:.3} <= 0.5 (shared {} vs full {})",
        gate.step_ratio(),
        gate.steps_shared,
        gate.steps_full
    );
}
