//! Experiment B8: semantic sharing keys — cross-unit and cross-request
//! reuse of warm exploration state in the certification service (see
//! DESIGN.md §"Semantic sharing keys").
//!
//! Run with `cargo bench -p ccal-bench --bench sharing`; pass
//! `-- --quick` (or set `CCAL_BENCH_QUICK=1`) for a fast smoke run.
//! Works with or without the `criterion` feature — the metric is the
//! engine's atom-step counters plus the per-unit family-hit counters the
//! certification service reports.
//!
//! Two arms run the same service session — three back-to-back
//! certifications of the nine-unit ticket stack — at each schedule
//! length:
//!
//! * **pinned** — `CCAL_SHARE_SEMANTIC=0` semantics with no warm state:
//!   the prefix-memo family is the unit fingerprint and every unit of
//!   every request rebuilds its exploration state from zero (the
//!   engine's pre-ShareKey per-request behaviour);
//! * **semantic** — units are keyed by their semantic `ShareKey` and draw
//!   warm state from one [`WarmMap`] that lives across the session, the
//!   daemon's actual flow. The nine units hash into three share
//!   families, so family-sibling units start warm *within* the first
//!   request, and every unit starts warm on the re-requests.
//!
//! The per-request breakdown is printed and recorded so the two reuse
//! axes stay visible: the ticket stack's units check *disjoint*
//! primitives, so its first-request atom-steps match the pinned arm's
//! (family siblings share a key space but no completed computations) and
//! the session win is cross-request. The *cross-unit* win inside a
//! single request needs units whose runs overlap — the qlock stack's
//! `rel_q` carries an `acq_q` setup call, which resumes the completed
//! states the `acq_q` unit's checked runs stored — and is measured by a
//! second, first-request-only qlock table.
//!
//! This binary owns its process, so the process-global step counters are
//! exact; it doubles as the acceptance gate for semantic sharing: at
//! `L = 5` the semantic session's lower-machine atom-steps must be at
//! most 0.5 of the pinned session's — a counter ratio, not a wall-clock
//! one, so the gate holds on single-core and noisy hosts. Both arms must
//! certify with identical case counts (asserted here; byte-identity of
//! verdicts and evidence across the sharing modes is pinned by
//! `tests/sharing_differential.rs`).
//!
//! It also emits `BENCH_8.json` at the repo root — per-length session
//! ratios, per-request step totals, per-unit family-hit counters and the
//! qlock cross-unit rows — so the perf trajectory is tracked across
//! changes.

use std::fmt::Write as _;

use ccal_certd::proto::Lease;
use ccal_certd::registry::{run_lease, stack_units, WarmMap};
use ccal_certd::CertParams;
use ccal_core::prefix::ShareSemanticOverride;

/// One unit's accounting within one request.
struct UnitRow {
    unit: String,
    cases: usize,
    steps: u64,
    family_hits: u64,
}

/// One certification of a full stack. `semantic` selects the sharing
/// mode (scoped override, not the environment flag); `warm` is the
/// daemon-style warm map the semantic arms thread through.
fn certify_stack(stack: &str, len: usize, semantic: bool, warm: Option<&WarmMap>) -> Vec<UnitRow> {
    let _mode = ShareSemanticOverride::force(semantic);
    let params = CertParams {
        schedule_len: len,
        ..CertParams::default()
    };
    let units = stack_units(stack, &params).expect("stack resolves");
    units
        .iter()
        .enumerate()
        .map(|(i, u)| {
            let w = warm.map(|m| m.get(&u.share));
            let lease = Lease {
                id: i as u64,
                stack: stack.to_owned(),
                unit: u.name.clone(),
                fingerprint: u.fingerprint.to_string(),
                share: u.share.clone(),
                params: params.clone(),
                lo: 0,
                hi: u.ncases,
                warm: w.is_some(),
            };
            let report = run_lease(&lease, w.as_ref());
            assert!(report.error.is_none(), "{}: {:?}", u.name, report.error);
            assert!(
                report.failure.is_none(),
                "{}: {stack} must certify, got {:?}",
                u.name,
                report.failure
            );
            UnitRow {
                unit: u.name.clone(),
                cases: report.cases_checked,
                steps: report.steps,
                family_hits: report.shared_family_hits,
            }
        })
        .collect()
}

fn steps_total(rows: &[UnitRow]) -> u64 {
    rows.iter().map(|r| r.steps).sum()
}

/// Requests per session arm (request 1 exposes cross-unit reuse, the
/// re-requests cross-request reuse).
const REQUESTS: usize = 3;

/// One schedule length's ticket-session measurement: both arms, kept
/// per-request.
struct SharingRow {
    schedule_len: usize,
    /// Cases discharged by one request (identical across arms/requests).
    cases: usize,
    pinned: Vec<Vec<UnitRow>>,
    semantic: Vec<Vec<UnitRow>>,
}

impl SharingRow {
    fn measure(len: usize) -> SharingRow {
        let pinned: Vec<_> = (0..REQUESTS)
            .map(|_| certify_stack("ticket", len, false, None))
            .collect();
        let warm = WarmMap::new();
        let semantic: Vec<_> = (0..REQUESTS)
            .map(|_| certify_stack("ticket", len, true, Some(&warm)))
            .collect();
        let cases: usize = pinned[0].iter().map(|r| r.cases).sum();
        for req in pinned.iter().chain(&semantic) {
            assert_eq!(
                cases,
                req.iter().map(|r| r.cases).sum::<usize>(),
                "L={len}: sharing must not change the discharged case count"
            );
        }
        // Pipeline order: funlift/{acq,f,g,rel}, loglift/{acq,f,g,rel},
        // client/foo — three share families opened at indices 0, 4, 8.
        // Family-sibling units must start warm within the first request;
        // family openers must not (their warm state is empty at lease
        // start, and the counter is gated on non-empty warm state).
        for i in [1, 2, 3, 5, 6, 7] {
            assert!(
                semantic[0][i].family_hits > 0,
                "L={len}: unit {} must start warm from its family sibling",
                semantic[0][i].unit
            );
        }
        for i in [0, 4, 8] {
            assert_eq!(
                semantic[0][i].family_hits, 0,
                "L={len}: unit {} opens its family cold",
                semantic[0][i].unit
            );
        }
        for req in &semantic[1..] {
            for r in req {
                assert!(
                    r.family_hits > 0,
                    "L={len}: unit {} must start warm on a re-request",
                    r.unit
                );
            }
        }
        SharingRow {
            schedule_len: len,
            cases,
            pinned,
            semantic,
        }
    }

    fn pinned_steps(&self) -> u64 {
        self.pinned.iter().map(|r| steps_total(r)).sum()
    }

    fn semantic_steps(&self) -> u64 {
        self.semantic.iter().map(|r| steps_total(r)).sum()
    }

    /// The B8 acceptance metric: semantic-session over pinned-session
    /// lower-machine atom-steps (lower is better; the gate requires
    /// ≤ 0.5 at `L = 5`).
    fn atom_step_ratio(&self) -> f64 {
        self.semantic_steps() as f64 / self.pinned_steps().max(1) as f64
    }
}

/// The qlock cross-unit measurement: a *single* request per arm, so every
/// saved step is within-request reuse — `rel_q`'s setup call resuming
/// `acq_q`'s completed checked runs through the shared family.
struct QlockRow {
    schedule_len: usize,
    pinned: Vec<UnitRow>,
    semantic: Vec<UnitRow>,
}

impl QlockRow {
    fn measure(len: usize) -> QlockRow {
        let pinned = certify_stack("qlock", len, false, None);
        let warm = WarmMap::new();
        let semantic = certify_stack("qlock", len, true, Some(&warm));
        assert_eq!(
            pinned.iter().map(|r| r.cases).sum::<usize>(),
            semantic.iter().map(|r| r.cases).sum::<usize>(),
            "L={len}: sharing must not change the discharged case count"
        );
        assert!(
            semantic[1].family_hits > 0,
            "L={len}: rel_q must start warm from acq_q within one request"
        );
        assert!(
            semantic[1].steps < pinned[1].steps,
            "L={len}: rel_q's setup must resume acq_q's completed runs \
             (semantic {} vs pinned {} atom-steps)",
            semantic[1].steps,
            pinned[1].steps
        );
        QlockRow {
            schedule_len: len,
            pinned,
            semantic,
        }
    }
}

fn render_rows(rows: &[SharingRow], qlock: &[QlockRow]) -> String {
    let mut out = String::from(
        "B8 — semantic sharing keys: ticket-stack service session \
         (3 requests, lower-machine atom-steps)\n\
         | L | cases/req | pinned | semantic | ratio | sem req1/req2/req3 |\n\
         |---|-----------|--------|----------|-------|--------------------|\n",
    );
    for r in rows {
        let per_req: Vec<String> = r
            .semantic
            .iter()
            .map(|req| steps_total(req).to_string())
            .collect();
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.3} | {} |",
            r.schedule_len,
            r.cases,
            r.pinned_steps(),
            r.semantic_steps(),
            r.atom_step_ratio(),
            per_req.join("/"),
        );
    }
    out.push_str(
        "\nB8 — qlock cross-unit reuse within one request (rel_q resumes \
         acq_q's completed runs)\n\
         | L | acq_q pin/sem | rel_q pin/sem |\n\
         |---|---------------|---------------|\n",
    );
    for r in qlock {
        let _ = writeln!(
            out,
            "| {} | {}/{} | {}/{} |",
            r.schedule_len,
            r.pinned[0].steps,
            r.semantic[0].steps,
            r.pinned[1].steps,
            r.semantic[1].steps,
        );
    }
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("CCAL_BENCH_QUICK").is_some();
    let lens: &[usize] = if quick { &[3, 5] } else { &[3, 4, 5] };

    let rows: Vec<SharingRow> = lens.iter().map(|&l| SharingRow::measure(l)).collect();
    let qlock: Vec<QlockRow> = lens.iter().map(|&l| QlockRow::measure(l)).collect();
    println!("{}", render_rows(&rows, &qlock));

    let gate = rows
        .iter()
        .find(|r| r.schedule_len == 5)
        .expect("L=5 row present");
    assert!(
        gate.atom_step_ratio() <= 0.5,
        "B8 acceptance: the semantic-sharing session must retire <= 0.5 of \
         the pinned-family baseline's lower-run atom-steps at L=5, got {} \
         of {} ({:.2})",
        gate.semantic_steps(),
        gate.pinned_steps(),
        gate.atom_step_ratio()
    );
    println!(
        "B8 acceptance: L=5 atom-step ratio {:.3} <= 0.5 (semantic {} vs pinned {})",
        gate.atom_step_ratio(),
        gate.semantic_steps(),
        gate.pinned_steps()
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json");
    std::fs::write(path, render_json(&rows, &qlock)).expect("write BENCH_8.json");
    println!("wrote {path}");
}

fn render_units(out: &mut String, rows: &[UnitRow]) {
    out.push_str("[\n");
    for (i, u) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"unit\": \"{}\", \"cases\": {}, \"steps\": {}, \"family_hits\": {}}}",
            u.unit, u.cases, u.steps, u.family_hits
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("    ]");
}

/// Renders the machine-readable benchmark record. Hand-rolled JSON — the
/// workspace is offline and the fields are flat numbers.
fn render_json(rows: &[SharingRow], qlock: &[QlockRow]) -> String {
    // Recorded so step-ratio trajectories can be compared across hosts:
    // wall-clock sanity numbers depend on the machine's parallelism.
    let hw = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut out = format!(
        "{{\n  \"hardware_threads\": {hw},\n  \"requests\": {REQUESTS},\n  \"b8\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let pinned_reqs: Vec<String> = r
            .pinned
            .iter()
            .map(|req| steps_total(req).to_string())
            .collect();
        let semantic_reqs: Vec<String> = r
            .semantic
            .iter()
            .map(|req| steps_total(req).to_string())
            .collect();
        let _ = write!(
            out,
            "    {{\"len\": {}, \"cases_per_request\": {}, \
             \"atom_steps_pinned\": {}, \"atom_steps_semantic\": {}, \
             \"ratio\": {:.4}, \"pinned_requests\": [{}], \
             \"semantic_requests\": [{}],\n    \"units_first_request\": ",
            r.schedule_len,
            r.cases,
            r.pinned_steps(),
            r.semantic_steps(),
            r.atom_step_ratio(),
            pinned_reqs.join(", "),
            semantic_reqs.join(", "),
        );
        render_units(&mut out, &r.semantic[0]);
        out.push_str(",\n    \"units_warm_rerun\": ");
        render_units(&mut out, &r.semantic[1]);
        out.push('}');
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"b8_qlock_cross_unit\": [\n");
    for (i, r) in qlock.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"len\": {}, \"acq_q_pinned\": {}, \"acq_q_semantic\": {}, \
             \"rel_q_pinned\": {}, \"rel_q_semantic\": {}, \
             \"rel_q_family_hits\": {}}}",
            r.schedule_len,
            r.pinned[0].steps,
            r.semantic[0].steps,
            r.pinned[1].steps,
            r.semantic[1].steps,
            r.semantic[1].family_hits,
        );
        out.push_str(if i + 1 < qlock.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
