//! Experiment T1: regenerates Table 1 of the evaluation (§6) — toolkit
//! component sizes, paper (Coq) vs. this reproduction (Rust).
//!
//! Run with `cargo bench -p ccal-bench --bench table1`.

fn main() {
    println!("{}", ccal_bench::tables::render_table1());
}
