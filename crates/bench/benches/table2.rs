//! Experiment T2: regenerates Table 2 of the evaluation (§6) — per-object
//! statistics. Every object is actually re-certified to produce its
//! obligation/case counts (the reproduction's analog of proof effort).
//!
//! Run with `cargo bench -p ccal-bench --bench table2`.

fn main() {
    println!("{}", ccal_bench::tables::render_table2());
}
