//! Experiment P1: the §6 performance study — ticket-lock acquire/release
//! latency with the "logical primitives" (replay + event bookkeeping)
//! versus with them removed (direct state). Paper: 87 → 35 cycles
//! (2.49×); the reproduction must show the same multiple-× drop.
//!
//! Run with `cargo bench -p ccal-bench --bench ticket_latency`.

use ccal_bench::latency::{direct_machine, layered_machine, roundtrip};
use ccal_core::id::Loc;
use criterion::{criterion_group, criterion_main, Criterion};

fn warmed(mk: fn() -> ccal_core::machine::LayerMachine, warm: u32) -> ccal_core::machine::LayerMachine {
    let mut m = mk();
    for _ in 0..warm {
        roundtrip(&mut m, Loc(0));
    }
    m
}

fn bench_latency(c: &mut Criterion) {
    let b = Loc(0);
    let mut group = c.benchmark_group("ticket-lock-latency");
    // Each round trip is timed on a machine carrying 200 acquisitions of
    // history: the verified build pays for replay over that history (the
    // "logical primitives"), the optimized build does not.
    group.bench_function("with-logical-primitives", |bench| {
        bench.iter_batched(
            || warmed(layered_machine, 200),
            |mut m| roundtrip(&mut m, b),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("logical-primitives-removed", |bench| {
        bench.iter_batched(
            || warmed(direct_machine, 200),
            |mut m| roundtrip(&mut m, b),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();

    // Headline summary in the paper's terms (fixed 200-acquisition
    // history, like the criterion runs above).
    let report = ccal_bench::latency::measure_warm(200, 200);
    println!(
        "\nP1 summary: with logical primitives {:?}, removed {:?} → {:.2}x drop (paper: 87 → 35 cycles, 2.49x)\n",
        report.with_logical, report.without_logical, report.ratio
    );
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
