//! The §6 performance study (experiment P1).
//!
//! "Initially, the ticket lock implementation incurred a latency of 87 CPU
//! cycles in the single core case. ... we forgot to remove some function
//! calls to 'logical primitives' used for manipulating ghost abstract
//! states. After we removed these extra null calls, the latency dropped
//! down to only 35 CPU cycles" (§6) — a 2.49× reduction.
//!
//! The reproduction's analog of the "logical primitives" is the
//! replay-from-log machinery: the verified interface computes every
//! primitive result by folding the global log and appends observable
//! events. The *optimized* build keeps the identical ClightX code and
//! interpreter but serves the ticket fields from concrete state with no
//! event bookkeeping — exactly "removing the null calls". The shape to
//! reproduce is the multiple-× latency drop.

use ccal_core::abs::AbsState;
use ccal_core::env::EnvContext;
use ccal_core::id::{Loc, Pid};
use ccal_core::layer::{LayerInterface, PrimSpec};
use ccal_core::machine::LayerMachine;
use ccal_core::strategy::RoundRobinScheduler;
use ccal_core::val::Val;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccal_objects::ticket::{l0_interface, M1_SOURCE};

/// The direct-state ticket interface: same primitive names and semantics
/// as `L0`, but the ticket fields live in the abstract state and **no
/// events are recorded** — the ghost/logical work has been stripped.
pub fn direct_ticket_interface() -> LayerInterface {
    fn key_t(b: Loc) -> String {
        format!("t[{b}]")
    }
    fn key_n(b: Loc) -> String {
        format!("n[{b}]")
    }
    fn get(abs: &AbsState, key: &str) -> i64 {
        match abs.get_or_undef(key) {
            Val::Int(i) => i,
            _ => 0,
        }
    }
    LayerInterface::builder("L0-direct")
        .prim(PrimSpec::private("fai_t", |ctx, args| {
            let b = args[0].as_loc()?;
            let t = get(ctx.abs, &key_t(b));
            ctx.abs.set(&key_t(b), Val::Int(t + 1));
            Ok(Val::Int(t))
        }))
        .prim(PrimSpec::private("get_n", |ctx, args| {
            let b = args[0].as_loc()?;
            Ok(Val::Int(get(ctx.abs, &key_n(b))))
        }))
        .prim(PrimSpec::private("inc_n", |ctx, args| {
            let b = args[0].as_loc()?;
            let n = get(ctx.abs, &key_n(b));
            ctx.abs.set(&key_n(b), Val::Int(n + 1));
            Ok(Val::Unit)
        }))
        .prim(PrimSpec::private("hold", |_ctx, _args| Ok(Val::Unit)))
        .build()
}

fn machine_over(iface: LayerInterface) -> LayerMachine {
    let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(1)));
    LayerMachine::new(iface, Pid(0), env)
}

/// Builds the machine for the *with-logical-primitives* configuration:
/// the ticket lock module over the replay-based `L0`.
pub fn layered_machine() -> LayerMachine {
    let m = ccal_clightx::clightx_module("M1", M1_SOURCE).expect("M1 parses");
    machine_over(m.install(&l0_interface()).expect("M1 installs"))
}

/// Builds the machine for the *optimized* configuration: the same module
/// over the direct-state interface.
pub fn direct_machine() -> LayerMachine {
    let m = ccal_clightx::clightx_module("M1", M1_SOURCE).expect("M1 parses");
    machine_over(m.install(&direct_ticket_interface()).expect("M1 installs"))
}

/// One uncontended acquire/release round trip on the given machine.
pub fn roundtrip(machine: &mut LayerMachine, b: Loc) {
    machine
        .call_prim("acq", &[Val::Loc(b)])
        .expect("uncontended acquire");
    machine
        .call_prim("rel", &[Val::Loc(b)])
        .expect("release");
}

/// The result of the quick latency measurement.
#[derive(Debug, Clone)]
pub struct LatencyReport {
    /// Mean acquire+release latency with logical primitives (replay +
    /// events).
    pub with_logical: Duration,
    /// Mean latency with logical primitives removed (direct state).
    pub without_logical: Duration,
    /// `with / without` — the paper observed 87/35 ≈ 2.5×.
    pub ratio: f64,
}

/// Measures both configurations on a *running* machine: after `warm`
/// acquire/release round trips of history, times `iters` further round
/// trips. On the verified interface every primitive replays the
/// accumulated log (the "logical primitives"), so its latency reflects
/// the system's age — exactly the overhead the CertiKOS authors found and
/// removed; the optimized build is history-independent.
pub fn measure_warm(warm: u32, iters: u32) -> LatencyReport {
    let b = Loc(0);
    let time = |mk: &dyn Fn() -> LayerMachine| {
        let mut m = mk();
        for _ in 0..warm {
            roundtrip(&mut m, b);
        }
        let start = Instant::now();
        for _ in 0..iters {
            roundtrip(&mut m, b);
        }
        start.elapsed() / iters
    };
    let with_logical = time(&layered_machine);
    let without_logical = time(&direct_machine);
    let ratio = with_logical.as_secs_f64() / without_logical.as_secs_f64().max(f64::EPSILON);
    LatencyReport {
        with_logical,
        without_logical,
        ratio,
    }
}

/// [`measure_warm`] with a realistic default history (200 prior
/// acquisitions).
pub fn measure(iters: u32) -> LatencyReport {
    measure_warm(200, iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_configurations_acquire_and_release() {
        let b = Loc(0);
        let mut m = layered_machine();
        roundtrip(&mut m, b);
        assert!(m.log.count_by(Pid(0)) >= 3, "events recorded");
        let mut m = direct_machine();
        roundtrip(&mut m, b);
        assert!(m.log.is_empty(), "no events in the optimized build");
        assert_eq!(m.abs.get_or_undef("t[b0]"), Val::Int(1));
        assert_eq!(m.abs.get_or_undef("n[b0]"), Val::Int(1));
    }

    #[test]
    fn removing_logical_primitives_reduces_latency() {
        let report = measure(200);
        assert!(
            report.ratio > 1.2,
            "expected a clear latency drop, measured ratio {:.2}",
            report.ratio
        );
    }
}
