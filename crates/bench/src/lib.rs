//! # ccal-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6) from
//! this reproduction, as catalogued in `DESIGN.md` and `EXPERIMENTS.md`:
//!
//! * [`tables::table1`] — Table 1, toolkit component sizes;
//! * [`tables::table2`] — Table 2, per-object statistics (implementation
//!   size, specification size, and the *checking* effort that replaces
//!   proof effort);
//! * [`latency`] — the §6 performance study: ticket-lock latency with and
//!   without the leftover "logical primitive" calls (paper: 87 → 35
//!   cycles);
//! * [`scaling`] — the compositionality study (B1): schedule-space sizes
//!   for compositional vs. monolithic verification;
//! * the Criterion benches under `benches/` drive these and the lock
//!   contention comparison (B3) and memory-algebra composition (F12).

#![warn(missing_docs)]

pub mod latency;
pub mod scaling;
pub mod tables;
