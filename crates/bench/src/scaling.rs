//! The compositionality study (experiment B1).
//!
//! The paper's thesis is that layer-local verification plus composition
//! rules beats whole-system reasoning: "it enables local reasoning such
//! that the implementation can be first verified over a single thread `t`
//! ... and the guarantees can then be propagated to the whole concurrent
//! machine by parallel compositions" (§1). This module quantifies the
//! analogous effect in the bounded checker: the schedule space a
//! *monolithic* exploration must cover grows as `n^(k·L)` for `k`
//! participants, while the compositional route checks `k` participants
//! independently (`k · n^L`) and discharges `Pcomp` side conditions on
//! probe logs.
//!
//! It also hosts the partial-order-reduction study (B2, plus the
//! widened-footprint variant B2w) and the prefix-sharing study (B5),
//! which measures the lower-run trie of [`ccal_core::prefix`] in
//! atom-steps and wall-clock.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use ccal_core::calculus::{check_fun, pcomp, CheckOptions, Obligation};
use ccal_core::conc::ThreadScript;
use ccal_core::contexts::ContextGen;
use ccal_core::id::{Loc, Pid, PidSet};
use ccal_core::sim::SimRelation;
use ccal_objects::ticket::{
    l0_interface, l2_interface, lock_interface, lock_low_interface, m1_module, r1_relation,
    r2_relation, FooEnvPlayer, TicketEnvPlayer, M2_SOURCE,
};
use ccal_verifier::{
    check_linearizability_tuned, check_liveness_tuned, check_race_freedom_tuned,
    check_sequence_refinement_tuned, lock_history_validator, ticket_bound, OpScript,
};
use std::sync::Arc;

/// One row of the scaling comparison, including the serial-vs-parallel
/// exploration axis.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Schedule prefix length per participant.
    pub schedule_len: usize,
    /// Contexts a monolithic product exploration would need
    /// (`2^(2·len)` for two participants).
    pub monolithic_contexts: usize,
    /// Contexts the compositional route explored (two per-participant
    /// checks).
    pub compositional_contexts: usize,
    /// Wall time of the serial compositional certification (1 worker,
    /// dedup off — the reference engine).
    pub compositional_time: Duration,
    /// Wall time with `workers` threads, dedup off.
    pub parallel_time: Duration,
    /// Wall time with `workers` threads *and* symmetric-schedule dedup.
    pub parallel_dedup_time: Duration,
    /// Worker threads used for the parallel runs.
    pub workers: usize,
    /// Checking cases discharged.
    pub cases: usize,
}

/// One timed compositional certification: both participants checked at
/// `schedule_len` with the given engine settings, then `Pcomp`-composed.
/// Returns the total contexts explored, the discharged cases, and the
/// wall time.
fn certify_both(schedule_len: usize, workers: usize, dedup: bool) -> (usize, usize, Duration) {
    let b = Loc(0);
    let m1 = m1_module().expect("M1 parses");
    let start = Instant::now();
    let mut layers = Vec::new();
    let mut contexts_used = 0;
    for (me, other) in [(Pid(0), Pid(1)), (Pid(1), Pid(0))] {
        let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(other, Arc::new(TicketEnvPlayer::new(other, b, 1)))
            .with_schedule_len(schedule_len)
            .contexts();
        contexts_used += contexts.len();
        let opts = CheckOptions::new(contexts)
            .with_workload("acq", vec![vec![ccal_core::val::Val::Loc(b)]])
            .with_workload("rel", vec![vec![ccal_core::val::Val::Loc(b)]])
            .with_workers(workers)
            .with_dedup(dedup);
        let layer = check_fun(
            &l0_interface(),
            &m1,
            &lock_low_interface(),
            &SimRelation::identity(),
            me,
            &opts,
        )
        .expect("per-participant certification succeeds");
        layers.push(layer);
    }
    let composed = pcomp(&layers[0], &layers[1]).expect("compatible layers");
    (
        contexts_used,
        composed.certificate.total_cases(),
        start.elapsed(),
    )
}

/// Runs the compositional ticket-lock certification at the given schedule
/// length with the default worker count, reporting the explored-context
/// accounting and serial/parallel/dedup timings.
///
/// # Panics
///
/// Panics if certification fails — the configuration is expected to be
/// correct.
pub fn compositional_row(schedule_len: usize) -> ScalingRow {
    compositional_row_tuned(schedule_len, ccal_core::par::default_workers())
}

/// [`compositional_row`] with an explicit worker count for the parallel
/// runs (the serial reference always uses 1 worker, dedup off).
///
/// # Panics
///
/// Panics if certification fails.
pub fn compositional_row_tuned(schedule_len: usize, workers: usize) -> ScalingRow {
    let (contexts_used, cases, compositional_time) = certify_both(schedule_len, 1, false);
    let (_, parallel_cases, parallel_time) = certify_both(schedule_len, workers, false);
    let (_, dedup_cases, parallel_dedup_time) = certify_both(schedule_len, workers, true);
    assert_eq!(cases, parallel_cases, "parallel run diverged from serial");
    assert_eq!(cases, dedup_cases, "dedup run diverged from serial");
    ScalingRow {
        schedule_len,
        monolithic_contexts: 2_usize.pow(2 * schedule_len as u32),
        compositional_contexts: contexts_used,
        compositional_time,
        parallel_time,
        parallel_dedup_time,
        workers,
        cases,
    }
}

/// The caveat line appended to every wall-clock scaling table when the
/// host cannot actually run workers in parallel: with one hardware
/// thread the `workers > 1` engine time-slices on a single core, so
/// serial-vs-parallel wall-clock ratios measure scheduler overhead, not
/// scaling. The step-counter metrics (atom-steps, primitive steps,
/// memo hits) are host-independent and remain meaningful.
pub fn parallelism_caveat() -> Option<String> {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    (threads <= 1).then(|| {
        format!(
            "note: host reports {threads} hardware thread(s) — parallel-vs-serial \
             wall-clock scaling numbers are NOT meaningful on this machine; \
             trust the step-counter columns, which are host-independent"
        )
    })
}

/// Appends [`parallelism_caveat`] (when it applies) to a rendered table.
fn push_caveat(out: &mut String) {
    if let Some(caveat) = parallelism_caveat() {
        out.push_str(&caveat);
        out.push('\n');
    }
}

/// Renders the comparison for a family of schedule lengths.
pub fn render_scaling(lens: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let workers = ccal_core::par::default_workers();
    let _ = writeln!(
        out,
        "B1 — compositional vs. monolithic exploration, serial vs. parallel engine \
         (2 participants, {workers} workers)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>14} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "len", "monolithic", "compositional", "cases", "serial", "parallel", "par+dedup", "speedup"
    );
    for &len in lens {
        let row = compositional_row(len);
        let speedup =
            row.compositional_time.as_secs_f64() / row.parallel_dedup_time.as_secs_f64().max(1e-9);
        let _ = writeln!(
            out,
            "{:>4} {:>12} {:>14} {:>8} {:>12?} {:>12?} {:>12?} {:>7.2}x",
            row.schedule_len,
            row.monolithic_contexts,
            row.compositional_contexts,
            row.cases,
            row.compositional_time,
            row.parallel_time,
            row.parallel_dedup_time,
            speedup
        );
    }
    push_caveat(&mut out);
    out
}

/// One row of the partial-order-reduction study (experiment B2): the same
/// certification run over the full schedule grid and over the sleep-set
/// reduced grid, on serial and parallel engines.
#[derive(Debug, Clone)]
pub struct PorRow {
    /// Schedule prefix length.
    pub schedule_len: usize,
    /// Full grid size (`|domain|^len` contexts).
    pub grid: usize,
    /// Cases actually executed with POR on (canonical representatives).
    pub explored: usize,
    /// Cases skipped as invalid contexts with POR on.
    pub skipped: usize,
    /// Cases skipped as trace-equivalent with POR on.
    pub reduced: usize,
    /// Serial wall time, POR off.
    pub serial_full: Duration,
    /// Serial wall time, POR on.
    pub serial_por: Duration,
    /// Parallel wall time, POR off.
    pub parallel_full: Duration,
    /// Parallel wall time, POR on.
    pub parallel_por: Duration,
    /// Worker threads used for the parallel runs.
    pub workers: usize,
}

impl PorRow {
    /// Grid-shrink factor: all grid cases over the cases POR left to run.
    pub fn shrink(&self) -> f64 {
        let run = (self.explored + self.skipped).max(1);
        (self.explored + self.skipped + self.reduced) as f64 / run as f64
    }
}

/// One timed ticket-lock certification on the B2 configuration: the
/// focused participant runs `acq`/`rel` on the kernel stack's ticket lock
/// while a ticket contender and two scratch threads (touching disjoint
/// locations) fill out a four-pid scheduler domain. The contender and the
/// scratch threads declare disjoint footprints, so the sleep-set reduction
/// collapses their interleavings; the focused pid stays opaque.
fn certify_por(
    schedule_len: usize,
    workers: usize,
    por: bool,
) -> (usize, usize, usize, usize, Duration) {
    use ccal_core::strategy::ScratchPlayer;
    let b = Loc(0);
    let m1 = m1_module().expect("M1 parses");
    let gen = ContextGen::new(vec![Pid(0), Pid(1), Pid(2), Pid(3)])
        .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), b, 1)))
        .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(100))))
        .with_player(Pid(3), Arc::new(ScratchPlayer::new(Pid(3), Loc(101))))
        .with_schedule_len(schedule_len)
        // The reduction only marks full (unsampled) grids, so give the
        // generator room for the whole `4^len` space.
        .with_max_contexts(4_usize.pow(schedule_len as u32))
        .with_por(por);
    let contexts = gen.contexts();
    let grid = contexts.len();
    let start = Instant::now();
    let opts = CheckOptions::new(contexts)
        .with_workload("acq", vec![vec![ccal_core::val::Val::Loc(b)]])
        .with_workload("rel", vec![vec![ccal_core::val::Val::Loc(b)]])
        .with_workers(workers)
        .with_por(por);
    let layer = check_fun(
        &l0_interface(),
        &m1,
        &lock_low_interface(),
        &SimRelation::identity(),
        Pid(0),
        &opts,
    )
    .expect("B2 certification succeeds");
    let elapsed = start.elapsed();
    (
        grid,
        layer.certificate.total_cases(),
        layer.certificate.total_skipped(),
        layer.certificate.total_reduced(),
        elapsed,
    )
}

/// Runs the B2 comparison at one schedule length with the default worker
/// count.
///
/// # Panics
///
/// Panics if certification fails or the POR run diverges from the full
/// grid in explored-case accounting.
pub fn por_row(schedule_len: usize) -> PorRow {
    por_row_tuned(schedule_len, ccal_core::par::default_workers())
}

/// [`por_row`] with an explicit worker count for the parallel runs.
///
/// # Panics
///
/// As [`por_row`].
pub fn por_row_tuned(schedule_len: usize, workers: usize) -> PorRow {
    let (grid, explored, skipped, reduced, serial_por) = certify_por(schedule_len, 1, true);
    let (grid_f, full_cases, full_skipped, zero, serial_full) =
        certify_por(schedule_len, 1, false);
    assert_eq!(grid, grid_f, "grid size must not depend on POR");
    assert_eq!(zero, 0, "POR off must reduce nothing");
    assert_eq!(
        explored + skipped + reduced,
        full_cases + full_skipped,
        "canonical + skipped + reduced must account for every full-grid case"
    );
    let (_, _, _, _, parallel_por) = certify_por(schedule_len, workers, true);
    let (_, _, _, _, parallel_full) = certify_por(schedule_len, workers, false);
    PorRow {
        schedule_len,
        grid,
        explored,
        skipped,
        reduced,
        serial_full,
        serial_por,
        parallel_full,
        parallel_por,
        workers,
    }
}

/// Renders the B2 table for a family of schedule lengths.
pub fn render_por(lens: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let workers = ccal_core::par::default_workers();
    let _ = writeln!(
        out,
        "B2 — sleep-set partial-order reduction on the ticket-lock grid \
         (4-pid domain, {workers} workers)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>8} {:>9} {:>8} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "len", "grid", "explored", "reduced", "shrink", "ser/full", "ser/por", "par/full", "par/por"
    );
    for &len in lens {
        let row = por_row(len);
        let _ = writeln!(
            out,
            "{:>4} {:>8} {:>9} {:>8} {:>6.2}x {:>12?} {:>12?} {:>12?} {:>12?}",
            row.schedule_len,
            row.grid,
            row.explored,
            row.reduced,
            row.shrink(),
            row.serial_full,
            row.serial_por,
            row.parallel_full,
            row.parallel_por,
        );
    }
    push_caveat(&mut out);
    out
}

/// One timed *client-layer* certification (`L1 ⊢ M2 : L2` via `R2`) on
/// the widened-POR configuration: the focused participant runs `foo`
/// while a `foo`-shaped contender and two scratch threads fill out a
/// four-pid domain. The contender's bursts contain `Prim` events (`f`,
/// `g`), so before per-primitive footprint declarations its alphabet
/// carried a global footprint and licensed *no* reduction against the
/// scratch threads; with `f`/`g` declared empty-footprint the whole
/// alphabet is local to the lock and the sleep sets prune the
/// contender/scratch interleavings too.
fn certify_client_por(
    schedule_len: usize,
    workers: usize,
    por: bool,
) -> (usize, usize, usize, usize, Duration) {
    use ccal_core::strategy::ScratchPlayer;
    let b = Loc(0);
    let m2 = ccal_clightx::clightx_module("M2", M2_SOURCE).expect("M2 parses");
    let gen = ContextGen::new(vec![Pid(0), Pid(1), Pid(2), Pid(3)])
        .with_player(Pid(1), Arc::new(FooEnvPlayer::new(Pid(1), b, 1)))
        .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(100))))
        .with_player(Pid(3), Arc::new(ScratchPlayer::new(Pid(3), Loc(101))))
        .with_schedule_len(schedule_len)
        .with_max_contexts(4_usize.pow(schedule_len as u32))
        .with_por(por);
    let contexts = gen.contexts();
    let grid = contexts.len();
    let start = Instant::now();
    let opts = CheckOptions::new(contexts)
        .with_workload("foo", vec![vec![ccal_core::val::Val::Loc(b)]])
        .with_workers(workers)
        .with_por(por);
    let layer = check_fun(
        &lock_interface(),
        &m2,
        &l2_interface(),
        &r2_relation(),
        Pid(0),
        &opts,
    )
    .expect("widened-B2 certification succeeds");
    let elapsed = start.elapsed();
    (
        grid,
        layer.certificate.total_cases(),
        layer.certificate.total_skipped(),
        layer.certificate.total_reduced(),
        elapsed,
    )
}

/// Runs the widened-B2 comparison (client layer, `Prim`-emitting
/// contender) at one schedule length with the default worker count.
///
/// # Panics
///
/// As [`por_row`].
pub fn por_widened_row(schedule_len: usize) -> PorRow {
    por_widened_row_tuned(schedule_len, ccal_core::par::default_workers())
}

/// [`por_widened_row`] with an explicit worker count.
///
/// # Panics
///
/// As [`por_row`].
pub fn por_widened_row_tuned(schedule_len: usize, workers: usize) -> PorRow {
    let (grid, explored, skipped, reduced, serial_por) = certify_client_por(schedule_len, 1, true);
    let (grid_f, full_cases, full_skipped, zero, serial_full) =
        certify_client_por(schedule_len, 1, false);
    assert_eq!(grid, grid_f, "grid size must not depend on POR");
    assert_eq!(zero, 0, "POR off must reduce nothing");
    assert_eq!(
        explored + skipped + reduced,
        full_cases + full_skipped,
        "canonical + skipped + reduced must account for every full-grid case"
    );
    let (_, _, _, _, parallel_por) = certify_client_por(schedule_len, workers, true);
    let (_, _, _, _, parallel_full) = certify_client_por(schedule_len, workers, false);
    PorRow {
        schedule_len,
        grid,
        explored,
        skipped,
        reduced,
        serial_full,
        serial_por,
        parallel_full,
        parallel_por,
        workers,
    }
}

/// Renders the widened-B2 table (declared `Prim` footprints) for a family
/// of schedule lengths.
pub fn render_por_widened(lens: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let workers = ccal_core::par::default_workers();
    let _ = writeln!(
        out,
        "B2w — sleep-set reduction with declared `Prim` footprints, client-layer grid \
         (foo contender + 2 scratch threads, 4-pid domain, {workers} workers)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>8} {:>9} {:>8} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "len", "grid", "explored", "reduced", "shrink", "ser/full", "ser/por", "par/full", "par/por"
    );
    for &len in lens {
        let row = por_widened_row(len);
        let _ = writeln!(
            out,
            "{:>4} {:>8} {:>9} {:>8} {:>6.2}x {:>12?} {:>12?} {:>12?} {:>12?}",
            row.schedule_len,
            row.grid,
            row.explored,
            row.reduced,
            row.shrink(),
            row.serial_full,
            row.serial_por,
            row.parallel_full,
            row.parallel_por,
        );
    }
    push_caveat(&mut out);
    out
}

/// One row of the prefix-sharing study (experiment B5): the same
/// certification run with the lower-run prefix trie on and off, with the
/// work measured in *atom-steps* (machine steps plus emitted events — the
/// counter the engine increments for every executed lower run) rather
/// than wall-clock alone, so the comparison is robust on noisy or
/// single-core hosts.
#[derive(Debug, Clone)]
pub struct PrefixRow {
    /// Schedule prefix length.
    pub schedule_len: usize,
    /// Contexts in the (3-pid) grid.
    pub grid: usize,
    /// Checking cases discharged (identical with sharing on and off).
    pub cases: usize,
    /// Atom-steps executed with prefix sharing off (serial engine).
    pub steps_full: u64,
    /// Atom-steps executed with prefix sharing on, deep sharing off
    /// (serial engine).
    pub steps_shared: u64,
    /// Atom-steps executed with prefix *and* deep (query-point snapshot)
    /// sharing on (serial engine) — experiment B5d.
    pub steps_deep: u64,
    /// Memoized lower-run reuses with sharing on (serial engine).
    pub shared_hits: u64,
    /// Mid-run query-point resumes with deep sharing on (serial engine).
    pub deep_hits: u64,
    /// Serial wall time, sharing off.
    pub serial_full: Duration,
    /// Serial wall time, sharing on (deep off).
    pub serial_shared: Duration,
    /// Serial wall time, sharing and deep sharing on.
    pub serial_deep: Duration,
    /// Parallel wall time, sharing off.
    pub parallel_full: Duration,
    /// Parallel wall time, sharing on.
    pub parallel_shared: Duration,
    /// Worker threads used for the parallel runs.
    pub workers: usize,
}

impl PrefixRow {
    /// Shared-over-full atom-step ratio — the fraction of lower-machine
    /// work the trie could *not* share (lower is better; 1.0 means no
    /// sharing).
    pub fn step_ratio(&self) -> f64 {
        self.steps_shared as f64 / self.steps_full.max(1) as f64
    }

    /// Deep-over-full atom-step ratio (B5d): lower-machine work left after
    /// query-point snapshot forking on top of the boundary trie.
    pub fn deep_ratio(&self) -> f64 {
        self.steps_deep as f64 / self.steps_full.max(1) as f64
    }
}

/// One timed client-layer certification on the B5 configuration (`L1 ⊢
/// M2 : L2` via `R2`: the focused participant runs `foo` — whose critical
/// section suppresses query points (§2), so a run consumes only the
/// schedule slots up to its lock acquisition — against a `foo`-shaped
/// contender and one scratch thread over a 3-pid scheduler domain),
/// returning the discharged cases, the atom-steps and memo hits recorded
/// by the engine's process-global counters, and the wall time.
///
/// The counters are process-global, so callers that want meaningful step
/// counts must not run other checks concurrently (the bench binary and
/// the serial rows here are fine; unit tests assert only
/// monotone/structural facts). Convergence dedup is pinned off so the
/// step counters isolate the sharing axis (B7 measures convergence).
fn certify_prefix(
    schedule_len: usize,
    workers: usize,
    share: bool,
    deep: bool,
) -> (usize, u64, u64, u64, Duration) {
    use ccal_core::strategy::ScratchPlayer;
    let b = Loc(0);
    let m2 = ccal_clightx::clightx_module("M2", M2_SOURCE).expect("M2 parses");
    let contexts = ContextGen::new(vec![Pid(0), Pid(1), Pid(2)])
        .with_player(Pid(1), Arc::new(FooEnvPlayer::new(Pid(1), b, 1)))
        .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(100))))
        .with_schedule_len(schedule_len)
        .with_max_contexts(3_usize.pow(schedule_len as u32))
        .contexts();
    ccal_core::prefix::steps_reset();
    let start = Instant::now();
    let opts = CheckOptions::new(contexts)
        .with_workload("foo", vec![vec![ccal_core::val::Val::Loc(b)]])
        .with_workers(workers)
        .with_prefix_share(share)
        .with_deep_share(deep)
        .with_state_dedup(false);
    let layer = check_fun(
        &lock_interface(),
        &m2,
        &l2_interface(),
        &r2_relation(),
        Pid(0),
        &opts,
    )
    .expect("B5 certification succeeds");
    let elapsed = start.elapsed();
    (
        layer.certificate.total_cases(),
        ccal_core::prefix::steps_total(),
        ccal_core::prefix::shared_total(),
        ccal_core::prefix::deep_total(),
        elapsed,
    )
}

/// Runs the B5 comparison at one schedule length with the default worker
/// count.
///
/// # Panics
///
/// Panics if certification fails or the shared run diverges from the full
/// run in discharged cases.
pub fn prefix_row(schedule_len: usize) -> PrefixRow {
    prefix_row_tuned(schedule_len, ccal_core::par::default_workers())
}

/// [`prefix_row`] with an explicit worker count for the parallel runs.
/// Step counts and memo hits are taken from the serial runs, where they
/// are deterministic (parallel workers may race to a prefix before the
/// first result lands in the trie).
///
/// # Panics
///
/// As [`prefix_row`].
pub fn prefix_row_tuned(schedule_len: usize, workers: usize) -> PrefixRow {
    let grid = 3_usize.pow(schedule_len as u32);
    let (cases, steps_shared, shared_hits, _, serial_shared) =
        certify_prefix(schedule_len, 1, true, false);
    let (deep_cases, steps_deep, _, deep_hits, serial_deep) =
        certify_prefix(schedule_len, 1, true, true);
    let (full_cases, steps_full, full_hits, full_deep, serial_full) =
        certify_prefix(schedule_len, 1, false, false);
    assert_eq!(cases, full_cases, "sharing changed the discharged cases");
    assert_eq!(cases, deep_cases, "deep sharing changed the discharged cases");
    assert_eq!(full_hits, 0, "sharing off must not hit the memo");
    assert_eq!(full_deep, 0, "sharing off must not resume snapshots");
    let (_, _, _, _, parallel_shared) = certify_prefix(schedule_len, workers, true, false);
    let (_, _, _, _, parallel_full) = certify_prefix(schedule_len, workers, false, false);
    PrefixRow {
        schedule_len,
        grid,
        cases,
        steps_full,
        steps_shared,
        steps_deep,
        shared_hits,
        deep_hits,
        serial_full,
        serial_shared,
        serial_deep,
        parallel_full,
        parallel_shared,
        workers,
    }
}

/// Renders the B5 table for a family of schedule lengths.
pub fn render_prefix(lens: &[usize]) -> String {
    render_prefix_rows(&lens.iter().map(|&l| prefix_row(l)).collect::<Vec<_>>())
}

/// Renders already-computed B5 rows (so callers can also assert on them
/// without re-running the certifications).
pub fn render_prefix_rows(rows: &[PrefixRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let workers = rows.first().map_or(0, |r| r.workers);
    let _ = writeln!(
        out,
        "B5/B5d — prefix-sharing lower-run exploration on the client-layer grid \
         (foo contender + scratch thread, 3-pid domain, {workers} workers; \
         steps = atom-steps, serial engine; `deep` = query-point snapshot trie)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>6} {:>7} {:>12} {:>12} {:>12} {:>7} {:>7} {:>6} {:>6} {:>12} {:>12} {:>12}",
        "len",
        "grid",
        "cases",
        "steps/full",
        "steps/share",
        "steps/deep",
        "hits",
        "d-hits",
        "ratio",
        "d-rat",
        "ser/full",
        "ser/share",
        "ser/deep"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>7} {:>12} {:>12} {:>12} {:>7} {:>7} {:>5.2} {:>5.2} {:>12?} {:>12?} {:>12?}",
            row.schedule_len,
            row.grid,
            row.cases,
            row.steps_full,
            row.steps_shared,
            row.steps_deep,
            row.shared_hits,
            row.deep_hits,
            row.step_ratio(),
            row.deep_ratio(),
            row.serial_full,
            row.serial_shared,
            row.serial_deep,
        );
    }
    push_caveat(&mut out);
    out
}

/// One row of the deep-sharing study (experiment B5d) on the
/// *interpreted* ticket stack — the workload PR 4's whole-outcome memo
/// cannot reach: `acq` fetches a ticket and then spins on `get_n`,
/// querying the environment between polls, so a run consumes most of its
/// script and rarely shares a whole consumed prefix. Query-point
/// snapshots cut inside the spin loop: every poll is a fork point, so two
/// contexts agreeing on the first `k` schedule digits pay for those `k`
/// digits once, machine-state included.
#[derive(Debug, Clone)]
pub struct DeepRow {
    /// Schedule prefix length.
    pub schedule_len: usize,
    /// Contexts in the (3-pid) grid.
    pub grid: usize,
    /// Checking cases discharged (identical across all three engines).
    pub cases: usize,
    /// Atom-steps with sharing off entirely.
    pub steps_full: u64,
    /// Atom-steps with whole-outcome + boundary sharing (PR-4 tier).
    pub steps_shared: u64,
    /// Atom-steps with query-point snapshot sharing on top.
    pub steps_deep: u64,
    /// Whole-outcome/boundary reuses in the deep run.
    pub shared_hits: u64,
    /// Mid-run query-point resumes in the deep run.
    pub deep_hits: u64,
    /// Serial wall time, boundary sharing only.
    pub serial_shared: Duration,
    /// Serial wall time, deep sharing on.
    pub serial_deep: Duration,
}

impl DeepRow {
    /// The B5d acceptance metric: deep-share atom-steps over
    /// boundary-share atom-steps — the work the query-point trie removes
    /// *beyond* what PR 4's sharing already removed.
    pub fn deep_over_shared(&self) -> f64 {
        self.steps_deep as f64 / self.steps_shared.max(1) as f64
    }

    /// Deep-share atom-steps over the memo-free baseline.
    pub fn deep_over_full(&self) -> f64 {
        self.steps_deep as f64 / self.steps_full.max(1) as f64
    }
}

/// One serial interpreted-ticket certification (`L0 ⊢ M1 : L1`, `acq` +
/// `rel` workloads, ticket contender + scratch thread over a 3-pid
/// domain) with the sharing tiers set explicitly, returning discharged
/// cases, the process-global step/reuse counters, and wall time.
/// Convergence dedup is pinned off so the step counters isolate the
/// prefix/deep-sharing axis (B7 measures the convergence axis).
fn certify_ticket_prefix(
    schedule_len: usize,
    share: bool,
    deep: bool,
) -> (usize, u64, u64, u64, Duration) {
    use ccal_core::strategy::ScratchPlayer;
    let b = Loc(0);
    let m1 = m1_module().expect("M1 parses");
    let contexts = ContextGen::new(vec![Pid(0), Pid(1), Pid(2)])
        .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), b, 1)))
        .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(100))))
        .with_schedule_len(schedule_len)
        .with_max_contexts(3_usize.pow(schedule_len as u32))
        .contexts();
    ccal_core::prefix::steps_reset();
    let start = Instant::now();
    let opts = CheckOptions::new(contexts)
        .with_workload("acq", vec![vec![ccal_core::val::Val::Loc(b)]])
        .with_workload("rel", vec![vec![ccal_core::val::Val::Loc(b)]])
        .with_workers(1)
        .with_prefix_share(share)
        .with_deep_share(deep)
        .with_state_dedup(false);
    let layer = check_fun(
        &l0_interface(),
        &m1,
        &lock_low_interface(),
        &SimRelation::identity(),
        Pid(0),
        &opts,
    )
    .expect("B5d certification succeeds");
    let elapsed = start.elapsed();
    (
        layer.certificate.total_cases(),
        ccal_core::prefix::steps_total(),
        ccal_core::prefix::shared_total(),
        ccal_core::prefix::deep_total(),
        elapsed,
    )
}

/// Runs the B5d comparison at one schedule length (serial engine — the
/// step counters are the metric and they are only deterministic there).
///
/// # Panics
///
/// Panics if certification fails or any sharing tier changes the
/// discharged cases.
pub fn deep_row(schedule_len: usize) -> DeepRow {
    let grid = 3_usize.pow(schedule_len as u32);
    let (cases, steps_shared, _, boundary_deep, serial_shared) =
        certify_ticket_prefix(schedule_len, true, false);
    assert_eq!(boundary_deep, 0, "deep off must not resume snapshots");
    let (deep_cases, steps_deep, shared_hits, deep_hits, serial_deep) =
        certify_ticket_prefix(schedule_len, true, true);
    let (full_cases, steps_full, full_hits, _, _) = certify_ticket_prefix(schedule_len, false, false);
    assert_eq!(cases, deep_cases, "deep sharing changed the discharged cases");
    assert_eq!(cases, full_cases, "sharing changed the discharged cases");
    assert_eq!(full_hits, 0, "sharing off must not hit the memo");
    DeepRow {
        schedule_len,
        grid,
        cases,
        steps_full,
        steps_shared,
        steps_deep,
        shared_hits,
        deep_hits,
        serial_shared,
        serial_deep,
    }
}

/// Renders already-computed B5d rows.
pub fn render_deep_rows(rows: &[DeepRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "B5d — query-point snapshot trie on the interpreted ticket stack \
         (acq spin loop, ticket contender + scratch thread, 3-pid domain, \
         serial engine; ratio = deep/share atom-steps)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>6} {:>7} {:>12} {:>12} {:>12} {:>7} {:>7} {:>6} {:>12} {:>12}",
        "len",
        "grid",
        "cases",
        "steps/full",
        "steps/share",
        "steps/deep",
        "hits",
        "d-hits",
        "ratio",
        "ser/share",
        "ser/deep"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>7} {:>12} {:>12} {:>12} {:>7} {:>7} {:>5.2} {:>12?} {:>12?}",
            row.schedule_len,
            row.grid,
            row.cases,
            row.steps_full,
            row.steps_shared,
            row.steps_deep,
            row.shared_hits,
            row.deep_hits,
            row.deep_over_shared(),
            row.serial_shared,
            row.serial_deep,
        );
    }
    out
}

/// One row of the execution-tier study (experiment B6): the same
/// interpreted-ticket certification (`L0 ⊢ M1 : L′1`, `acq` + `rel`
/// workloads) on the compiled bytecode VM vs. the tree-walking
/// interpreter, with the work measured in *primitive steps* — the
/// per-tier unit of ClightX execution (retired VM instructions vs.
/// popped interpreter work items), counted against the same step budget
/// by both tiers — so the comparison is host-independent.
#[derive(Debug, Clone)]
pub struct BytecodeRow {
    /// Schedule prefix length.
    pub schedule_len: usize,
    /// Contexts in the (3-pid) grid.
    pub grid: usize,
    /// Checking cases discharged (identical across tiers — the tiers are
    /// bit-identical in verdicts and logs).
    pub cases: usize,
    /// Primitive steps retired by the bytecode VM.
    pub prim_steps_vm: u64,
    /// Primitive steps consumed by the interpreter.
    pub prim_steps_interp: u64,
    /// Atom-steps (machine steps + events) on the VM run — tier-invariant
    /// by construction; recorded so drift is visible.
    pub atom_steps_vm: u64,
    /// Atom-steps on the interpreter run.
    pub atom_steps_interp: u64,
    /// Serial wall time on the VM tier.
    pub serial_vm: Duration,
    /// Serial wall time on the interpreter tier.
    pub serial_interp: Duration,
}

impl BytecodeRow {
    /// The B6 acceptance metric: VM primitive steps over interpreter
    /// primitive steps (lower is better; the spin loop compiles to two
    /// retired instructions per iteration against the interpreter's four
    /// work items, so ≈0.5 is the expected regime).
    pub fn prim_step_ratio(&self) -> f64 {
        self.prim_steps_vm as f64 / self.prim_steps_interp.max(1) as f64
    }
}

/// One serial ticket certification with the ClightX tier set explicitly
/// (sharing off, so the primitive-step counters reflect pure execution
/// work; convergence dedup pinned off too — its fingerprint exists only
/// on the VM tier, so leaving it on would break the tier-atom-equality
/// invariant B6 gates on), returning discharged cases, primitive steps,
/// atom-steps and wall time. The context family is the *contended*
/// regime — two ticket contenders, `acq` workload — because B6 measures
/// the hot path: the spin loop, where the compiled tier's two retired
/// instructions per poll replace the interpreter's four work-item pops.
fn certify_ticket_tier(schedule_len: usize, bytecode: bool) -> (usize, u64, u64, Duration) {
    let b = Loc(0);
    let m1 = m1_module().expect("M1 parses");
    let contexts = ContextGen::new(vec![Pid(0), Pid(1), Pid(2)])
        .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), b, 1)))
        .with_player(Pid(2), Arc::new(TicketEnvPlayer::new(Pid(2), b, 1)))
        .with_schedule_len(schedule_len)
        .with_max_contexts(3_usize.pow(schedule_len as u32))
        .contexts();
    ccal_core::prefix::steps_reset();
    let start = Instant::now();
    let opts = CheckOptions::new(contexts)
        .with_workload("acq", vec![vec![ccal_core::val::Val::Loc(b)]])
        .with_workload("rel", vec![vec![ccal_core::val::Val::Loc(b)]])
        .with_workers(1)
        .with_bytecode(bytecode)
        .with_state_dedup(false);
    let layer = check_fun(
        &l0_interface(),
        &m1,
        &lock_low_interface(),
        &SimRelation::identity(),
        Pid(0),
        &opts,
    )
    .expect("B6 certification succeeds");
    let elapsed = start.elapsed();
    (
        layer.certificate.total_cases(),
        ccal_core::prefix::prim_steps_total(),
        ccal_core::prefix::steps_total(),
        elapsed,
    )
}

/// Runs the B6 comparison at one schedule length (serial engine — the
/// step counters are the metric and they are only deterministic there).
///
/// # Panics
///
/// Panics if certification fails or the tiers disagree on the discharged
/// cases. Atom-step equality (the runs are bit-identical at the machine
/// level) is asserted by the bench binary, which owns the process-global
/// counters; unit tests sharing the process assert only structural facts.
pub fn bytecode_row(schedule_len: usize) -> BytecodeRow {
    let grid = 3_usize.pow(schedule_len as u32);
    let (cases, prim_steps_vm, atom_steps_vm, serial_vm) =
        certify_ticket_tier(schedule_len, true);
    let (interp_cases, prim_steps_interp, atom_steps_interp, serial_interp) =
        certify_ticket_tier(schedule_len, false);
    assert_eq!(cases, interp_cases, "the tier changed the discharged cases");
    BytecodeRow {
        schedule_len,
        grid,
        cases,
        prim_steps_vm,
        prim_steps_interp,
        atom_steps_vm,
        atom_steps_interp,
        serial_vm,
        serial_interp,
    }
}

/// Renders already-computed B6 rows.
pub fn render_bytecode_rows(rows: &[BytecodeRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "B6 — compiled ClightX tier on the ticket stack (acq spin loop, \
         two ticket contenders, 3-pid domain, serial engine; \
         ratio = vm/interp primitive steps)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>6} {:>7} {:>12} {:>12} {:>6} {:>12} {:>12}",
        "len", "grid", "cases", "prim/vm", "prim/interp", "ratio", "ser/vm", "ser/interp"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>7} {:>12} {:>12} {:>5.2} {:>12?} {:>12?}",
            row.schedule_len,
            row.grid,
            row.cases,
            row.prim_steps_vm,
            row.prim_steps_interp,
            row.prim_step_ratio(),
            row.serial_vm,
            row.serial_interp,
        );
    }
    out
}

/// One row of the convergence-dedup study (experiment B7): the same
/// contended ticket certification as B6 (two ticket contenders, 3-pid
/// domain, `acq` + `rel` workloads, serial engine, bytecode tier) with
/// the convergence cache on vs. off. The metric is machine-level
/// atom-steps: a convergence hit answers a whole suffix from a
/// fingerprint-identical prior state without retiring a single further
/// atom step, so the dedup/baseline ratio measures how much of the
/// diamond-shaped schedule mass the canonical state fingerprint
/// collapses.
#[derive(Debug, Clone)]
pub struct ConvergenceRow {
    /// Schedule prefix length.
    pub schedule_len: usize,
    /// Contexts in the (3-pid) grid.
    pub grid: usize,
    /// Checking cases discharged (identical across cache settings — the
    /// cache is observationally inert).
    pub cases: usize,
    /// Atom-steps with the convergence cache forced off (baseline).
    pub atom_steps_base: u64,
    /// Atom-steps with the convergence cache on.
    pub atom_steps_dedup: u64,
    /// Suffixes answered from the cache on the dedup run.
    pub conv_hits: u64,
    /// Convergence-cache evictions on the dedup run (capacity pressure;
    /// 0 means every reusable suffix stayed resident).
    pub conv_evictions: u64,
    /// Serial wall time, cache off.
    pub serial_base: Duration,
    /// Serial wall time, cache on.
    pub serial_dedup: Duration,
}

impl ConvergenceRow {
    /// The B7 acceptance metric: dedup atom-steps over baseline
    /// atom-steps (lower is better; the gate in the `convergence` bench
    /// binary requires ≤ 0.6 at `L = 5`).
    pub fn atom_step_ratio(&self) -> f64 {
        self.atom_steps_dedup as f64 / self.atom_steps_base.max(1) as f64
    }
}

/// Runs `f` serially with the convergence cache forced to `state_dedup`
/// and the ClightX tier forced to `bytecode` — both tiers expose an
/// in-flight state fingerprint (`CRun::state_fp` on the interpreter,
/// the VM's slot image on the bytecode tier), so the cache is live
/// either way and the tier is a measurement axis. Returns
/// `(f(), atom_steps, conv_hits, conv_evictions)`. Evictions are
/// accumulated on kernel drop, which happens inside the checker call, so
/// reading the counter after `f` returns captures them.
fn conv_bracket<T>(bytecode: bool, state_dedup: bool, f: &dyn Fn() -> T) -> (T, u64, u64, u64) {
    use ccal_core::prefix::{self, BytecodeOverride, StateDedupOverride};
    let _tier = BytecodeOverride::force(bytecode);
    let _sd = StateDedupOverride::force(state_dedup);
    prefix::steps_reset();
    let out = f();
    (
        out,
        prefix::steps_total(),
        prefix::converged_total(),
        prefix::conv_evictions_total(),
    )
}

/// One serial contended-ticket certification (B6's context family — the
/// regime where overtaking schedules reconverge on identical lock
/// states) on the given ClightX tier, returning the discharged cases.
/// Counter bracketing is the caller's job via [`conv_bracket`]; the
/// workload must request the tier itself because
/// `check_prim_refinement` re-forces the tier its options name.
fn certify_ticket_contended(schedule_len: usize, bytecode: bool) -> usize {
    let b = Loc(0);
    let m1 = m1_module().expect("M1 parses");
    let contexts = ContextGen::new(vec![Pid(0), Pid(1), Pid(2)])
        .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), b, 1)))
        .with_player(Pid(2), Arc::new(TicketEnvPlayer::new(Pid(2), b, 1)))
        .with_schedule_len(schedule_len)
        .with_max_contexts(3_usize.pow(schedule_len as u32))
        .contexts();
    let opts = CheckOptions::new(contexts)
        .with_workload("acq", vec![vec![ccal_core::val::Val::Loc(b)]])
        .with_workload("rel", vec![vec![ccal_core::val::Val::Loc(b)]])
        .with_workers(1)
        .with_bytecode(bytecode);
    let layer = check_fun(
        &l0_interface(),
        &m1,
        &lock_low_interface(),
        &SimRelation::identity(),
        Pid(0),
        &opts,
    )
    .expect("B7 certification succeeds");
    layer.certificate.total_cases()
}

/// Runs the B7 comparison at one schedule length (serial engine — the
/// step counters are the metric and they are only deterministic there).
///
/// # Panics
///
/// Panics if certification fails, the cache changes the discharged
/// cases, or the forced-off baseline records a hit.
pub fn convergence_row(schedule_len: usize) -> ConvergenceRow {
    let grid = 3_usize.pow(schedule_len as u32);
    let run = || {
        let start = Instant::now();
        let cases = certify_ticket_contended(schedule_len, true);
        (cases, start.elapsed())
    };
    // The forced-off baseline records no hits of its own, but the hit
    // counter is process-global, so `base_hits == 0` is only asserted in
    // the bench binary (via the per-checker stats), which owns its
    // process; in-crate tests share theirs with the rest of the suite.
    let ((cases_base, serial_base), atom_steps_base, _base_hits, _) =
        conv_bracket(true, false, &run);
    let ((cases, serial_dedup), atom_steps_dedup, conv_hits, conv_evictions) =
        conv_bracket(true, true, &run);
    assert_eq!(
        cases, cases_base,
        "convergence dedup changed the discharged cases"
    );
    ConvergenceRow {
        schedule_len,
        grid,
        cases,
        atom_steps_base,
        atom_steps_dedup,
        conv_hits,
        conv_evictions,
        serial_base,
        serial_dedup,
    }
}

/// Renders already-computed B7 rows.
pub fn render_convergence_rows(rows: &[ConvergenceRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "B7 — convergence dedup on the contended ticket stack (two ticket \
         contenders, 3-pid domain, serial engine, bytecode tier; \
         ratio = dedup/baseline atom-steps)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>6} {:>7} {:>12} {:>12} {:>6} {:>8} {:>7} {:>12} {:>12}",
        "len", "grid", "cases", "steps/base", "steps/dedup", "ratio", "hits", "evict", "ser/base",
        "ser/dedup"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>7} {:>12} {:>12} {:>5.2} {:>8} {:>7} {:>12?} {:>12?}",
            row.schedule_len,
            row.grid,
            row.cases,
            row.atom_steps_base,
            row.atom_steps_dedup,
            row.atom_step_ratio(),
            row.conv_hits,
            row.conv_evictions,
            row.serial_base,
            row.serial_dedup,
        );
    }
    push_caveat(&mut out);
    out
}

/// Per-checker convergence accounting for the B7 record: one serial
/// passing workload per checker with the cache on vs. off.
#[derive(Debug, Clone)]
pub struct ConvCheckerStat {
    /// Checker name (`sim`, `interp`, `live`, `race`, `linz`, `seqref`);
    /// `interp` is the `sim` workload on the interpreter tier, every
    /// other row runs on the bytecode tier.
    pub checker: &'static str,
    /// Cases discharged (identical across cache settings).
    pub cases: usize,
    /// Atom-steps with the cache forced off.
    pub atom_steps_base: u64,
    /// Atom-steps with the cache on.
    pub atom_steps_dedup: u64,
    /// Suffixes answered from the cache.
    pub conv_hits: u64,
    /// Cache evictions on the dedup run.
    pub conv_evictions: u64,
}

/// Runs each of the five checkers once per cache setting on a ticket
/// workload (serial; bytecode tier, plus an `interp` row re-running the
/// refinement workload on the interpreter tier now that `CRun` exposes a
/// convergence fingerprint) and reports the per-checker hit and
/// eviction counters. Verdicts, counts and rendered outcomes are
/// asserted byte-identical across settings — a dedup-differential in
/// miniature, run inside the bench so the emitted counters are
/// guaranteed to describe observationally-inert reuse.
///
/// # Panics
///
/// Panics if any checker's outcome differs between cache settings.
pub fn convergence_checker_stats() -> Vec<ConvCheckerStat> {
    let b = Loc(0);
    let iface = m1_module()
        .expect("M1 parses")
        .install(&l0_interface())
        .expect("M1 installs over L0");
    let player_contexts = || {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(Pid(1), Arc::new(TicketEnvPlayer::new(Pid(1), b, 2)))
            .with_schedule_len(4)
            .with_max_contexts(16)
            .contexts()
    };
    let open_contexts = || {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(4)
            .with_max_contexts(16)
            .contexts()
    };
    let focused = PidSet::from_pids([Pid(0), Pid(1)]);
    let mut programs: BTreeMap<Pid, ThreadScript> = BTreeMap::new();
    for pid in [Pid(0), Pid(1)] {
        programs.insert(
            pid,
            vec![
                ("acq".to_owned(), vec![ccal_core::val::Val::Loc(b)]),
                ("rel".to_owned(), vec![ccal_core::val::Val::Loc(b)]),
            ],
        );
    }
    let validator = lock_history_validator();
    let scripts: Vec<OpScript> = vec![vec![
        ("acq".to_owned(), vec![ccal_core::val::Val::Loc(b)]),
        ("rel".to_owned(), vec![ccal_core::val::Val::Loc(b)]),
    ]];
    let canon = |res: Result<Obligation, ccal_core::calculus::LayerError>| match res {
        Ok(ob) => (ob.cases_checked, format!("{ob:?}")),
        Err(e) => (0, format!("err:{e}")),
    };
    let checkers: Vec<(&'static str, bool, Box<dyn Fn() -> (usize, String) + '_>)> = vec![
        (
            "sim",
            true,
            Box::new(|| {
                let cases = certify_ticket_contended(4, true);
                (cases, format!("certified:{cases}"))
            }),
        ),
        (
            "interp",
            false,
            Box::new(|| {
                let cases = certify_ticket_contended(4, false);
                (cases, format!("certified:{cases}"))
            }),
        ),
        (
            "live",
            true,
            Box::new(|| {
                canon(check_liveness_tuned(
                    &iface,
                    "acq",
                    &[ccal_core::val::Val::Loc(b)],
                    Pid(0),
                    &player_contexts(),
                    ticket_bound(4, 8, 2),
                    200_000,
                    1,
                    false,
                    false,
                    false,
                ))
            }),
        ),
        (
            "race",
            true,
            Box::new(|| {
                canon(check_race_freedom_tuned(
                    &iface,
                    &focused,
                    &programs,
                    &open_contexts(),
                    200_000,
                    1,
                    false,
                    false,
                    false,
                ))
            }),
        ),
        (
            "linz",
            true,
            Box::new(|| {
                canon(check_linearizability_tuned(
                    &iface,
                    &focused,
                    &programs,
                    &r1_relation(),
                    &validator,
                    &open_contexts(),
                    200_000,
                    1,
                    false,
                    false,
                    false,
                ))
            }),
        ),
        (
            "seqref",
            true,
            Box::new(|| {
                canon(check_sequence_refinement_tuned(
                    &iface,
                    &lock_interface(),
                    &r1_relation(),
                    Pid(0),
                    &player_contexts(),
                    &scripts,
                    200_000,
                    1,
                    false,
                    false,
                    false,
                ))
            }),
        ),
    ];
    let mut stats = Vec::new();
    for (checker, bytecode, run) in &checkers {
        let ((cases_base, out_base), atom_steps_base, base_hits, _) =
            conv_bracket(*bytecode, false, run.as_ref());
        let ((cases, out), atom_steps_dedup, conv_hits, conv_evictions) =
            conv_bracket(*bytecode, true, run.as_ref());
        assert_eq!(
            (cases, &out),
            (cases_base, &out_base),
            "{checker}: convergence dedup perturbed the outcome"
        );
        assert_eq!(base_hits, 0, "{checker}: forced-off cache recorded a hit");
        stats.push(ConvCheckerStat {
            checker,
            cases,
            atom_steps_base,
            atom_steps_dedup,
            conv_hits,
            conv_evictions,
        });
    }
    stats
}

/// Renders the per-checker convergence accounting.
pub fn render_checker_stats(stats: &[ConvCheckerStat]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "B7 — per-checker convergence counters (serial, ticket workloads; \
         bytecode tier except the `interp` row, which re-runs the `sim` \
         workload on the interpreter tier)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>7} {:>12} {:>12} {:>6} {:>8} {:>7}",
        "checker", "cases", "steps/base", "steps/dedup", "ratio", "hits", "evict"
    );
    for s in stats {
        let _ = writeln!(
            out,
            "{:>8} {:>7} {:>12} {:>12} {:>5.2} {:>8} {:>7}",
            s.checker,
            s.cases,
            s.atom_steps_base,
            s.atom_steps_dedup,
            s.atom_steps_dedup as f64 / s.atom_steps_base.max(1) as f64,
            s.conv_hits,
            s.conv_evictions,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn por_shrinks_the_kernel_stack_grid_at_least_twofold() {
        let row = por_row_tuned(5, 2);
        assert_eq!(row.grid, 4_usize.pow(5));
        assert!(row.reduced > 0, "independent players must license pruning");
        assert!(
            row.shrink() >= 2.0,
            "B2 acceptance: ≥2× shrink, got {:.2}x",
            row.shrink()
        );
    }

    #[test]
    fn declared_prim_footprints_widen_the_client_layer_reduction() {
        let row = por_widened_row_tuned(5, 2);
        assert_eq!(row.grid, 4_usize.pow(5));
        assert!(
            row.reduced > 0,
            "the foo contender's declared f/g footprints must license pruning \
             against the scratch threads"
        );
        assert!(
            row.shrink() >= 2.0,
            "B2w acceptance: ≥2× shrink, got {:.2}x",
            row.shrink()
        );
    }

    #[test]
    fn prefix_sharing_reuses_lower_runs_and_preserves_evidence() {
        // Case counts are asserted inside `prefix_row_tuned`; here only
        // monotone facts are checked, because the step counters are
        // process-global and other tests in this binary may be running
        // concurrently. The hard ≤50 % step-ratio acceptance lives in the
        // `prefix_sharing` bench binary, which owns its process.
        let row = prefix_row_tuned(4, 2);
        assert_eq!(row.grid, 81);
        assert!(row.cases > 0);
        assert!(
            row.shared_hits > 0,
            "the trie must reuse at least one lower run on the 3^4 grid"
        );
    }

    #[test]
    fn query_point_snapshots_cut_into_the_ticket_spin() {
        // As above: only structural facts here (the step counters are
        // process-global); the hard ≤0.7 deep/share gate lives in the
        // `prefix_sharing` bench binary.
        let row = deep_row(3);
        assert_eq!(row.grid, 27);
        assert!(row.cases > 0);
        assert!(
            row.deep_hits > 0,
            "the snapshot trie must resume at least one mid-spin run on the 3^3 grid"
        );
    }

    #[test]
    fn the_bytecode_tier_retires_fewer_primitive_steps() {
        // As with the sharing rows: only monotone/structural facts here
        // (the step counters are process-global); the hard ≤0.6 prim-step
        // gate lives in the `bytecode_vm` bench binary.
        let row = bytecode_row(3);
        assert_eq!(row.grid, 27);
        assert!(row.cases > 0);
        assert!(
            row.prim_steps_vm < row.prim_steps_interp,
            "the VM must retire fewer primitive steps than the interpreter pops \
             work items (vm {} vs interp {})",
            row.prim_steps_vm,
            row.prim_steps_interp
        );
    }

    #[test]
    fn convergence_dedup_collapses_the_contended_ticket_grid() {
        // As with the sharing rows: only monotone/structural facts here
        // (the step counters are process-global); the hard ≤0.6
        // atom-step gate and the per-checker zero-hit baseline live in
        // the `convergence` bench binary.
        let row = convergence_row(3);
        assert_eq!(row.grid, 27);
        assert!(row.cases > 0);
        assert!(
            row.conv_hits > 0,
            "overtaking ticket schedules must reconverge on the 3^3 grid"
        );
        assert!(
            row.atom_steps_dedup < row.atom_steps_base,
            "convergence hits must save atom-steps (base {} vs dedup {})",
            row.atom_steps_base,
            row.atom_steps_dedup
        );
    }

    #[test]
    fn compositional_space_is_exponentially_smaller() {
        let row = compositional_row(3);
        assert_eq!(row.monolithic_contexts, 64);
        assert_eq!(row.compositional_contexts, 16, "2 × 2^3");
        assert!(row.cases > 0);
        // The gap widens with the bound.
        let row5 = compositional_row(5);
        assert!(
            row5.monolithic_contexts / row5.compositional_contexts
                > row.monolithic_contexts / row.compositional_contexts
        );
    }
}
