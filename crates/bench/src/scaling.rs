//! The compositionality study (experiment B1).
//!
//! The paper's thesis is that layer-local verification plus composition
//! rules beats whole-system reasoning: "it enables local reasoning such
//! that the implementation can be first verified over a single thread `t`
//! ... and the guarantees can then be propagated to the whole concurrent
//! machine by parallel compositions" (§1). This module quantifies the
//! analogous effect in the bounded checker: the schedule space a
//! *monolithic* exploration must cover grows as `n^(k·L)` for `k`
//! participants, while the compositional route checks `k` participants
//! independently (`k · n^L`) and discharges `Pcomp` side conditions on
//! probe logs.

use std::time::{Duration, Instant};

use ccal_core::calculus::{check_fun, pcomp, CheckOptions};
use ccal_core::contexts::ContextGen;
use ccal_core::id::{Loc, Pid};
use ccal_core::sim::SimRelation;
use ccal_objects::ticket::{l0_interface, lock_low_interface, m1_module, TicketEnvPlayer};
use std::sync::Arc;

/// One row of the scaling comparison, including the serial-vs-parallel
/// exploration axis.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Schedule prefix length per participant.
    pub schedule_len: usize,
    /// Contexts a monolithic product exploration would need
    /// (`2^(2·len)` for two participants).
    pub monolithic_contexts: usize,
    /// Contexts the compositional route explored (two per-participant
    /// checks).
    pub compositional_contexts: usize,
    /// Wall time of the serial compositional certification (1 worker,
    /// dedup off — the reference engine).
    pub compositional_time: Duration,
    /// Wall time with `workers` threads, dedup off.
    pub parallel_time: Duration,
    /// Wall time with `workers` threads *and* symmetric-schedule dedup.
    pub parallel_dedup_time: Duration,
    /// Worker threads used for the parallel runs.
    pub workers: usize,
    /// Checking cases discharged.
    pub cases: usize,
}

/// One timed compositional certification: both participants checked at
/// `schedule_len` with the given engine settings, then `Pcomp`-composed.
/// Returns the total contexts explored, the discharged cases, and the
/// wall time.
fn certify_both(schedule_len: usize, workers: usize, dedup: bool) -> (usize, usize, Duration) {
    let b = Loc(0);
    let m1 = m1_module().expect("M1 parses");
    let start = Instant::now();
    let mut layers = Vec::new();
    let mut contexts_used = 0;
    for (me, other) in [(Pid(0), Pid(1)), (Pid(1), Pid(0))] {
        let contexts = ContextGen::new(vec![Pid(0), Pid(1)])
            .with_player(other, Arc::new(TicketEnvPlayer::new(other, b, 1)))
            .with_schedule_len(schedule_len)
            .contexts();
        contexts_used += contexts.len();
        let opts = CheckOptions::new(contexts)
            .with_workload("acq", vec![vec![ccal_core::val::Val::Loc(b)]])
            .with_workload("rel", vec![vec![ccal_core::val::Val::Loc(b)]])
            .with_workers(workers)
            .with_dedup(dedup);
        let layer = check_fun(
            &l0_interface(),
            &m1,
            &lock_low_interface(),
            &SimRelation::identity(),
            me,
            &opts,
        )
        .expect("per-participant certification succeeds");
        layers.push(layer);
    }
    let composed = pcomp(&layers[0], &layers[1]).expect("compatible layers");
    (
        contexts_used,
        composed.certificate.total_cases(),
        start.elapsed(),
    )
}

/// Runs the compositional ticket-lock certification at the given schedule
/// length with the default worker count, reporting the explored-context
/// accounting and serial/parallel/dedup timings.
///
/// # Panics
///
/// Panics if certification fails — the configuration is expected to be
/// correct.
pub fn compositional_row(schedule_len: usize) -> ScalingRow {
    compositional_row_tuned(schedule_len, ccal_core::par::default_workers())
}

/// [`compositional_row`] with an explicit worker count for the parallel
/// runs (the serial reference always uses 1 worker, dedup off).
///
/// # Panics
///
/// Panics if certification fails.
pub fn compositional_row_tuned(schedule_len: usize, workers: usize) -> ScalingRow {
    let (contexts_used, cases, compositional_time) = certify_both(schedule_len, 1, false);
    let (_, parallel_cases, parallel_time) = certify_both(schedule_len, workers, false);
    let (_, dedup_cases, parallel_dedup_time) = certify_both(schedule_len, workers, true);
    assert_eq!(cases, parallel_cases, "parallel run diverged from serial");
    assert_eq!(cases, dedup_cases, "dedup run diverged from serial");
    ScalingRow {
        schedule_len,
        monolithic_contexts: 2_usize.pow(2 * schedule_len as u32),
        compositional_contexts: contexts_used,
        compositional_time,
        parallel_time,
        parallel_dedup_time,
        workers,
        cases,
    }
}

/// Renders the comparison for a family of schedule lengths.
pub fn render_scaling(lens: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let workers = ccal_core::par::default_workers();
    let _ = writeln!(
        out,
        "B1 — compositional vs. monolithic exploration, serial vs. parallel engine \
         (2 participants, {workers} workers)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>14} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "len", "monolithic", "compositional", "cases", "serial", "parallel", "par+dedup", "speedup"
    );
    for &len in lens {
        let row = compositional_row(len);
        let speedup =
            row.compositional_time.as_secs_f64() / row.parallel_dedup_time.as_secs_f64().max(1e-9);
        let _ = writeln!(
            out,
            "{:>4} {:>12} {:>14} {:>8} {:>12?} {:>12?} {:>12?} {:>7.2}x",
            row.schedule_len,
            row.monolithic_contexts,
            row.compositional_contexts,
            row.cases,
            row.compositional_time,
            row.parallel_time,
            row.parallel_dedup_time,
            speedup
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compositional_space_is_exponentially_smaller() {
        let row = compositional_row(3);
        assert_eq!(row.monolithic_contexts, 64);
        assert_eq!(row.compositional_contexts, 16, "2 × 2^3");
        assert!(row.cases > 0);
        // The gap widens with the bound.
        let row5 = compositional_row(5);
        assert!(
            row5.monolithic_contexts / row5.compositional_contexts
                > row.monolithic_contexts / row.compositional_contexts
        );
    }
}
