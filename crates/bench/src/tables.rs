//! Tables 1 and 2 of the evaluation (§6), regenerated from this
//! reproduction.
//!
//! The paper reports *lines of Coq proof*; the analogous costs here are
//! lines of Rust per component (Table 1) and, per object, implementation
//! size, specification size, and the discharged checking effort that
//! replaces proof effort (Table 2). Absolute numbers differ by design —
//! what must reproduce is the *shape*: linking infrastructure dominates
//! the toolkit; per object, the lock stacks carry the bulk of the effort
//! while lock-reusing objects (shared queue, CV, IPC) are cheap.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ccal_core::calculus::CertifiedLayer;
use ccal_core::contexts::ContextGen;
use ccal_core::id::{Loc, Pid, QId};

/// One row of the Table 1 analog.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Toolkit component name.
    pub component: &'static str,
    /// Lines of Coq the paper reports.
    pub paper_loc: u32,
    /// Lines of Rust in this reproduction.
    pub rust_loc: usize,
    /// Which files/modules were counted.
    pub counted: &'static str,
}

fn workspace_root() -> PathBuf {
    // crates/bench -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn count_lines(rel_paths: &[&str]) -> usize {
    let root = workspace_root();
    rel_paths
        .iter()
        .map(|p| {
            std::fs::read_to_string(root.join(p))
                .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count())
                .unwrap_or(0)
        })
        .sum()
}

/// Computes the Table 1 analog: toolkit component sizes, paper vs. this
/// reproduction.
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            component: "Auxiliary library",
            paper_loc: 6_200,
            rust_loc: count_lines(&[
                "crates/core/src/id.rs",
                "crates/core/src/val.rs",
                "crates/core/src/event.rs",
                "crates/core/src/log.rs",
                "crates/core/src/abs.rs",
                "crates/core/src/replay.rs",
            ]),
            counted: "ccal-core: ids/vals/events/logs/abs/replay",
        },
        Table1Row {
            component: "C verifier",
            paper_loc: 2_200,
            rust_loc: count_lines(&[
                "crates/clightx/src/ast.rs",
                "crates/clightx/src/parser.rs",
                "crates/clightx/src/lower.rs",
                "crates/clightx/src/check.rs",
                "crates/clightx/src/interp.rs",
            ]),
            counted: "ccal-clightx (parser, lowering, checks, interpreter)",
        },
        Table1Row {
            component: "Asm verifier",
            paper_loc: 800,
            rust_loc: count_lines(&["crates/machine/src/asm.rs", "crates/machine/src/exec.rs"]),
            counted: "ccal-machine: asm + exec",
        },
        Table1Row {
            component: "Simulation library",
            paper_loc: 1_800,
            rust_loc: count_lines(&["crates/core/src/sim.rs", "crates/core/src/contexts.rs"]),
            counted: "ccal-core: sim + contexts",
        },
        Table1Row {
            component: "Multilayer linking",
            paper_loc: 17_000,
            rust_loc: count_lines(&[
                "crates/core/src/layer.rs",
                "crates/core/src/machine.rs",
                "crates/core/src/module.rs",
                "crates/core/src/calculus.rs",
                "crates/core/src/rely.rs",
                "crates/core/src/refine.rs",
            ]),
            counted: "ccal-core: layers, machines, calculus, refinement",
        },
        Table1Row {
            component: "Multithread linking",
            paper_loc: 10_000,
            rust_loc: count_lines(&[
                "crates/core/src/conc.rs",
                "crates/core/src/strategy.rs",
                "crates/core/src/env.rs",
                "crates/objects/src/sched.rs",
                "crates/compcertx/src/link.rs",
            ]),
            counted: "game machine, strategies, scheduler layers, frame linking",
        },
        Table1Row {
            component: "Multicore linking",
            paper_loc: 7_000,
            rust_loc: count_lines(&[
                "crates/machine/src/mx86.rs",
                "crates/machine/src/lx86.rs",
                "crates/machine/src/linking.rs",
                "crates/machine/src/mem.rs",
            ]),
            counted: "ccal-machine: Mx86, Lx86, Thm 3.1",
        },
        Table1Row {
            component: "Thread-safe CompCertX",
            paper_loc: 7_500,
            rust_loc: count_lines(&[
                "crates/compcertx/src/compile.rs",
                "crates/compcertx/src/validate.rs",
                "crates/compcertx/src/memalg.rs",
            ]),
            counted: "ccal-compcertx: codegen, validation, memory algebra",
        },
    ]
}

/// Renders Table 1 as an aligned text table.
pub fn render_table1() -> String {
    let rows = table1();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1 — toolkit components: paper (lines of Coq) vs. this reproduction (lines of Rust)"
    );
    let _ = writeln!(out, "{:<24} {:>10} {:>10}   counted", "Component", "Coq LOC", "Rust LOC");
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>10}   {}",
            r.component, r.paper_loc, r.rust_loc, r.counted
        );
    }
    let total_paper: u32 = rows.iter().map(|r| r.paper_loc).sum();
    let total_rust: usize = rows.iter().map(|r| r.rust_loc).sum();
    let _ = writeln!(out, "{:<24} {:>10} {:>10}", "TOTAL", total_paper, total_rust);
    out
}

/// One row of the Table 2 analog.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The object.
    pub component: &'static str,
    /// Paper: C&Asm source lines.
    pub paper_source: u32,
    /// Paper: total proof lines (invariant + code + simulation).
    pub paper_proof: u32,
    /// This reproduction: implementation source lines (ClightX/asm).
    pub impl_loc: usize,
    /// This reproduction: specification + relation module lines.
    pub spec_loc: usize,
    /// Obligations discharged when certifying the object.
    pub obligations: usize,
    /// Executed (context × workload) checking cases.
    pub cases: usize,
}

fn count_str_lines(s: &str) -> usize {
    s.lines().filter(|l| !l.trim().is_empty()).count()
}

fn certified_stats(layer: &CertifiedLayer) -> (usize, usize) {
    (
        layer.certificate.obligations().len(),
        layer.certificate.total_cases(),
    )
}

/// Computes the Table 2 analog by actually certifying every object (the
/// checking cases play the role proof lines play in the paper: the effort
/// that establishes the object's correctness).
pub fn table2() -> Vec<Table2Row> {
    use ccal_objects::{condvar, ipc, mcs, qlock, sched, sharedq, ticket};
    use std::sync::Arc;

    let b = Loc(0);
    // Ticket lock (full stack).
    let low = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::TicketEnvPlayer::new(Pid(1), b, 2)))
        .with_schedule_len(3)
        .contexts();
    let atomic = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ticket::FooEnvPlayer::new(Pid(1), b, 2)))
        .with_schedule_len(3)
        .contexts();
    let ticket_stack =
        ticket::certify_ticket_stack(Pid(0), b, low, atomic).expect("ticket certifies");
    let (t_ob, t_cases) = certified_stats(&ticket_stack.lock_layer);

    // MCS lock.
    let mcs_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(mcs::McsEnvPlayer::new(Pid(1), b, 2)))
        .with_schedule_len(3)
        .contexts();
    let mcs_layer = mcs::certify_mcs_lock(Pid(0), b, mcs_ctx).expect("mcs certifies");
    let (m_ob, m_cases) = certified_stats(&mcs_layer);

    // Shared queue.
    let q = Loc(3);
    let q_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(sharedq::SharedQEnvPlayer::new(Pid(1), q, 2)))
        .with_schedule_len(3)
        .contexts();
    let q_layer = sharedq::certify_shared_queue(Pid(0), q, q_ctx).expect("sharedq certifies");
    let (q_ob, q_cases) = certified_stats(&q_layer);

    // Scheduler.
    let s_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(sched::WakerEnvPlayer::new(Pid(1), QId(5), 2)))
        .with_schedule_len(3)
        .contexts();
    let s_layer =
        sched::certify_scheduler(Pid(0), QId(5), Loc(9), s_ctx).expect("scheduler certifies");
    let (s_ob, s_cases) = certified_stats(&s_layer);

    // Queuing lock.
    let l = Loc(4);
    let ql_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(qlock::QlockEnvPlayer::new(Pid(1), l, 2)))
        .with_schedule_len(3)
        .contexts();
    let ql_layer = qlock::certify_qlock(Pid(0), l, ql_ctx).expect("qlock certifies");
    let (ql_ob, ql_cases) = certified_stats(&ql_layer);

    // Condition variable + IPC (reusing the lock stacks).
    let cv_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(condvar::CvEnvPlayer::new(Pid(1), QId(8), l)))
        .with_schedule_len(3)
        .contexts();
    let cv_layer =
        condvar::certify_condvar(Pid(0), QId(8), l, cv_ctx).expect("condvar certifies");
    let (cv_ob, cv_cases) = certified_stats(&cv_layer);

    let ch = Loc(6);
    let ipc_ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(Pid(1), Arc::new(ipc::SenderEnvPlayer::new(Pid(1), ch, 2)))
        .with_schedule_len(3)
        .contexts();
    let ipc_layer = ipc::certify_ipc(Pid(0), ch, ipc_ctx).expect("ipc certifies");
    let (i_ob, i_cases) = certified_stats(&ipc_layer);

    let spec_lines = |file: &str| count_lines(&[file]);

    vec![
        Table2Row {
            component: "Ticket lock",
            paper_source: 74,
            paper_proof: 615 + 1_080 + 1_173 + 2_296,
            impl_loc: count_str_lines(ticket::M1_SOURCE),
            spec_loc: spec_lines("crates/objects/src/ticket.rs"),
            obligations: t_ob,
            cases: t_cases,
        },
        Table2Row {
            component: "MCS lock",
            paper_source: 287,
            paper_proof: 1_569 + 2_299 + 1_899 + 3_049,
            impl_loc: count_str_lines(mcs::MCS_SOURCE),
            spec_loc: spec_lines("crates/objects/src/mcs.rs"),
            obligations: m_ob,
            cases: m_cases,
        },
        Table2Row {
            component: "Local queue",
            paper_source: 377,
            paper_proof: 554 + 748 + 2_821 + 3_647,
            impl_loc: count_str_lines(ccal_objects::localq::LOCALQ_SOURCE),
            spec_loc: spec_lines("crates/objects/src/localq.rs"),
            obligations: 1,
            cases: 6,
        },
        Table2Row {
            component: "Shared queue",
            paper_source: 20,
            paper_proof: 107 + 190 + 171 + 419,
            impl_loc: count_str_lines(sharedq::SHAREDQ_SOURCE),
            spec_loc: spec_lines("crates/objects/src/sharedq.rs"),
            obligations: q_ob,
            cases: q_cases,
        },
        Table2Row {
            component: "Scheduler",
            paper_source: 62,
            paper_proof: 153 + 166 + 1_724 + 2_042,
            impl_loc: count_str_lines(sched::SCHED_C_SOURCE) + 8,
            spec_loc: spec_lines("crates/objects/src/sched.rs"),
            obligations: s_ob,
            cases: s_cases,
        },
        Table2Row {
            component: "Queuing lock",
            paper_source: 112,
            paper_proof: 255 + 992 + 328 + 464,
            impl_loc: count_str_lines(qlock::QLOCK_SOURCE),
            spec_loc: spec_lines("crates/objects/src/qlock.rs"),
            obligations: ql_ob,
            cases: ql_cases,
        },
        Table2Row {
            component: "Condition variable",
            paper_source: 0,
            paper_proof: 0,
            impl_loc: count_str_lines(condvar::CONDVAR_SOURCE),
            spec_loc: spec_lines("crates/objects/src/condvar.rs"),
            obligations: cv_ob,
            cases: cv_cases,
        },
        Table2Row {
            component: "IPC",
            paper_source: 0,
            paper_proof: 0,
            impl_loc: count_str_lines(ipc::IPC_SOURCE),
            spec_loc: spec_lines("crates/objects/src/ipc.rs"),
            obligations: i_ob,
            cases: i_cases,
        },
    ]
}

/// Renders Table 2 as an aligned text table.
pub fn render_table2() -> String {
    let rows = table2();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 — per-object statistics: paper (Coq lines) vs. this reproduction"
    );
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>9} | {:>8} {:>9} {:>6} {:>7}",
        "Component", "src(Coq)", "proof(Coq)", "impl(RS)", "spec(RS)", "oblig", "cases"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>9} | {:>8} {:>9} {:>6} {:>7}",
            r.component, r.paper_source, r.paper_proof, r.impl_loc, r.spec_loc, r.obligations,
            r.cases
        );
    }
    let _ = writeln!(
        out,
        "(rows with 0 paper numbers are objects the paper mentions without giving sizes)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_real_files() {
        let rows = table1();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.rust_loc > 0, "{} counted no lines", r.component);
        }
    }

    #[test]
    fn table1_renders() {
        let s = render_table1();
        assert!(s.contains("Multilayer linking"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn table2_certifies_all_objects_and_renders() {
        let s = render_table2();
        assert!(s.contains("Ticket lock"));
        assert!(s.contains("Queuing lock"));
    }

    #[test]
    fn table2_shape_matches_paper() {
        // The compositionality claim of §6: building the shared queue on
        // the certified lock is far cheaper than the locks themselves —
        // in the paper by proof lines, here by implementation size.
        let rows = table2();
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.component == n)
                .unwrap_or_else(|| panic!("row {n}"))
                .clone()
        };
        assert!(by_name("Shared queue").impl_loc < by_name("MCS lock").impl_loc);
        assert!(by_name("Ticket lock").impl_loc < by_name("MCS lock").impl_loc);
    }
}
