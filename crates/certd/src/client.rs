//! The thin client: one connection, one request, one response.

use std::io;

use crate::proto::{read_msg, write_msg, Addr, Conn, Msg, VERSION};
use crate::spec::{CertRequest, CertResponse};

fn proto_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn open(addr: &Addr) -> io::Result<Conn> {
    let mut conn = Conn::connect(addr)?;
    write_msg(
        &mut conn,
        &Msg::Hello {
            role: "client".into(),
            version: VERSION,
        },
    )?;
    Ok(conn)
}

/// Sends one certification request and waits for the verdict.
///
/// # Errors
///
/// Transport failures, daemon-side errors (unknown stack, front-end
/// failure), protocol confusion.
pub fn certify(addr: &Addr, req: &CertRequest) -> io::Result<CertResponse> {
    let mut conn = open(addr)?;
    write_msg(&mut conn, &Msg::Certify(req.clone()))?;
    match read_msg(&mut conn)? {
        Msg::Result(resp) => Ok(resp),
        Msg::Error { msg } => Err(proto_err(format!("daemon error: {msg}"))),
        other => Err(proto_err(format!("unexpected reply: {other:?}"))),
    }
}

/// Pings the daemon (readiness probe).
///
/// # Errors
///
/// Transport failures or a non-pong reply.
pub fn ping(addr: &Addr) -> io::Result<()> {
    let mut conn = open(addr)?;
    write_msg(&mut conn, &Msg::Ping)?;
    match read_msg(&mut conn)? {
        Msg::Pong => Ok(()),
        other => Err(proto_err(format!("unexpected reply: {other:?}"))),
    }
}

/// Asks the daemon to exit.
///
/// # Errors
///
/// Transport failures.
pub fn shutdown(addr: &Addr) -> io::Result<()> {
    let mut conn = open(addr)?;
    write_msg(&mut conn, &Msg::Shutdown)?;
    // The ack is best-effort: the daemon may exit before replying.
    let _ = read_msg(&mut conn);
    Ok(())
}
