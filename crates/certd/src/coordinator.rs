//! The certification daemon: listeners, the chunk lease queue, and the
//! in-order fold that makes sharded exploration observationally
//! identical to a serial in-process run.
//!
//! ## Failure semantics
//!
//! Each unit's flat case grid is cut into windows ("chunks") and leased
//! to connected shards; the coordinator itself runs chunks only when no
//! shard is available (or a chunk has exhausted its remote attempts).
//! Chunk results are folded **in ascending window order**: the unit's
//! failure is the failure of the least failing window (whose own
//! evidence is already index-least within it, because windows keep
//! whole-grid indices), and the case accounting sums the windows below
//! that cut — exactly what a serial whole-grid run reports.
//!
//! A shard that disconnects or stalls mid-lease has its window returned
//! to the queue and re-leased (bounded attempts, then the coordinator
//! runs it locally). Because every window run is deterministic, a killed
//! worker can change neither the verdict nor the evidence — only the
//! `retries` accounting.

use std::collections::VecDeque;
use std::io;
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

use crate::proto::{read_msg, write_msg, Addr, ChunkReport, Conn, Lease, Msg, VERSION};
use crate::registry::{self, UnitDef, WarmMap};
use crate::spec::{CertRequest, CertResponse, UnitReport};
use crate::store::{CertStore, StoredManifest, StoredUnit};

/// Daemon configuration.
#[derive(Debug)]
pub struct DaemonOptions {
    /// The certificate store (in-memory or directory-backed).
    pub store: CertStore,
    /// How long a leased chunk may stay silent before it is abandoned
    /// and re-queued. Must exceed the worst-case window runtime.
    pub lease_timeout: Duration,
    /// Remote attempts per chunk before it is forced local.
    pub max_lease_attempts: u32,
    /// Local runner poll interval while waiting for shard results.
    pub local_poll: Duration,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            store: CertStore::in_memory(),
            lease_timeout: Duration::from_secs(30),
            max_lease_attempts: 3,
            local_poll: Duration::from_millis(25),
        }
    }
}

#[derive(Debug)]
enum ChunkState {
    Pending { attempts: u32 },
    Leased { id: u64, attempts: u32 },
    Done(ChunkReport),
}

#[derive(Debug)]
struct ChunkSlot {
    lo: usize,
    hi: usize,
    state: ChunkState,
}

/// The in-flight unit: its chunk table and lease bookkeeping.
#[derive(Debug)]
struct WorkState {
    stack: String,
    unit: String,
    fingerprint: String,
    /// Semantic sharing key — the warm-state key shipped in leases.
    share: String,
    params: crate::spec::CertParams,
    warm: bool,
    chunks: Vec<ChunkSlot>,
    /// Pending chunk indices, kept ascending (preference only; the fold
    /// is order-insensitive because completion is keyed by index).
    queue: VecDeque<usize>,
    /// Least chunk index seen to fail; work above it is cancelled.
    least_failed: Option<usize>,
    retries: u64,
    remote_done: usize,
}

impl WorkState {
    /// Finalizable: every chunk below (and at) the failure cut is done,
    /// or — with no failure — every chunk is done.
    fn finished(&self) -> bool {
        let cut = self.least_failed.unwrap_or(self.chunks.len());
        self.chunks[..cut]
            .iter()
            .all(|c| matches!(c.state, ChunkState::Done(_)))
    }
}

struct Inner {
    opts: DaemonOptions,
    /// Serializes certification requests (one grid in flight at a time;
    /// parallelism lives inside it, via shards and workers).
    certify_gate: Mutex<()>,
    work: Mutex<Option<WorkState>>,
    cond: Condvar,
    warm: WarmMap,
    shards: AtomicUsize,
    lease_seq: AtomicU64,
    stopping: AtomicBool,
    addrs: Mutex<Vec<Addr>>,
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl Inner {
    /// Hands out the next eligible pending chunk. Shards take chunks
    /// with remote attempts left; the local runner takes chunks only
    /// when no shard is connected, or when a chunk has exhausted its
    /// remote attempts (the guaranteed-progress fallback).
    fn try_lease(&self, local: bool) -> Option<Lease> {
        let mut guard = relock(self.work.lock());
        let ws = guard.as_mut()?;
        let max = self.opts.max_lease_attempts;
        let shards_present = self.shards.load(Ordering::SeqCst) > 0;
        let pos = ws.queue.iter().position(|&i| {
            let ChunkState::Pending { attempts } = ws.chunks[i].state else {
                return false;
            };
            if local {
                !shards_present || attempts >= max
            } else {
                attempts < max
            }
        })?;
        let idx = ws.queue.remove(pos).expect("position came from the queue");
        let ChunkState::Pending { attempts } = ws.chunks[idx].state else {
            unreachable!("eligibility checked above");
        };
        let id = self.lease_seq.fetch_add(1, Ordering::SeqCst) + 1;
        ws.chunks[idx].state = ChunkState::Leased { id, attempts };
        Some(Lease {
            id,
            stack: ws.stack.clone(),
            unit: ws.unit.clone(),
            fingerprint: ws.fingerprint.clone(),
            share: ws.share.clone(),
            params: ws.params.clone(),
            lo: ws.chunks[idx].lo,
            hi: ws.chunks[idx].hi,
            warm: ws.warm,
        })
    }

    /// Records a finished lease. Stale ids (an abandoned lease whose
    /// shard answered late, or a previous unit's lease) are ignored —
    /// the chunk's current owner is authoritative. Infrastructure
    /// errors re-queue the chunk rather than completing it, with a hard
    /// cap so a deterministic registry error still terminates.
    fn complete_lease(&self, id: u64, report: ChunkReport, remote: bool) {
        let mut guard = relock(self.work.lock());
        if let Some(ws) = guard.as_mut() {
            let slot = ws
                .chunks
                .iter()
                .position(|c| matches!(c.state, ChunkState::Leased { id: lid, .. } if lid == id));
            if let Some(idx) = slot {
                let ChunkState::Leased { attempts, .. } = ws.chunks[idx].state else {
                    unreachable!("matched a leased slot");
                };
                let hard_cap = self.opts.max_lease_attempts + 2;
                if report.error.is_some() && attempts < hard_cap {
                    ws.chunks[idx].state = ChunkState::Pending {
                        attempts: attempts + 1,
                    };
                    ws.retries += 1;
                    ws.queue.push_back(idx);
                    ws.queue.make_contiguous().sort_unstable();
                } else {
                    let failed = report.failure.is_some();
                    ws.chunks[idx].state = ChunkState::Done(report);
                    if remote {
                        ws.remote_done += 1;
                    }
                    if failed && ws.least_failed.is_none_or(|k| idx < k) {
                        ws.least_failed = Some(idx);
                        ws.queue.retain(|&i| i < idx);
                    }
                }
            }
        }
        self.cond.notify_all();
    }

    /// Returns a leased chunk to the queue (shard death or stall).
    fn abandon_lease(&self, id: u64) {
        let mut guard = relock(self.work.lock());
        if let Some(ws) = guard.as_mut() {
            let slot = ws
                .chunks
                .iter()
                .position(|c| matches!(c.state, ChunkState::Leased { id: lid, .. } if lid == id));
            if let Some(idx) = slot {
                let ChunkState::Leased { attempts, .. } = ws.chunks[idx].state else {
                    unreachable!("matched a leased slot");
                };
                ws.chunks[idx].state = ChunkState::Pending {
                    attempts: attempts + 1,
                };
                ws.retries += 1;
                ws.queue.push_back(idx);
                ws.queue.make_contiguous().sort_unstable();
            }
        }
        self.cond.notify_all();
    }

    /// Runs one unit through the chunk queue and folds the windows back
    /// into a serial-equivalent report.
    fn run_unit_distributed(
        &self,
        req: &CertRequest,
        def: &UnitDef,
    ) -> Result<UnitReport, String> {
        let ncases = def.ncases.max(1);
        let chunk = if req.chunk_cases == 0 {
            ncases
        } else {
            req.chunk_cases.max(1)
        };
        let nchunks = ncases.div_ceil(chunk);
        {
            let mut guard = relock(self.work.lock());
            *guard = Some(WorkState {
                stack: req.stack.clone(),
                unit: def.name.clone(),
                fingerprint: def.fingerprint.to_string(),
                share: def.share.clone(),
                params: req.params.clone(),
                warm: req.warm,
                chunks: (0..nchunks)
                    .map(|i| ChunkSlot {
                        lo: i * chunk,
                        hi: ((i + 1) * chunk).min(ncases),
                        state: ChunkState::Pending { attempts: 0 },
                    })
                    .collect(),
                queue: (0..nchunks).collect(),
                least_failed: None,
                retries: 0,
                remote_done: 0,
            });
        }
        self.cond.notify_all();
        loop {
            if let Some(lease) = self.try_lease(true) {
                let warm = lease.warm.then(|| self.warm.get(&lease.share));
                let report = registry::run_lease(&lease, warm.as_ref());
                self.complete_lease(lease.id, report, false);
                continue;
            }
            let guard = relock(self.work.lock());
            match guard.as_ref() {
                Some(ws) if ws.finished() => break,
                Some(_) => {
                    let (guard, _) = self
                        .cond
                        .wait_timeout(guard, self.opts.local_poll)
                        .unwrap_or_else(PoisonError::into_inner);
                    drop(guard);
                }
                None => break,
            }
        }
        let ws = relock(self.work.lock())
            .take()
            .ok_or("work state vanished mid-unit")?;
        let mut report = UnitReport {
            unit: def.name.clone(),
            fingerprint: def.fingerprint.to_string(),
            chunks: ws.chunks.len(),
            remote_chunks: ws.remote_done,
            retries: ws.retries,
            ..UnitReport::default()
        };
        let cut = ws.least_failed.unwrap_or(ws.chunks.len());
        for (idx, slot) in ws.chunks.iter().enumerate() {
            if idx > cut {
                break;
            }
            let ChunkState::Done(cr) = &slot.state else {
                return Err(format!("chunk {idx} of `{}` never completed", def.name));
            };
            if let Some(e) = &cr.error {
                return Err(format!("chunk {idx} of `{}` failed: {e}", def.name));
            }
            report.cases_checked += cr.cases_checked;
            report.cases_skipped += cr.cases_skipped;
            report.cases_reduced += cr.cases_reduced;
            report.steps += cr.steps;
            report.shared += cr.shared;
            report.deep += cr.deep;
            report.prim_steps += cr.prim_steps;
            report.memo_entries = report.memo_entries.max(cr.memo_entries);
            report.snapshot_entries = report.snapshot_entries.max(cr.snapshot_entries);
            report.snapshot_hits += cr.snapshot_hits;
            report.snapshot_evictions += cr.snapshot_evictions;
            report.upper_hits += cr.upper_hits;
            report.upper_evictions += cr.upper_evictions;
            report.shared_family_hits += cr.shared_family_hits;
            if idx == cut {
                report.failure = cr.failure.clone();
            }
        }
        Ok(report)
    }

    /// The stack-manifest fast path: if a previous fully-clean run of
    /// this exact (stack, params) left a manifest, and every unit
    /// fingerprint in it is stored clean, the whole response is built
    /// from the store — the registry is never asked to decompose the
    /// stack (no front-end, no interface construction, no per-unit
    /// fingerprinting). Any gap — no manifest, a missing unit, a stored
    /// failure — falls back to the normal per-unit flow, which
    /// re-derives everything from scratch.
    fn try_manifest(&self, req: &CertRequest) -> Option<CertResponse> {
        let key = registry::manifest_key(&req.stack, &req.params);
        let manifest = self.opts.store.get_manifest(key)?;
        let mut reports = Vec::with_capacity(manifest.units.len());
        for (name, fp) in &manifest.units {
            let stored = self.opts.store.get(*fp)?;
            if stored.failure.is_some() {
                return None;
            }
            reports.push(UnitReport {
                unit: name.clone(),
                fingerprint: fp.to_string(),
                cache_hit: true,
                cases_checked: stored.cases_checked,
                cases_skipped: stored.cases_skipped,
                cases_reduced: stored.cases_reduced,
                ..UnitReport::default()
            });
        }
        let cache_hits = reports.len();
        Some(CertResponse {
            stack: req.stack.clone(),
            certified: true,
            failure: None,
            failed_unit: None,
            units: reports,
            cache_hits,
            manifest_hit: true,
            total_steps: 0,
        })
    }

    /// The certification flow: per unit, answer from the store or
    /// explore via the chunk queue; stop at the first failing unit
    /// (mirroring `check_fun`'s first-counterexample return).
    fn run_request(&self, req: &CertRequest) -> Result<CertResponse, String> {
        let _gate = relock(self.certify_gate.lock());
        if req.use_cache {
            if let Some(resp) = self.try_manifest(req) {
                return Ok(resp);
            }
        }
        let units = registry::stack_units(&req.stack, &req.params)?;
        let mut reports: Vec<UnitReport> = Vec::new();
        let mut cache_hits = 0usize;
        let mut failure: Option<String> = None;
        let mut failed_unit: Option<String> = None;
        for def in &units {
            if req.use_cache {
                if let Some(stored) = self.opts.store.get(def.fingerprint) {
                    cache_hits += 1;
                    let failed = stored.failure.is_some();
                    reports.push(UnitReport {
                        unit: def.name.clone(),
                        fingerprint: def.fingerprint.to_string(),
                        cache_hit: true,
                        cases_checked: stored.cases_checked,
                        cases_skipped: stored.cases_skipped,
                        cases_reduced: stored.cases_reduced,
                        failure: stored.failure.clone(),
                        ..UnitReport::default()
                    });
                    if failed {
                        failure = stored.failure;
                        failed_unit = Some(def.name.clone());
                        break;
                    }
                    continue;
                }
            }
            let report = self.run_unit_distributed(req, def)?;
            self.opts.store.put(
                def.fingerprint,
                StoredUnit {
                    unit: def.name.clone(),
                    cases_checked: report.cases_checked,
                    cases_skipped: report.cases_skipped,
                    cases_reduced: report.cases_reduced,
                    failure: report.failure.clone(),
                },
            );
            let failed = report.failure.is_some();
            if failed {
                failure = report.failure.clone();
                failed_unit = Some(def.name.clone());
            }
            reports.push(report);
            if failed {
                break;
            }
        }
        // A clean full run earns a manifest, so the next recertify of
        // this exact (stack, params) can skip decomposition entirely.
        // Failing runs must not: their first-failure flow depends on
        // re-decomposing up to the failing unit.
        if failure.is_none() && reports.len() == units.len() {
            self.opts.store.put_manifest(
                registry::manifest_key(&req.stack, &req.params),
                StoredManifest {
                    stack: req.stack.clone(),
                    units: units
                        .iter()
                        .map(|d| (d.name.clone(), d.fingerprint))
                        .collect(),
                },
            );
        }
        let total_steps = reports.iter().map(|r| r.steps).sum();
        Ok(CertResponse {
            stack: req.stack.clone(),
            certified: failure.is_none(),
            failure,
            failed_unit,
            units: reports,
            cache_hits,
            manifest_hit: false,
            total_steps,
        })
    }
}

fn handle_client(inner: &Arc<Inner>, conn: &mut Conn) {
    loop {
        match read_msg(conn) {
            Ok(Msg::Certify(req)) => {
                let reply = match inner.run_request(&req) {
                    Ok(resp) => Msg::Result(resp),
                    Err(msg) => Msg::Error { msg },
                };
                if write_msg(conn, &reply).is_err() {
                    return;
                }
            }
            Ok(Msg::Ping) => {
                if write_msg(conn, &Msg::Pong).is_err() {
                    return;
                }
            }
            Ok(Msg::Shutdown) => {
                inner.stopping.store(true, Ordering::SeqCst);
                let _ = write_msg(conn, &Msg::Pong);
                // Poke every listener so its accept loop observes the flag.
                for addr in relock(inner.addrs.lock()).iter() {
                    let _ = Conn::connect(addr);
                }
                return;
            }
            _ => return,
        }
    }
}

fn handle_shard(inner: &Arc<Inner>, conn: &mut Conn) {
    inner.shards.fetch_add(1, Ordering::SeqCst);
    inner.cond.notify_all();
    let _ = conn.set_read_timeout(Some(inner.opts.lease_timeout));
    let mut outstanding: Option<u64> = None;
    loop {
        match read_msg(conn) {
            Ok(Msg::LeaseReq) => {
                if outstanding.is_some() {
                    break;
                }
                let reply = match inner.try_lease(false) {
                    Some(lease) => {
                        outstanding = Some(lease.id);
                        Msg::Lease(lease)
                    }
                    None => Msg::NoWork { retry_ms: 25 },
                };
                if write_msg(conn, &reply).is_err() {
                    break;
                }
            }
            Ok(Msg::ChunkDone { id, report }) => {
                if outstanding == Some(id) {
                    outstanding = None;
                    inner.complete_lease(id, report, true);
                }
            }
            Ok(Msg::Ping) => {
                if write_msg(conn, &Msg::Pong).is_err() {
                    break;
                }
            }
            // Anything else — EOF (a killed shard's socket), a read
            // timeout (a stalled shard), a protocol error — abandons the
            // outstanding lease below so the chunk is re-run elsewhere.
            _ => break,
        }
    }
    if let Some(id) = outstanding {
        inner.abandon_lease(id);
    }
    inner.shards.fetch_sub(1, Ordering::SeqCst);
    inner.cond.notify_all();
}

fn handle_conn(inner: Arc<Inner>, mut conn: Conn) {
    let role = match read_msg(&mut conn) {
        Ok(Msg::Hello { role, version }) if version == VERSION => role,
        Ok(Msg::Hello { version, .. }) => {
            let _ = write_msg(
                &mut conn,
                &Msg::Error {
                    msg: format!("protocol version mismatch: daemon {VERSION}, peer {version}"),
                },
            );
            return;
        }
        _ => return,
    };
    match role.as_str() {
        "client" => handle_client(&inner, &mut conn),
        "shard" => handle_shard(&inner, &mut conn),
        other => {
            let _ = write_msg(
                &mut conn,
                &Msg::Error {
                    msg: format!("unknown role `{other}`"),
                },
            );
        }
    }
}

/// A running daemon (listeners live on background threads).
pub struct Daemon {
    inner: Arc<Inner>,
    tcp_addr: Option<String>,
    unix_path: Option<PathBuf>,
}

impl Daemon {
    /// Binds the requested listeners and starts serving. `tcp` is a
    /// `host:port` bind spec (port 0 picks an ephemeral port); `unix` a
    /// socket path (a stale file is replaced).
    ///
    /// # Errors
    ///
    /// Bind failures; requesting no listener at all.
    pub fn serve(
        opts: DaemonOptions,
        tcp: Option<&str>,
        unix: Option<&Path>,
    ) -> io::Result<Daemon> {
        if tcp.is_none() && unix.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "daemon needs at least one listener (tcp or unix)",
            ));
        }
        let inner = Arc::new(Inner {
            opts,
            certify_gate: Mutex::new(()),
            work: Mutex::new(None),
            cond: Condvar::new(),
            warm: WarmMap::new(),
            shards: AtomicUsize::new(0),
            lease_seq: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            addrs: Mutex::new(Vec::new()),
        });
        let mut tcp_addr = None;
        if let Some(spec) = tcp {
            let listener = TcpListener::bind(spec)?;
            let addr = listener.local_addr()?.to_string();
            relock(inner.addrs.lock()).push(Addr::Tcp(addr.clone()));
            tcp_addr = Some(addr);
            let accept_inner = Arc::clone(&inner);
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if accept_inner.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        let conn_inner = Arc::clone(&accept_inner);
                        thread::spawn(move || handle_conn(conn_inner, Conn::Tcp(stream)));
                    }
                }
            });
        }
        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = unix {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            relock(inner.addrs.lock()).push(Addr::Unix(path.to_path_buf()));
            unix_path = Some(path.to_path_buf());
            let accept_inner = Arc::clone(&inner);
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if accept_inner.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        let conn_inner = Arc::clone(&accept_inner);
                        thread::spawn(move || handle_conn(conn_inner, Conn::Unix(stream)));
                    }
                }
            });
        }
        #[cfg(not(unix))]
        if unix.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets unsupported on this host",
            ));
        }
        Ok(Daemon {
            inner,
            tcp_addr,
            unix_path,
        })
    }

    /// The bound TCP address (`host:port`), if a TCP listener was asked
    /// for — with port 0, this is where the ephemeral port shows up.
    pub fn tcp_addr(&self) -> Option<&str> {
        self.tcp_addr.as_deref()
    }

    /// The bound unix-socket path, if any.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// Asks the listeners to wind down (idempotent).
    pub fn stop(&self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        for addr in relock(self.inner.addrs.lock()).iter() {
            let _ = Conn::connect(addr);
        }
    }

    /// Whether shutdown has been requested (by [`Daemon::stop`] or a
    /// protocol `shutdown` message).
    pub fn stopped(&self) -> bool {
        self.inner.stopping.load(Ordering::SeqCst)
    }

    /// Connected shard count (diagnostic).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.load(Ordering::SeqCst)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop();
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}
