//! # ccal-certd — the certification service
//!
//! A long-running certification daemon for the CCAL reproduction, plus
//! the thin client and shard workers that talk to it. The daemon answers
//! "certify this layer stack" requests the same way `check_fun` does in
//! process, with three service-level additions:
//!
//! * **Content-addressed certificate store** ([`store`]): every
//!   certification unit (one `check_prim_refinement` obligation of a
//!   stack's Fig. 9 pipeline) is keyed by a
//!   [`ccal_core::fingerprint::ContentHash`] over its ClightX sources,
//!   both layer interfaces (with declared primitive footprints), the
//!   simulation relation, the context-family parameters and the full
//!   `SimOptions`. A request whose units all hit the store is answered
//!   with **zero** exploration steps; editing one layer dirties only the
//!   units whose inputs actually changed.
//! * **Warm memo state** ([`coordinator`], [`shard`]): the daemon and its
//!   shards keep one [`ccal_core::sim::SimWarm`] per unit fingerprint
//!   alive across requests, so a re-check of a known unit starts with the
//!   prefix memo, snapshot trie and upper-run cache already populated.
//!   Per-request hit/evict deltas are reported in the response.
//! * **Sharded grid** ([`proto`], [`coordinator`]): the kernel's flat
//!   `ci·ninner + inner` index space is cut into half-open windows and
//!   leased to shard processes over a length-prefixed JSON protocol (TCP
//!   or unix socket). The coordinator folds chunk results **in index
//!   order**, so the verdict, the case accounting and the index-least
//!   first failure are bit-identical to a serial in-process run. A shard
//!   that dies or stalls mid-lease has its window re-leased (bounded
//!   attempts, then the coordinator runs it locally), so a killed worker
//!   can never change the verdict or the evidence.
//!
//! The protocol, the unit decomposition and the failure semantics are
//! documented in `docs/DESIGN.md` ("Certification service").

#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod proto;
pub mod registry;
pub mod shard;
pub mod spec;
pub mod store;

pub use client::certify;
pub use coordinator::{Daemon, DaemonOptions};
pub use spec::{CertParams, CertRequest, CertResponse, UnitReport};
