//! `ccal-certd` — the certification service CLI.
//!
//! ```text
//! ccal-certd serve    [--tcp HOST:PORT] [--unix PATH] [--store DIR]
//!                     [--port-file PATH] [--lease-timeout-ms N]
//! ccal-certd shard    --connect ADDR
//! ccal-certd certify  STACK --connect ADDR [--workers N] [--schedule-len N]
//!                     [--rounds N] [--chunk-cases N] [--no-cache] [--no-warm]
//!                     [--no-por] [--no-prefix] [--no-deep] [--no-bytecode]
//!                     [--no-dedup] [--json]
//! ccal-certd stacks
//! ccal-certd ping     --connect ADDR
//! ccal-certd shutdown --connect ADDR
//! ```
//!
//! `ADDR` is `host:port` or `unix:/path/to.sock`. Exit codes: 0 the
//! request succeeded (and, for `certify`, the stack certified); 1 the
//! stack failed certification; 2 usage or infrastructure error.
//!
//! Shard test hooks (used by `scripts/verify.sh` and the differential
//! suite): `CCAL_CERTD_SHARD_EXIT_AFTER=n` makes the shard drop its
//! connection upon receiving its nth lease (exit code 43);
//! `CCAL_CERTD_SHARD_DELAY_MS=ms` sleeps before running each lease.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use ccal_certd::coordinator::{Daemon, DaemonOptions};
use ccal_certd::proto::Addr;
use ccal_certd::registry;
use ccal_certd::shard::{run_shard, ShardExit, ShardOptions};
use ccal_certd::spec::CertRequest;
use ccal_certd::store::CertStore;
use ccal_certd::{client, CertResponse};

fn fail(msg: &str) -> ExitCode {
    eprintln!("ccal-certd: {msg}");
    ExitCode::from(2)
}

/// Pulls `--name VALUE` out of `args`, if present.
fn take_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == name) {
        if i + 1 >= args.len() {
            return Err(format!("{name} needs a value"));
        }
        let value = args.remove(i + 1);
        args.remove(i);
        return Ok(Some(value));
    }
    Ok(None)
}

/// Pulls a boolean `--name` out of `args`.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == name) {
        args.remove(i);
        return true;
    }
    false
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn connect_addr(args: &mut Vec<String>) -> Result<Addr, String> {
    match take_value(args, "--connect")? {
        Some(a) => Ok(Addr::parse(&a)),
        None => Err("--connect ADDR is required".into()),
    }
}

fn cmd_serve(mut args: Vec<String>) -> Result<ExitCode, String> {
    let tcp = take_value(&mut args, "--tcp")?;
    let unix = take_value(&mut args, "--unix")?.map(PathBuf::from);
    let store_dir = take_value(&mut args, "--store")?.map(PathBuf::from);
    let port_file = take_value(&mut args, "--port-file")?.map(PathBuf::from);
    let lease_ms = take_value(&mut args, "--lease-timeout-ms")?
        .map(|v| v.parse::<u64>().map_err(|_| "bad --lease-timeout-ms"))
        .transpose()?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }
    let store = match store_dir {
        Some(dir) => CertStore::at_dir(dir).map_err(|e| format!("store: {e}"))?,
        None => CertStore::in_memory(),
    };
    let mut opts = DaemonOptions {
        store,
        ..DaemonOptions::default()
    };
    if let Some(ms) = lease_ms {
        opts.lease_timeout = Duration::from_millis(ms.max(1));
    }
    // Default to an ephemeral TCP port when no listener is requested.
    let tcp_spec = match (&tcp, &unix) {
        (None, None) => Some("127.0.0.1:0".to_owned()),
        _ => tcp,
    };
    let daemon = Daemon::serve(opts, tcp_spec.as_deref(), unix.as_deref())
        .map_err(|e| format!("serve: {e}"))?;
    if let Some(addr) = daemon.tcp_addr() {
        println!("ccal-certd: listening on {addr}");
    }
    if let Some(path) = daemon.unix_path() {
        println!("ccal-certd: listening on unix:{}", path.display());
    }
    if let Some(path) = &port_file {
        // Written via rename so a polling reader never sees a torn file.
        let addr = daemon
            .tcp_addr()
            .map(str::to_owned)
            .or_else(|| daemon.unix_path().map(|p| format!("unix:{}", p.display())))
            .expect("serve bound at least one listener");
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("{addr}\n")).map_err(|e| format!("port file: {e}"))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("port file: {e}"))?;
    }
    while !daemon.stopped() {
        std::thread::sleep(Duration::from_millis(100));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_shard(mut args: Vec<String>) -> Result<ExitCode, String> {
    let addr = connect_addr(&mut args)?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }
    let opts = ShardOptions {
        exit_after: env_u64("CCAL_CERTD_SHARD_EXIT_AFTER").map(|n| n as usize),
        delay: Duration::from_millis(env_u64("CCAL_CERTD_SHARD_DELAY_MS").unwrap_or(0)),
    };
    // Retry the initial connect (the daemon may still be binding), then
    // serve until the daemon goes away.
    let mut attempts = 0;
    loop {
        match run_shard(&addr, &opts) {
            Ok(ShardExit::Shutdown) | Ok(ShardExit::ConnectionLost) => {
                return Ok(ExitCode::SUCCESS)
            }
            Ok(ShardExit::Injected) => return Ok(ExitCode::from(43)),
            Err(e) => {
                attempts += 1;
                if attempts >= 50 {
                    return Err(format!("connect: {e}"));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn render_plain(resp: &CertResponse) {
    println!("stack: {}", resp.stack);
    println!(
        "verdict: {}",
        if resp.certified { "CERTIFIED" } else { "FAILED" }
    );
    for u in &resp.units {
        println!(
            "unit {unit}: {state} chunks={chunks} remote={remote} retries={retries} \
             checked={checked} skipped={skipped} reduced={reduced} steps={steps} \
             shared={shared} deep={deep} snap_hits={snap_hits} upper_hits={upper_hits} \
             family_hits={family_hits}",
            unit = u.unit,
            state = if u.cache_hit {
                "cache-hit"
            } else if u.failure.is_some() {
                "failed"
            } else {
                "checked"
            },
            chunks = u.chunks,
            remote = u.remote_chunks,
            retries = u.retries,
            checked = u.cases_checked,
            skipped = u.cases_skipped,
            reduced = u.cases_reduced,
            steps = u.steps,
            shared = u.shared,
            deep = u.deep,
            snap_hits = u.snapshot_hits,
            upper_hits = u.upper_hits,
            family_hits = u.shared_family_hits,
        );
    }
    println!("cache_hits: {}", resp.cache_hits);
    if resp.manifest_hit {
        println!("manifest_hit: true");
    }
    println!("total_steps: {}", resp.total_steps);
    if let Some(unit) = &resp.failed_unit {
        println!("failed_unit: {unit}");
    }
    if let Some(failure) = &resp.failure {
        println!("--- counterexample ---");
        println!("{failure}");
    }
}

fn cmd_certify(mut args: Vec<String>) -> Result<ExitCode, String> {
    let addr = connect_addr(&mut args)?;
    let json = take_flag(&mut args, "--json");
    let mut req = CertRequest::new("");
    if let Some(v) = take_value(&mut args, "--workers")? {
        req.params.workers = v.parse().map_err(|_| "bad --workers")?;
    }
    if let Some(v) = take_value(&mut args, "--schedule-len")? {
        req.params.schedule_len = v.parse().map_err(|_| "bad --schedule-len")?;
    }
    if let Some(v) = take_value(&mut args, "--rounds")? {
        req.params.rounds = v.parse().map_err(|_| "bad --rounds")?;
    }
    if let Some(v) = take_value(&mut args, "--chunk-cases")? {
        req.chunk_cases = v.parse().map_err(|_| "bad --chunk-cases")?;
    }
    req.use_cache = !take_flag(&mut args, "--no-cache");
    req.warm = !take_flag(&mut args, "--no-warm");
    req.params.por = !take_flag(&mut args, "--no-por");
    req.params.prefix_share = !take_flag(&mut args, "--no-prefix");
    req.params.deep_share = !take_flag(&mut args, "--no-deep");
    req.params.bytecode = !take_flag(&mut args, "--no-bytecode");
    req.params.dedup = !take_flag(&mut args, "--no-dedup");
    let mut rest = args.into_iter();
    req.stack = rest.next().ok_or("certify needs a STACK argument")?;
    let rest: Vec<String> = rest.collect();
    if !rest.is_empty() {
        return Err(format!("unexpected arguments: {rest:?}"));
    }
    let resp = client::certify(&addr, &req).map_err(|e| e.to_string())?;
    if json {
        print!("{}", resp.to_json().pretty());
    } else {
        render_plain(&resp);
    }
    Ok(if resp.certified {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return fail("usage: ccal-certd <serve|shard|certify|stacks|ping|shutdown> ...");
    }
    let cmd = argv.remove(0);
    let result = match cmd.as_str() {
        "serve" => cmd_serve(argv),
        "shard" => cmd_shard(argv),
        "certify" => cmd_certify(argv),
        "stacks" => {
            for s in registry::known_stacks() {
                println!("{s}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "ping" => {
            let mut args = argv;
            connect_addr(&mut args)
                .and_then(|addr| client::ping(&addr).map_err(|e| e.to_string()))
                .map(|()| {
                    println!("pong");
                    ExitCode::SUCCESS
                })
        }
        "shutdown" => {
            let mut args = argv;
            connect_addr(&mut args)
                .and_then(|addr| client::shutdown(&addr).map_err(|e| e.to_string()))
                .map(|()| ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    };
    result.unwrap_or_else(|msg| fail(&msg))
}
