//! The service wire protocol: length-prefixed JSON frames over TCP or a
//! unix socket.
//!
//! Every message is one frame: a big-endian `u32` byte length followed
//! by that many bytes of compact JSON (an object whose `"t"` field names
//! the message). Frames are capped at 16 MiB; a peer sending a longer
//! frame is protocol-broken and gets disconnected. The JSON layer is the
//! same deterministic codec the forensics artifacts use, so goldens can
//! pin the encoding byte-for-byte.

use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use ccal_forensics::json::{self, Json};

use crate::spec::{
    get, get_bool, get_opt_str, get_str, get_u64, get_usize, int, opt_str, CertParams,
    CertRequest, CertResponse,
};

/// Protocol version; both sides send it in `hello` and refuse mismatches.
pub const VERSION: u64 = 1;

/// Maximum frame payload, a guard against protocol confusion.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// A leased window of one unit's flat exploration grid: run cases
/// `lo..hi` (whole-grid indices, so case strings and first-failure
/// evidence are position-independent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Lease id; echoed in the matching [`Msg::ChunkDone`].
    pub id: u64,
    /// Registry stack name.
    pub stack: String,
    /// Unit name within the stack.
    pub unit: String,
    /// The unit's content fingerprint (certificate identity).
    pub fingerprint: String,
    /// The unit's semantic sharing key — the warm-state key on the
    /// shard. Units of one stack whose lower machines are content-equal
    /// carry the same key and share one warm exploration state; equal to
    /// `fingerprint` when semantic sharing is disabled
    /// (`CCAL_SHARE_SEMANTIC=0`).
    pub share: String,
    /// Exploration parameters.
    pub params: CertParams,
    /// Window start (inclusive flat index).
    pub lo: usize,
    /// Window end (exclusive flat index).
    pub hi: usize,
    /// Reuse warm memo state keyed by `share`.
    pub warm: bool,
}

/// A shard's accounting for one executed lease.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChunkReport {
    /// Cases explored in the window.
    pub cases_checked: usize,
    /// Cases skipped by dedup in the window.
    pub cases_skipped: usize,
    /// Cases pruned by POR in the window.
    pub cases_reduced: usize,
    /// Rendered simulation failure (index-least within the window).
    pub failure: Option<String>,
    /// Atom-step delta of this run.
    pub steps: u64,
    /// Prefix-memo shared-run delta.
    pub shared: u64,
    /// Deep snapshot-resume delta.
    pub deep: u64,
    /// Primitive-step delta.
    pub prim_steps: u64,
    /// Warm prefix-memo size after the run.
    pub memo_entries: usize,
    /// Warm snapshot-trie size after the run.
    pub snapshot_entries: usize,
    /// Snapshot-trie hit delta.
    pub snapshot_hits: u64,
    /// Snapshot-trie eviction delta.
    pub snapshot_evictions: u64,
    /// Upper-run cache hit delta.
    pub upper_hits: u64,
    /// Upper-run cache eviction delta.
    pub upper_evictions: u64,
    /// Reuse events (shared + deep + snapshot + upper hits) served while
    /// the warm state already held entries at lease start — the
    /// cross-unit / cross-request family-sharing proxy. Zero on cold or
    /// first-in-family runs.
    pub shared_family_hits: u64,
    /// Infrastructure error (registry failure, not a counterexample).
    pub error: Option<String>,
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Connection opener: `role` is `"client"` or `"shard"`.
    Hello {
        /// Peer role.
        role: String,
        /// Protocol version.
        version: u64,
    },
    /// Client → daemon: certify a stack.
    Certify(CertRequest),
    /// Daemon → client: the verdict.
    Result(CertResponse),
    /// Shard → daemon: ready for work.
    LeaseReq,
    /// Daemon → shard: a window to explore.
    Lease(Lease),
    /// Daemon → shard: nothing leasable right now; poll again.
    NoWork {
        /// Suggested poll delay.
        retry_ms: u64,
    },
    /// Shard → daemon: a lease's outcome.
    ChunkDone {
        /// Echo of [`Lease::id`].
        id: u64,
        /// The window's accounting.
        report: ChunkReport,
    },
    /// Liveness probe.
    Ping,
    /// Probe answer.
    Pong,
    /// Ask the daemon to exit.
    Shutdown,
    /// Protocol-level failure.
    Error {
        /// Human-readable reason.
        msg: String,
    },
}

impl ChunkReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cases_checked", int(self.cases_checked as u64)),
            ("cases_skipped", int(self.cases_skipped as u64)),
            ("cases_reduced", int(self.cases_reduced as u64)),
            ("failure", opt_str(&self.failure)),
            ("steps", int(self.steps)),
            ("shared", int(self.shared)),
            ("deep", int(self.deep)),
            ("prim_steps", int(self.prim_steps)),
            ("memo_entries", int(self.memo_entries as u64)),
            ("snapshot_entries", int(self.snapshot_entries as u64)),
            ("snapshot_hits", int(self.snapshot_hits)),
            ("snapshot_evictions", int(self.snapshot_evictions)),
            ("upper_hits", int(self.upper_hits)),
            ("upper_evictions", int(self.upper_evictions)),
            ("shared_family_hits", int(self.shared_family_hits)),
            ("error", opt_str(&self.error)),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        Ok(ChunkReport {
            cases_checked: get_usize(j, "cases_checked")?,
            cases_skipped: get_usize(j, "cases_skipped")?,
            cases_reduced: get_usize(j, "cases_reduced")?,
            failure: get_opt_str(j, "failure")?,
            steps: get_u64(j, "steps")?,
            shared: get_u64(j, "shared")?,
            deep: get_u64(j, "deep")?,
            prim_steps: get_u64(j, "prim_steps")?,
            memo_entries: get_usize(j, "memo_entries")?,
            snapshot_entries: get_usize(j, "snapshot_entries")?,
            snapshot_hits: get_u64(j, "snapshot_hits")?,
            snapshot_evictions: get_u64(j, "snapshot_evictions")?,
            upper_hits: get_u64(j, "upper_hits")?,
            upper_evictions: get_u64(j, "upper_evictions")?,
            // Tolerant: reports encoded before the counter existed
            // observed no family sharing.
            shared_family_hits: j
                .get("shared_family_hits")
                .and_then(Json::as_int)
                .and_then(|n| u64::try_from(n).ok())
                .unwrap_or(0),
            error: get_opt_str(j, "error")?,
        })
    }
}

impl Lease {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", int(self.id)),
            ("stack", Json::Str(self.stack.clone())),
            ("unit", Json::Str(self.unit.clone())),
            ("fingerprint", Json::Str(self.fingerprint.clone())),
            ("share", Json::Str(self.share.clone())),
            ("params", self.params.to_json()),
            ("lo", int(self.lo as u64)),
            ("hi", int(self.hi as u64)),
            ("warm", Json::Bool(self.warm)),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let fingerprint = get_str(j, "fingerprint")?;
        // Tolerant: leases encoded before semantic sharing keys existed
        // fall back to the per-unit fingerprint (the old warm key).
        let share = match j.get("share").and_then(Json::as_str) {
            Some(s) => s.to_owned(),
            None => fingerprint.clone(),
        };
        Ok(Lease {
            id: get_u64(j, "id")?,
            stack: get_str(j, "stack")?,
            unit: get_str(j, "unit")?,
            fingerprint,
            share,
            params: CertParams::from_json(get(j, "params")?)?,
            lo: get_usize(j, "lo")?,
            hi: get_usize(j, "hi")?,
            warm: get_bool(j, "warm")?,
        })
    }
}

impl Msg {
    /// Encodes as a tagged JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            Msg::Hello { role, version } => Json::obj([
                ("t", Json::Str("hello".into())),
                ("role", Json::Str(role.clone())),
                ("version", int(*version)),
            ]),
            Msg::Certify(req) => {
                Json::obj([("t", Json::Str("certify".into())), ("req", req.to_json())])
            }
            Msg::Result(resp) => {
                Json::obj([("t", Json::Str("result".into())), ("resp", resp.to_json())])
            }
            Msg::LeaseReq => Json::obj([("t", Json::Str("lease_req".into()))]),
            Msg::Lease(lease) => {
                Json::obj([("t", Json::Str("lease".into())), ("lease", lease.to_json())])
            }
            Msg::NoWork { retry_ms } => Json::obj([
                ("t", Json::Str("no_work".into())),
                ("retry_ms", int(*retry_ms)),
            ]),
            Msg::ChunkDone { id, report } => Json::obj([
                ("t", Json::Str("chunk_done".into())),
                ("id", int(*id)),
                ("report", report.to_json()),
            ]),
            Msg::Ping => Json::obj([("t", Json::Str("ping".into()))]),
            Msg::Pong => Json::obj([("t", Json::Str("pong".into()))]),
            Msg::Shutdown => Json::obj([("t", Json::Str("shutdown".into()))]),
            Msg::Error { msg } => Json::obj([
                ("t", Json::Str("error".into())),
                ("msg", Json::Str(msg.clone())),
            ]),
        }
    }

    /// Decodes a tagged JSON object.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let tag = get_str(j, "t")?;
        match tag.as_str() {
            "hello" => Ok(Msg::Hello {
                role: get_str(j, "role")?,
                version: get_u64(j, "version")?,
            }),
            "certify" => Ok(Msg::Certify(CertRequest::from_json(get(j, "req")?)?)),
            "result" => Ok(Msg::Result(CertResponse::from_json(get(j, "resp")?)?)),
            "lease_req" => Ok(Msg::LeaseReq),
            "lease" => Ok(Msg::Lease(Lease::from_json(get(j, "lease")?)?)),
            "no_work" => Ok(Msg::NoWork {
                retry_ms: get_u64(j, "retry_ms")?,
            }),
            "chunk_done" => Ok(Msg::ChunkDone {
                id: get_u64(j, "id")?,
                report: ChunkReport::from_json(get(j, "report")?)?,
            }),
            "ping" => Ok(Msg::Ping),
            "pong" => Ok(Msg::Pong),
            "shutdown" => Ok(Msg::Shutdown),
            "error" => Ok(Msg::Error {
                msg: get_str(j, "msg")?,
            }),
            other => Err(format!("unknown message tag `{other}`")),
        }
    }
}

fn proto_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_msg<W: Write>(w: &mut W, msg: &Msg) -> io::Result<()> {
    let body = msg.to_json().pretty();
    let bytes = body.as_bytes();
    let len = u32::try_from(bytes.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME)
        .ok_or_else(|| proto_err(format!("frame too large: {} bytes", bytes.len())))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. An EOF before the length prefix maps to
/// [`io::ErrorKind::UnexpectedEof`].
///
/// # Errors
///
/// I/O errors, oversized frames, or undecodable payloads.
pub fn read_msg<R: Read>(r: &mut R) -> io::Result<Msg> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(proto_err(format!("frame too large: {len} bytes")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let text = std::str::from_utf8(&body).map_err(|e| proto_err(format!("frame not UTF-8: {e}")))?;
    let value = json::parse(text).map_err(|e| proto_err(format!("frame not JSON: {e:?}")))?;
    Msg::from_json(&value).map_err(proto_err)
}

/// A daemon address: TCP `host:port`, or a unix-socket path written as
/// `unix:/path/to.sock`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// TCP host:port.
    Tcp(String),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

impl Addr {
    /// Parses `unix:PATH` or `HOST:PORT`.
    pub fn parse(s: &str) -> Addr {
        match s.strip_prefix("unix:") {
            Some(path) => Addr::Unix(PathBuf::from(path)),
            None => Addr::Tcp(s.to_owned()),
        }
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Addr::Tcp(hp) => write!(f, "{hp}"),
            Addr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A connected protocol stream (TCP or unix).
#[derive(Debug)]
pub enum Conn {
    /// TCP transport.
    Tcp(TcpStream),
    /// Unix-socket transport.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Connects to a daemon address.
    ///
    /// # Errors
    ///
    /// Connection failures; on non-unix hosts, `unix:` addresses.
    pub fn connect(addr: &Addr) -> io::Result<Conn> {
        match addr {
            Addr::Tcp(hp) => TcpStream::connect(hp.as_str()).map(Conn::Tcp),
            #[cfg(unix)]
            Addr::Unix(p) => UnixStream::connect(p).map(Conn::Unix),
            #[cfg(not(unix))]
            Addr::Unix(_) => Err(proto_err("unix sockets unsupported on this host".into())),
        }
    }

    /// Sets the read timeout (None blocks forever).
    ///
    /// # Errors
    ///
    /// Propagated from the socket layer.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Msg) -> Msg {
        let mut buf = Vec::new();
        write_msg(&mut buf, msg).expect("writes");
        let mut r = buf.as_slice();
        let back = read_msg(&mut r).expect("reads");
        assert!(r.is_empty(), "frame fully consumed");
        back
    }

    #[test]
    fn every_message_round_trips() {
        let lease = Lease {
            id: 7,
            stack: "ticket".into(),
            unit: "funlift/acq".into(),
            fingerprint: "a".repeat(32),
            share: "b".repeat(32),
            params: CertParams::default(),
            lo: 4,
            hi: 9,
            warm: true,
        };
        let report = ChunkReport {
            cases_checked: 5,
            cases_reduced: 2,
            failure: Some("simulation fails".into()),
            steps: 1234,
            snapshot_hits: 3,
            shared_family_hits: 3,
            ..ChunkReport::default()
        };
        let msgs = [
            Msg::Hello {
                role: "shard".into(),
                version: VERSION,
            },
            Msg::Certify(CertRequest::new("qlock")),
            Msg::Result(CertResponse {
                stack: "qlock".into(),
                certified: true,
                failure: None,
                failed_unit: None,
                units: vec![],
                cache_hits: 2,
                manifest_hit: false,
                total_steps: 0,
            }),
            Msg::LeaseReq,
            Msg::Lease(lease),
            Msg::NoWork { retry_ms: 25 },
            Msg::ChunkDone { id: 7, report },
            Msg::Ping,
            Msg::Pong,
            Msg::Shutdown,
            Msg::Error {
                msg: "version mismatch".into(),
            },
        ];
        for msg in &msgs {
            assert_eq!(msg, &round_trip(msg), "{msg:?}");
        }
    }

    #[test]
    fn legacy_frames_without_sharing_fields_decode() {
        // A lease encoded before semantic sharing keys existed carries no
        // `share`: it must decode with the fingerprint as the warm key
        // (the old behavior). Likewise a report without the counter.
        let lease = Lease {
            id: 1,
            stack: "ticket".into(),
            unit: "funlift/acq".into(),
            fingerprint: "a".repeat(32),
            share: "b".repeat(32),
            params: CertParams::default(),
            lo: 0,
            hi: 1,
            warm: true,
        };
        let mut j = lease.to_json();
        let Json::Obj(fields) = &mut j else {
            panic!("leases encode as objects");
        };
        fields.remove("share");
        let back = Lease::from_json(&j).expect("tolerant decode");
        assert_eq!(back.share, lease.fingerprint);

        let report = ChunkReport {
            shared_family_hits: 9,
            ..ChunkReport::default()
        };
        let mut j = report.to_json();
        let Json::Obj(fields) = &mut j else {
            panic!("reports encode as objects");
        };
        fields.remove("shared_family_hits");
        let back = ChunkReport::from_json(&j).expect("tolerant decode");
        assert_eq!(back.shared_family_hits, 0);
    }

    #[test]
    fn wire_golden_is_stable() {
        // Pins the frame layout: 4-byte BE length + deterministic JSON.
        // A codec change that breaks old shards must show up here.
        let mut buf = Vec::new();
        write_msg(&mut buf, &Msg::NoWork { retry_ms: 25 }).expect("writes");
        let body = "{\n  \"retry_ms\": 25,\n  \"t\": \"no_work\"\n}\n";
        let mut expected = (body.len() as u32).to_be_bytes().to_vec();
        expected.extend_from_slice(body.as_bytes());
        assert_eq!(buf, expected);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xxxx");
        let err = read_msg(&mut buf.as_slice()).expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn addr_parsing_distinguishes_transports() {
        assert_eq!(
            Addr::parse("127.0.0.1:4455"),
            Addr::Tcp("127.0.0.1:4455".into())
        );
        assert_eq!(
            Addr::parse("unix:/tmp/certd.sock"),
            Addr::Unix(PathBuf::from("/tmp/certd.sock"))
        );
        assert_eq!(Addr::parse("unix:/tmp/x").to_string(), "unix:/tmp/x");
    }
}
