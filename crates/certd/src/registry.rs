//! The stack registry: which certification obligations make up each
//! known layer stack, how each is content-fingerprinted, and how one
//! leased window of an obligation's exploration grid is run.
//!
//! A **unit** is one `check_prim_refinement` obligation of a stack's
//! Fig. 9 pipeline — exactly the decomposition `check_fun` /
//! `check_iface_refinement` iterate in process, in the same (BTreeMap)
//! primitive order, so unit-by-unit results fold back into the same
//! verdict, the same per-obligation case accounting and the same first
//! failure as `certify_ticket_stack` / `certify_qlock`. The zero-case
//! calculus steps (`weaken`, `vcomp`) contribute no units.
//!
//! Units are the granularity of the certificate store and of warm memo
//! state; leased *windows* of a unit's flat case grid are the
//! granularity of shard work.

use std::sync::{Arc, Mutex};

use ccal_core::contexts::ContextGen;
use ccal_core::env::EnvContext;
use ccal_core::fingerprint::{share_key, ContentHash, ContentHasher, ShareKey};
use ccal_core::id::{Loc, Pid};
use ccal_core::layer::LayerInterface;
use ccal_core::prefix;
use ccal_core::sim::{check_prim_refinement, SimOptions, SimRelation, SimWarm};
use ccal_core::strategy::ScratchPlayer;
use ccal_core::val::Val;
use ccal_objects::buggy;
use ccal_objects::qlock;
use ccal_objects::ticket;

use crate::proto::{ChunkReport, Lease};
use crate::spec::CertParams;

/// The focused participant of every registry obligation.
const PID: Pid = Pid(0);
/// The ticket lock location (mirrors the §2 walkthrough and tests).
const TICKET_B: Loc = Loc(0);
/// The queuing lock location (mirrors the Fig. 11 tests).
const QLOCK_L: Loc = Loc(4);

/// Stacks the service can certify.
pub fn known_stacks() -> &'static [&'static str] {
    &["ticket", "qlock", "scratch"]
}

/// A unit's public identity: name, content fingerprint, grid size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitDef {
    /// Unit name, unique within the stack.
    pub name: String,
    /// Content hash over everything the verdict depends on.
    pub fingerprint: ContentHash,
    /// Semantic sharing key (32 hex digits): the content identity of the
    /// unit's lower-machine exploration family. Units with equal keys
    /// share one warm exploration state; equals the fingerprint rendering
    /// when semantic sharing is disabled (`CCAL_SHARE_SEMANTIC=0`).
    pub share: String,
    /// Flat grid size (`contexts × argument vectors`), the leaseable
    /// index space.
    pub ncases: usize,
}

/// The outcome of running one unit (or one window of it).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnitOutcome {
    /// Cases explored.
    pub cases_checked: usize,
    /// Cases skipped by dedup.
    pub cases_skipped: usize,
    /// Cases pruned by POR.
    pub cases_reduced: usize,
    /// Rendered counterexample (index-least in the window), if any.
    pub failure: Option<String>,
}

/// How a unit's bounded context family is generated. Building contexts
/// is also where POR grid marking and the prefix-sharing family are
/// pinned, so the same spec must be used by coordinator and shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtxSpec {
    /// Two pids; pid 1 plays the low-level ticket contender.
    TicketLow,
    /// Two pids; pid 1 plays the atomic `foo` client contender.
    TicketAtomic,
    /// Two pids; pid 1 plays the queuing-lock contender.
    Qlock,
    /// Three pids; pids 1 and 2 push to the scratch locations the buggy
    /// `op` strategy leaks.
    Scratch,
}

impl CtxSpec {
    fn build(self, params: &CertParams, family: Option<u64>) -> Vec<EnvContext> {
        let gen = match self {
            CtxSpec::TicketLow => ContextGen::new(vec![Pid(0), Pid(1)]).with_player(
                Pid(1),
                Arc::new(ticket::TicketEnvPlayer::new(Pid(1), TICKET_B, params.rounds)),
            ),
            CtxSpec::TicketAtomic => ContextGen::new(vec![Pid(0), Pid(1)]).with_player(
                Pid(1),
                Arc::new(ticket::FooEnvPlayer::new(Pid(1), TICKET_B, params.rounds)),
            ),
            CtxSpec::Qlock => ContextGen::new(vec![Pid(0), Pid(1)]).with_player(
                Pid(1),
                Arc::new(qlock::QlockEnvPlayer::new(Pid(1), QLOCK_L, params.rounds)),
            ),
            CtxSpec::Scratch => ContextGen::new(vec![Pid(0), Pid(1), Pid(2)])
                .with_player(Pid(1), Arc::new(ScratchPlayer::new(Pid(1), buggy::SCRATCH_A)))
                .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), buggy::SCRATCH_B))),
        };
        // The structural setters re-key the family to keep accidental
        // cross-family memo aliasing impossible, so `with_family` must
        // come after them — `ContextGen` debug-asserts this ordering.
        // The pinned family is the unit's semantic sharing key (or its
        // fingerprint with `CCAL_SHARE_SEMANTIC=0`), chosen by
        // `run_unit`, so content-equal lower machines share warm state.
        let gen = gen
            .with_schedule_len(params.schedule_len)
            .with_por(params.por);
        match family {
            Some(f) => gen.with_family(f),
            None => gen,
        }
        .contexts()
    }

    fn describe(self, h: &mut ContentHasher, params: &CertParams) {
        h.section("contexts");
        let (kind, pids, loc) = match self {
            CtxSpec::TicketLow => ("ticket-low", 2u64, u64::from(TICKET_B.0)),
            CtxSpec::TicketAtomic => ("ticket-atomic", 2, u64::from(TICKET_B.0)),
            CtxSpec::Qlock => ("qlock", 2, u64::from(QLOCK_L.0)),
            CtxSpec::Scratch => ("scratch", 3, u64::from(buggy::SCRATCH_A.0)),
        };
        h.str("ctx.kind", kind);
        h.u64("ctx.pids", pids);
        h.u64("ctx.loc", loc);
        h.u64("ctx.rounds", params.rounds);
        h.usize("ctx.schedule_len", params.schedule_len);
        h.bool("ctx.por", params.por);
    }
}

/// A fully resolved obligation.
struct Unit {
    name: String,
    lower: LayerInterface,
    upper: LayerInterface,
    prim: String,
    relation: SimRelation,
    ctx: CtxSpec,
    args: Vec<Vec<Val>>,
    setup: Vec<(String, Vec<Val>)>,
    /// The ClightX sources whose edit invalidates this unit (spec-only
    /// units carry none).
    sources: Vec<(&'static str, &'static str)>,
}

fn front_end(name: &str, src: &str) -> Result<ccal_core::module::Module, String> {
    ccal_clightx::clightx_module(name, src)
        .map_err(|e| format!("{name} front-end: {e:?}"))
}

/// Resolves a stack into its obligation list, in pipeline order.
fn units(stack: &str, params: &CertParams) -> Result<Vec<Unit>, String> {
    let _ = params;
    let mut out = Vec::new();
    match stack {
        "ticket" => {
            ticket::declare_client_footprints();
            let m1 = front_end("M1", ticket::M1_SOURCE)?;
            let m2 = front_end("M2", ticket::M2_SOURCE)?;
            let l0 = ticket::l0_interface();
            let low = ticket::lock_low_interface();
            let lock = ticket::lock_interface();
            let l2 = ticket::l2_interface();
            let ext1 = m1.install(&l0).map_err(|e| format!("M1 install: {e:?}"))?;
            let ext2 = m2.install(&lock).map_err(|e| format!("M2 install: {e:?}"))?;
            let lock_args = vec![vec![Val::Loc(TICKET_B)]];
            let workload = |prim: &str| {
                if matches!(prim, "acq" | "rel" | "foo") {
                    lock_args.clone()
                } else {
                    vec![Vec::new()]
                }
            };
            // Fun-lift: L0 ⊢_id M1 : L′1, one unit per overlay primitive.
            for prim in low.prim_names() {
                out.push(Unit {
                    name: format!("funlift/{prim}"),
                    lower: ext1.clone(),
                    upper: low.clone(),
                    prim: prim.to_owned(),
                    relation: SimRelation::identity(),
                    ctx: CtxSpec::TicketLow,
                    args: workload(prim),
                    setup: Vec::new(),
                    sources: vec![("M1", ticket::M1_SOURCE)],
                });
            }
            // Log-lift: L′1 ≤_R1 L1 (spec-to-spec; no module source).
            for prim in lock.prim_names() {
                out.push(Unit {
                    name: format!("loglift/{prim}"),
                    lower: low.clone(),
                    upper: lock.clone(),
                    prim: prim.to_owned(),
                    relation: ticket::r1_relation(),
                    ctx: CtxSpec::TicketLow,
                    args: workload(prim),
                    setup: Vec::new(),
                    sources: Vec::new(),
                });
            }
            // Client layer: L1 ⊢_R2 M2 : L2. (`weaken`/`vcomp` check
            // nothing — zero-case calculus steps.)
            for prim in l2.prim_names() {
                out.push(Unit {
                    name: format!("client/{prim}"),
                    lower: ext2.clone(),
                    upper: l2.clone(),
                    prim: prim.to_owned(),
                    relation: ticket::r2_relation(),
                    ctx: CtxSpec::TicketAtomic,
                    args: workload(prim),
                    setup: Vec::new(),
                    sources: vec![("M2", ticket::M2_SOURCE)],
                });
            }
        }
        "qlock" => {
            qlock::declare_qlock_footprints();
            let m = front_end("Mql", qlock::QLOCK_SOURCE)?;
            let under = qlock::qlock_underlay();
            let over = qlock::qlock_overlay();
            let ext = m.install(&under).map_err(|e| format!("Mql install: {e:?}"))?;
            let args = vec![vec![Val::Loc(QLOCK_L)]];
            for prim in over.prim_names() {
                let setup = if prim == "rel_q" {
                    vec![("acq_q".to_owned(), vec![Val::Loc(QLOCK_L)])]
                } else {
                    Vec::new()
                };
                out.push(Unit {
                    name: prim.to_owned(),
                    lower: ext.clone(),
                    upper: over.clone(),
                    prim: prim.to_owned(),
                    relation: qlock::r_ql_relation(),
                    ctx: CtxSpec::Qlock,
                    args: args.clone(),
                    setup,
                    sources: vec![("Mql", qlock::QLOCK_SOURCE)],
                });
            }
        }
        "scratch" => {
            // The known-failing fixture: the lower `op` leaks observable
            // environment state, so this unit *must* produce the
            // index-least counterexample — the service's first-failure
            // and shard-kill semantics are tested against it.
            out.push(Unit {
                name: "op".to_owned(),
                lower: buggy::scratch_sensitive_lower(),
                upper: buggy::scratch_sensitive_upper(),
                prim: "op".to_owned(),
                relation: SimRelation::identity(),
                ctx: CtxSpec::Scratch,
                args: vec![Vec::new()],
                setup: Vec::new(),
                sources: Vec::new(),
            });
        }
        other => return Err(format!("unknown stack `{other}` (known: {:?})", known_stacks())),
    }
    Ok(out)
}

fn sim_options(
    params: &CertParams,
    unit: &Unit,
    window: Option<(usize, usize)>,
    warm: Option<&SimWarm>,
) -> SimOptions {
    let mut sim = SimOptions::default()
        .with_workers(params.workers)
        .with_dedup(params.dedup)
        .with_por(params.por)
        .with_prefix_share(params.prefix_share)
        .with_deep_share(params.deep_share)
        .with_bytecode(params.bytecode)
        .with_state_dedup(params.state_dedup);
    sim.setup = unit.setup.clone();
    if let Some((lo, hi)) = window {
        sim = sim.with_window(lo, hi);
    }
    if let Some(w) = warm {
        sim = sim.with_warm(w.clone());
    }
    sim
}

/// Certificate identity: everything the verdict is a function of. The
/// run-mechanical knobs (`window`, `warm`) are deliberately excluded —
/// they must not change verdicts, and the differential suite pins that.
fn unit_fingerprint(stack: &str, unit: &Unit, params: &CertParams) -> ContentHash {
    let sim = sim_options(params, unit, None, None);
    let mut h = ContentHasher::new();
    h.section("ccal.cert.unit.v1");
    h.str("stack", stack);
    h.str("unit", &unit.name);
    h.usize("sources", unit.sources.len());
    for (name, src) in &unit.sources {
        h.str("module.name", name);
        h.str("module.source", src);
    }
    h.interface("lower", &unit.lower);
    h.interface("upper", &unit.upper);
    h.str("prim", &unit.prim);
    h.str("relation", unit.relation.name());
    h.u64("pid", u64::from(PID.0));
    h.usize("args", unit.args.len());
    for argv in &unit.args {
        h.usize("argv", argv.len());
        for v in argv {
            h.val("arg", v);
        }
    }
    h.usize("setup", unit.setup.len());
    for (prim, argv) in &unit.setup {
        h.str("setup.prim", prim);
        h.usize("setup.args", argv.len());
        for v in argv {
            h.val("setup.arg", v);
        }
    }
    unit.ctx.describe(&mut h, params);
    h.section("sim_options");
    h.u64("opt.fuel", sim.fuel);
    h.bool("opt.compare_rets", sim.compare_rets);
    h.usize("opt.workers", sim.workers);
    h.bool("opt.dedup", sim.dedup);
    h.bool("opt.por", sim.por);
    h.bool("opt.prefix_share", sim.prefix_share);
    h.bool("opt.deep_share", sim.deep_share);
    h.bool("opt.bytecode", sim.bytecode);
    h.bool("opt.state_dedup", sim.state_dedup);
    h.usize("opt.snapshot_cap", sim.snapshot_cap);
    h.usize("opt.upper_cache_cap", sim.upper_cache_cap);
    h.finish()
}

/// The unit's **semantic sharing key**: the content identity of its
/// lower-machine exploration family ([`share_key`]). Where
/// [`unit_fingerprint`] answers "may this *verdict* be reused?", the
/// sharing key answers "may this *exploration state* be reused?" — it
/// deliberately drops the unit name, the checked primitive, its
/// arguments, the setup calls, the upper interface and the relation,
/// all of which vary across the units of one family and are carried by
/// the kernel's content-derived inner indices instead. The four
/// `funlift/*` ticket obligations, for example, check different
/// primitives of one lower machine over one context grid: equal keys,
/// one warm state.
fn unit_share_key(unit: &Unit, params: &CertParams) -> ShareKey {
    let sim = sim_options(params, unit, None, None);
    share_key(
        &unit.sources,
        &unit.lower,
        PID,
        |h| unit.ctx.describe(h, params),
        &sim,
    )
}

/// The warm-state key `run_unit` pins the exploration family to: the
/// semantic sharing key, or the certificate fingerprint when semantic
/// sharing is disabled (restoring strictly per-unit reuse).
fn unit_share_string(stack: &str, unit: &Unit, params: &CertParams) -> String {
    if prefix::share_semantic_effective() {
        unit_share_key(unit, params).to_string()
    } else {
        unit_fingerprint(stack, unit, params).to_string()
    }
}

/// Process-global count of full stack decompositions (front-end runs,
/// interface construction, per-unit fingerprinting). The manifest fast
/// path is asserted against this: a fully-clean recertify must answer
/// without bumping it.
static DECOMPOSITIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total stack decompositions performed by this process.
pub fn decompositions_total() -> u64 {
    DECOMPOSITIONS.load(std::sync::atomic::Ordering::Relaxed)
}

/// The identity of a whole-stack certificate: stack name plus every
/// verdict-relevant parameter. Keying the manifest by this (rather than
/// the stack name alone) makes a parameter change a manifest miss, the
/// same way it dirties every unit fingerprint.
pub fn manifest_key(stack: &str, params: &CertParams) -> ContentHash {
    let mut h = ContentHasher::new();
    h.section("ccal.cert.manifest.v1");
    h.str("stack", stack);
    h.usize("schedule_len", params.schedule_len);
    h.u64("rounds", params.rounds);
    h.usize("workers", params.workers);
    h.bool("dedup", params.dedup);
    h.bool("por", params.por);
    h.bool("prefix_share", params.prefix_share);
    h.bool("deep_share", params.deep_share);
    h.bool("bytecode", params.bytecode);
    h.bool("state_dedup", params.state_dedup);
    h.finish()
}

/// The stack's units, in pipeline order, with fingerprints and grid
/// sizes.
///
/// # Errors
///
/// Unknown stacks and ClightX front-end failures.
pub fn stack_units(stack: &str, params: &CertParams) -> Result<Vec<UnitDef>, String> {
    DECOMPOSITIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    units(stack, params)?
        .iter()
        .map(|u| {
            let ncases = u.ctx.build(params, None).len() * u.args.len();
            Ok(UnitDef {
                name: u.name.clone(),
                fingerprint: unit_fingerprint(stack, u, params),
                share: unit_share_string(stack, u, params),
                ncases,
            })
        })
        .collect()
}

/// Runs one unit, optionally restricted to the half-open flat-index
/// `window` and/or seeded with `warm` memo state. Window indices are
/// whole-grid positions, so case strings and failure evidence are
/// identical to an unwindowed run restricted to those cases.
///
/// # Errors
///
/// Unknown stack/unit and front-end failures. A simulation
/// counterexample is NOT an error — it comes back as
/// [`UnitOutcome::failure`].
pub fn run_unit(
    stack: &str,
    unit_name: &str,
    params: &CertParams,
    window: Option<(usize, usize)>,
    warm: Option<&SimWarm>,
) -> Result<UnitOutcome, String> {
    let all = units(stack, params)?;
    let unit = all
        .iter()
        .find(|u| u.name == unit_name)
        .ok_or_else(|| format!("unknown unit `{unit_name}` in stack `{stack}`"))?;
    // Pin the schedule-key family to the semantic sharing key so
    // content-equal lower machines (across the units of one stack, and
    // across requests through the warm map) address one memo/snapshot
    // key space; with semantic sharing disabled, fall back to the unit
    // fingerprint — strictly per-unit reuse, as before.
    let family = if prefix::share_semantic_effective() {
        unit_share_key(unit, params).family()
    } else {
        unit_fingerprint(stack, unit, params).low64()
    };
    let contexts = unit.ctx.build(params, Some(family));
    let sim = sim_options(params, unit, window, warm);
    match check_prim_refinement(
        &unit.lower,
        &unit.prim,
        &unit.upper,
        &unit.prim,
        &unit.relation,
        PID,
        &contexts,
        &unit.args,
        &sim,
    ) {
        Ok(ev) => Ok(UnitOutcome {
            cases_checked: ev.cases_checked,
            cases_skipped: ev.cases_skipped,
            cases_reduced: ev.cases_reduced,
            failure: None,
        }),
        Err(failure) => Ok(UnitOutcome {
            failure: Some(failure.to_string()),
            ..UnitOutcome::default()
        }),
    }
}

/// Warm memo state keyed by the unit's **semantic sharing key**, shared
/// by a daemon or shard process across requests. Keying by *content*
/// makes the reuse sound: equal keys imply content-equal lower machines
/// explored over one context-grid structure, so every entry a lookup can
/// hit describes the identical deterministic computation — whether the
/// hitter is a re-run of the same unit, a different unit of the same
/// family, or a later request. (With `CCAL_SHARE_SEMANTIC=0` the key
/// degenerates to the unit fingerprint and reuse is strictly per-unit.)
#[derive(Debug, Default)]
pub struct WarmMap {
    map: Mutex<std::collections::HashMap<String, SimWarm>>,
}

impl WarmMap {
    /// A fresh, empty map.
    pub fn new() -> WarmMap {
        WarmMap::default()
    }

    /// The warm state for sharing key `share`, created on first use.
    /// `SimWarm` clones share their caches, so the returned handle keeps
    /// feeding the map's entry.
    pub fn get(&self, share: &str) -> SimWarm {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(share.to_owned())
            .or_default()
            .clone()
    }
}

/// Executes one lease and packages the accounting a shard (or the
/// coordinator's local runner) reports back: kernel case counts, the
/// process-global step-counter deltas, and — when warm — the warm-state
/// hit/evict deltas.
pub fn run_lease(lease: &Lease, warm: Option<&SimWarm>) -> ChunkReport {
    let steps0 = prefix::steps_total();
    let shared0 = prefix::shared_total();
    let deep0 = prefix::deep_total();
    let prim0 = prefix::prim_steps_total();
    let warm0 = warm.map(SimWarm::stats);
    let mut report = ChunkReport::default();
    match run_unit(
        &lease.stack,
        &lease.unit,
        &lease.params,
        Some((lease.lo, lease.hi)),
        warm,
    ) {
        Ok(outcome) => {
            report.cases_checked = outcome.cases_checked;
            report.cases_skipped = outcome.cases_skipped;
            report.cases_reduced = outcome.cases_reduced;
            report.failure = outcome.failure;
        }
        Err(e) => report.error = Some(e),
    }
    report.steps = prefix::steps_total().saturating_sub(steps0);
    report.shared = prefix::shared_total().saturating_sub(shared0);
    report.deep = prefix::deep_total().saturating_sub(deep0);
    report.prim_steps = prefix::prim_steps_total().saturating_sub(prim0);
    if let (Some(w), Some(w0)) = (warm, warm0) {
        let ws = w.stats();
        report.memo_entries = ws.memo_entries;
        report.snapshot_entries = ws.snapshot_entries;
        report.snapshot_hits = ws.snapshot_hits.saturating_sub(w0.snapshot_hits);
        report.snapshot_evictions = ws.snapshot_evictions.saturating_sub(w0.snapshot_evictions);
        report.upper_hits = ws.upper_hits.saturating_sub(w0.upper_hits);
        report.upper_evictions = ws.upper_evictions.saturating_sub(w0.upper_evictions);
        // Family-sharing proxy: reuse deltas count as *family* sharing
        // only when the warm state already held entries at lease start —
        // a cold first-in-family run self-shares within its own grid,
        // which is not cross-unit/cross-request reuse. (The proxy still
        // includes within-run self-sharing of warm-started runs; it is a
        // reuse indicator, not an exact cross-unit count.)
        if w0.memo_entries > 0 || w0.snapshot_entries > 0 {
            report.shared_family_hits =
                report.shared + report.deep + report.snapshot_hits + report.upper_hits;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacks_resolve_with_distinct_stable_fingerprints() {
        let params = CertParams::default();
        let ticket = stack_units("ticket", &params).expect("ticket resolves");
        let names: Vec<&str> = ticket.iter().map(|u| u.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "funlift/acq",
                "funlift/f",
                "funlift/g",
                "funlift/rel",
                "loglift/acq",
                "loglift/f",
                "loglift/g",
                "loglift/rel",
                "client/foo",
            ],
            "obligation order mirrors the in-process pipeline"
        );
        let mut fps: Vec<_> = ticket.iter().map(|u| u.fingerprint).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), ticket.len(), "unit fingerprints are distinct");
        assert_eq!(
            ticket,
            stack_units("ticket", &params).expect("ticket resolves again"),
            "fingerprints are deterministic"
        );
        assert!(ticket.iter().all(|u| u.ncases > 0));
        assert!(stack_units("nope", &params).is_err());
    }

    #[test]
    fn parameter_changes_dirty_the_fingerprint() {
        let base = CertParams::default();
        let mut longer = base.clone();
        longer.schedule_len += 1;
        let a = stack_units("qlock", &base).expect("resolves");
        let b = stack_units("qlock", &longer).expect("resolves");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_ne!(x.fingerprint, y.fingerprint, "{}", x.name);
        }

        // Convergence dedup extends the trust base, so it is part of
        // the certificate identity too.
        let mut no_conv = base.clone();
        no_conv.state_dedup = false;
        let c = stack_units("qlock", &no_conv).expect("resolves");
        for (x, y) in a.iter().zip(&c) {
            assert_ne!(x.fingerprint, y.fingerprint, "{}: state_dedup", x.name);
        }
        assert_ne!(manifest_key("qlock", &base), manifest_key("qlock", &no_conv));
        assert_ne!(manifest_key("qlock", &base), manifest_key("qlock", &longer));
        assert_ne!(manifest_key("qlock", &base), manifest_key("ticket", &base));
        assert_eq!(manifest_key("qlock", &base), manifest_key("qlock", &base));
    }

    #[test]
    fn semantic_share_keys_group_units_into_families() {
        // Pin the mode: the suite also runs under CCAL_SHARE_SEMANTIC=0,
        // where shares legitimately degenerate to fingerprints.
        let _on = prefix::ShareSemanticOverride::force(true);
        let params = CertParams::default();
        let ticket = stack_units("ticket", &params).expect("resolves");
        let share = |name: &str| {
            ticket
                .iter()
                .find(|u| u.name == name)
                .unwrap_or_else(|| panic!("unit {name}"))
                .share
                .clone()
        };
        // The four funlift units check different primitives of ONE lower
        // machine (M1 over L0) on one grid: one family. Likewise loglift
        // (spec-only lock_low) and client (M2 over L1).
        for u in ["funlift/f", "funlift/g", "funlift/rel"] {
            assert_eq!(share(u), share("funlift/acq"), "{u}");
        }
        for u in ["loglift/f", "loglift/g", "loglift/rel"] {
            assert_eq!(share(u), share("loglift/acq"), "{u}");
        }
        let fams: std::collections::BTreeSet<_> =
            ticket.iter().map(|u| u.share.clone()).collect();
        assert_eq!(fams.len(), 3, "funlift / loglift / client families");
        // Fingerprints still key certificates strictly per-unit.
        let fps: std::collections::BTreeSet<_> =
            ticket.iter().map(|u| u.fingerprint).collect();
        assert_eq!(fps.len(), ticket.len());

        // qlock: acq_q and rel_q differ only in checked primitive and
        // setup — both excluded from the sharing key — so they form one
        // family (rel_q's setup resumes acq_q's completed calls).
        let qlock = stack_units("qlock", &params).expect("resolves");
        assert_eq!(qlock.len(), 2);
        assert_eq!(qlock[0].share, qlock[1].share, "one qlock family");
        assert_ne!(qlock[0].fingerprint, qlock[1].fingerprint);
    }

    #[test]
    fn disabling_semantic_sharing_restores_per_unit_keys() {
        let _off = prefix::ShareSemanticOverride::force(false);
        let params = CertParams::default();
        for u in stack_units("ticket", &params).expect("resolves") {
            assert_eq!(u.share, u.fingerprint.to_string(), "{}", u.name);
        }
    }

    #[test]
    fn windowed_runs_sum_to_the_whole_grid() {
        let params = CertParams::default();
        let def = &stack_units("ticket", &params).expect("resolves")[0];
        let whole = run_unit("ticket", "funlift/acq", &params, None, None).expect("runs");
        assert_eq!(whole.failure, None);
        let mid = def.ncases / 2;
        let left =
            run_unit("ticket", "funlift/acq", &params, Some((0, mid)), None).expect("runs");
        let right = run_unit("ticket", "funlift/acq", &params, Some((mid, def.ncases)), None)
            .expect("runs");
        assert_eq!(
            (
                left.cases_checked + right.cases_checked,
                left.cases_skipped + right.cases_skipped,
                left.cases_reduced + right.cases_reduced,
            ),
            (whole.cases_checked, whole.cases_skipped, whole.cases_reduced),
            "disjoint windows partition the whole-grid accounting"
        );
    }

    #[test]
    fn the_scratch_stack_fails_with_rendered_evidence() {
        let params = CertParams::default();
        let out = run_unit("scratch", "op", &params, None, None).expect("runs");
        let failure = out.failure.expect("scratch is the known-failing fixture");
        assert!(
            failure.contains("simulation") && failure.contains("context #"),
            "rendered counterexample names the case: {failure}"
        );
    }
}
