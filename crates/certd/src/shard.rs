//! The shard worker: connects to the daemon, polls for chunk leases,
//! runs each leased window through the registry, and reports back. A
//! long-lived shard keeps its own warm memo state per semantic sharing
//! key (shipped in the lease frame), so re-checks of known units — and
//! sibling units of an already-explored family — start warm on the
//! shard too.

use std::io;
use std::thread;
use std::time::Duration;

use crate::proto::{read_msg, write_msg, Addr, Conn, Msg, VERSION};
use crate::registry::{self, WarmMap};

/// Shard behavior knobs (the test hooks are also reachable via
/// `CCAL_CERTD_SHARD_*` environment variables in the CLI).
#[derive(Debug, Clone, Default)]
pub struct ShardOptions {
    /// Fault injection: disconnect (without completing) upon *receiving*
    /// the nth lease — a deterministic stand-in for a worker killed
    /// mid-chunk.
    pub exit_after: Option<usize>,
    /// Sleep this long before running each lease; widens the window in
    /// which an external `kill -9` lands mid-lease.
    pub delay: Duration,
}

/// Why a shard loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardExit {
    /// The daemon asked us to shut down.
    Shutdown,
    /// The connection failed (daemon gone).
    ConnectionLost,
    /// The [`ShardOptions::exit_after`] fault fired.
    Injected,
}

/// Runs the shard loop over one connection until the daemon goes away.
///
/// # Errors
///
/// Only connection setup can fail; once polling, transport errors map to
/// [`ShardExit::ConnectionLost`].
pub fn run_shard(addr: &Addr, opts: &ShardOptions) -> io::Result<ShardExit> {
    let mut conn = Conn::connect(addr)?;
    write_msg(
        &mut conn,
        &Msg::Hello {
            role: "shard".into(),
            version: VERSION,
        },
    )?;
    let warm = WarmMap::new();
    let mut leases_taken = 0usize;
    loop {
        if write_msg(&mut conn, &Msg::LeaseReq).is_err() {
            return Ok(ShardExit::ConnectionLost);
        }
        match read_msg(&mut conn) {
            Ok(Msg::Lease(lease)) => {
                leases_taken += 1;
                if opts.exit_after.is_some_and(|n| leases_taken >= n) {
                    // Simulated death: drop the connection with the lease
                    // outstanding. The daemon must re-lease the window.
                    return Ok(ShardExit::Injected);
                }
                if !opts.delay.is_zero() {
                    thread::sleep(opts.delay);
                }
                let warm_state = lease.warm.then(|| warm.get(&lease.share));
                let report = registry::run_lease(&lease, warm_state.as_ref());
                if write_msg(
                    &mut conn,
                    &Msg::ChunkDone {
                        id: lease.id,
                        report,
                    },
                )
                .is_err()
                {
                    return Ok(ShardExit::ConnectionLost);
                }
            }
            Ok(Msg::NoWork { retry_ms }) => {
                thread::sleep(Duration::from_millis(retry_ms.clamp(1, 1000)));
            }
            Ok(Msg::Shutdown) => return Ok(ShardExit::Shutdown),
            Ok(_) | Err(_) => return Ok(ShardExit::ConnectionLost),
        }
    }
}
