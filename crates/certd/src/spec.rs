//! Request/response types of the certification service, and their JSON
//! encodings (the wire re-uses `ccal_forensics::json`, the same
//! deterministic hand-rolled codec the forensics artifacts use).

use ccal_forensics::json::Json;

/// Exploration parameters of a certification request. These feed both
/// the unit fingerprints (so a parameter change is a cache miss) and the
/// `SimOptions`/`ContextGen` of every unit run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertParams {
    /// Environment schedule-prefix length of the context family.
    pub schedule_len: usize,
    /// Contention rounds of the scripted environment players.
    pub rounds: u64,
    /// Worker threads per exploration (1 = serial).
    pub workers: usize,
    /// Symmetric-schedule deduplication.
    pub dedup: bool,
    /// Partial-order reduction (grid marking *and* skipping).
    pub por: bool,
    /// Flat prefix-memo sharing.
    pub prefix_share: bool,
    /// Deep query-point snapshot sharing.
    pub deep_share: bool,
    /// ClightX bytecode VM for module bodies.
    pub bytecode: bool,
    /// Convergence dedup (canonical state fingerprints collapsing
    /// diamond schedules). Part of the certificate identity: it extends
    /// the trust base by `replay_commutes`, so certificates produced
    /// with and without it must not alias.
    pub state_dedup: bool,
}

impl Default for CertParams {
    fn default() -> Self {
        CertParams {
            schedule_len: 3,
            rounds: 2,
            workers: 1,
            dedup: true,
            por: true,
            prefix_share: true,
            deep_share: true,
            bytecode: true,
            state_dedup: true,
        }
    }
}

/// A certification request: one named stack, checked under `params`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertRequest {
    /// Registry stack name (`ticket`, `qlock`, `scratch`).
    pub stack: String,
    /// Exploration parameters.
    pub params: CertParams,
    /// Answer units from the certificate store when possible. Results
    /// are stored either way; `false` forces re-exploration.
    pub use_cache: bool,
    /// Keep and reuse warm memo state keyed by unit fingerprint.
    pub warm: bool,
    /// Flat-index cases per shard lease; `0` leases each unit whole
    /// (which also makes per-unit step counters comparable to an
    /// in-process run).
    pub chunk_cases: usize,
}

impl CertRequest {
    /// A default-parameter request for `stack`.
    pub fn new(stack: &str) -> Self {
        CertRequest {
            stack: stack.to_owned(),
            params: CertParams::default(),
            use_cache: true,
            warm: true,
            chunk_cases: 0,
        }
    }
}

/// Per-unit outcome and accounting in a [`CertResponse`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnitReport {
    /// Unit name (e.g. `funlift/acq`).
    pub unit: String,
    /// Content fingerprint (32 hex digits) keying the store and the warm
    /// state.
    pub fingerprint: String,
    /// Answered from the certificate store (zero exploration steps).
    pub cache_hit: bool,
    /// Number of grid windows the unit was cut into.
    pub chunks: usize,
    /// Windows executed by shard processes (the rest ran locally).
    pub remote_chunks: usize,
    /// Leases abandoned (shard death/stall) and re-queued.
    pub retries: u64,
    /// Cases explored (kernel accounting, summed over windows).
    pub cases_checked: usize,
    /// Cases skipped by dedup.
    pub cases_skipped: usize,
    /// Cases pruned by POR.
    pub cases_reduced: usize,
    /// Rendered simulation failure, if the unit failed.
    pub failure: Option<String>,
    /// Atom-step delta over the unit's runs.
    pub steps: u64,
    /// Prefix-memo shared-run delta.
    pub shared: u64,
    /// Deep snapshot-resume delta.
    pub deep: u64,
    /// Primitive-step delta.
    pub prim_steps: u64,
    /// Warm prefix-memo size after the unit (0 when cold).
    pub memo_entries: usize,
    /// Warm snapshot-trie size after the unit.
    pub snapshot_entries: usize,
    /// Snapshot-trie hit delta.
    pub snapshot_hits: u64,
    /// Snapshot-trie eviction delta.
    pub snapshot_evictions: u64,
    /// Upper-run cache hit delta.
    pub upper_hits: u64,
    /// Upper-run cache eviction delta.
    pub upper_evictions: u64,
    /// Reuse events served while the unit's warm state already held
    /// entries at lease start, summed over the unit's windows — the
    /// cross-unit / cross-request family-sharing proxy (semantic sharing
    /// keys let the units of one family feed each other's warm state).
    pub shared_family_hits: u64,
}

/// The daemon's answer to a [`CertRequest`]. Units appear in obligation
/// order and stop at the first failing unit, exactly like the in-process
/// pipeline (`check_fun` returns its first counterexample).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertResponse {
    /// Echoed stack name.
    pub stack: String,
    /// All checked units passed.
    pub certified: bool,
    /// First failing unit's rendered counterexample.
    pub failure: Option<String>,
    /// Name of the first failing unit.
    pub failed_unit: Option<String>,
    /// Per-unit reports, obligation order.
    pub units: Vec<UnitReport>,
    /// Units answered from the certificate store.
    pub cache_hits: usize,
    /// The whole request was answered from the stack manifest: every
    /// unit fingerprint was clean in the store, so the registry was
    /// never asked to decompose the stack.
    pub manifest_hit: bool,
    /// Total atom-step delta over the request (0 on a pure cache hit).
    pub total_steps: u64,
}

// ---------------------------------------------------------------------
// JSON codecs
// ---------------------------------------------------------------------

pub(crate) fn opt_str(v: &Option<String>) -> Json {
    match v {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    }
}

pub(crate) fn get<'a>(j: &'a Json, k: &str) -> Result<&'a Json, String> {
    j.get(k).ok_or_else(|| format!("missing field `{k}`"))
}

pub(crate) fn get_str(j: &Json, k: &str) -> Result<String, String> {
    get(j, k)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("field `{k}` is not a string"))
}

pub(crate) fn get_opt_str(j: &Json, k: &str) -> Result<Option<String>, String> {
    match j.get(k) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("field `{k}` is not a string or null")),
    }
}

pub(crate) fn get_bool(j: &Json, k: &str) -> Result<bool, String> {
    get(j, k)?
        .as_bool()
        .ok_or_else(|| format!("field `{k}` is not a bool"))
}

pub(crate) fn get_u64(j: &Json, k: &str) -> Result<u64, String> {
    let n = get(j, k)?
        .as_int()
        .ok_or_else(|| format!("field `{k}` is not an integer"))?;
    u64::try_from(n).map_err(|_| format!("field `{k}` is negative"))
}

pub(crate) fn get_usize(j: &Json, k: &str) -> Result<usize, String> {
    Ok(get_u64(j, k)? as usize)
}

pub(crate) fn int(v: u64) -> Json {
    Json::Int(v as i64)
}

impl CertParams {
    /// Encodes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schedule_len", int(self.schedule_len as u64)),
            ("rounds", int(self.rounds)),
            ("workers", int(self.workers as u64)),
            ("dedup", Json::Bool(self.dedup)),
            ("por", Json::Bool(self.por)),
            ("prefix_share", Json::Bool(self.prefix_share)),
            ("deep_share", Json::Bool(self.deep_share)),
            ("bytecode", Json::Bool(self.bytecode)),
            ("state_dedup", Json::Bool(self.state_dedup)),
        ])
    }

    /// Decodes from [`CertParams::to_json`]'s encoding.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(CertParams {
            schedule_len: get_usize(j, "schedule_len")?,
            rounds: get_u64(j, "rounds")?,
            workers: get_usize(j, "workers")?,
            dedup: get_bool(j, "dedup")?,
            por: get_bool(j, "por")?,
            prefix_share: get_bool(j, "prefix_share")?,
            deep_share: get_bool(j, "deep_share")?,
            bytecode: get_bool(j, "bytecode")?,
            // Tolerant: requests encoded before the flag existed default
            // to on, matching `CertParams::default()`.
            state_dedup: j.get("state_dedup").and_then(Json::as_bool).unwrap_or(true),
        })
    }
}

impl CertRequest {
    /// Encodes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("stack", Json::Str(self.stack.clone())),
            ("params", self.params.to_json()),
            ("use_cache", Json::Bool(self.use_cache)),
            ("warm", Json::Bool(self.warm)),
            ("chunk_cases", int(self.chunk_cases as u64)),
        ])
    }

    /// Decodes from [`CertRequest::to_json`]'s encoding.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(CertRequest {
            stack: get_str(j, "stack")?,
            params: CertParams::from_json(get(j, "params")?)?,
            use_cache: get_bool(j, "use_cache")?,
            warm: get_bool(j, "warm")?,
            chunk_cases: get_usize(j, "chunk_cases")?,
        })
    }
}

impl UnitReport {
    /// Encodes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("unit", Json::Str(self.unit.clone())),
            ("fingerprint", Json::Str(self.fingerprint.clone())),
            ("cache_hit", Json::Bool(self.cache_hit)),
            ("chunks", int(self.chunks as u64)),
            ("remote_chunks", int(self.remote_chunks as u64)),
            ("retries", int(self.retries)),
            ("cases_checked", int(self.cases_checked as u64)),
            ("cases_skipped", int(self.cases_skipped as u64)),
            ("cases_reduced", int(self.cases_reduced as u64)),
            ("failure", opt_str(&self.failure)),
            ("steps", int(self.steps)),
            ("shared", int(self.shared)),
            ("deep", int(self.deep)),
            ("prim_steps", int(self.prim_steps)),
            ("memo_entries", int(self.memo_entries as u64)),
            ("snapshot_entries", int(self.snapshot_entries as u64)),
            ("snapshot_hits", int(self.snapshot_hits)),
            ("snapshot_evictions", int(self.snapshot_evictions)),
            ("upper_hits", int(self.upper_hits)),
            ("upper_evictions", int(self.upper_evictions)),
            ("shared_family_hits", int(self.shared_family_hits)),
        ])
    }

    /// Decodes from [`UnitReport::to_json`]'s encoding.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(UnitReport {
            unit: get_str(j, "unit")?,
            fingerprint: get_str(j, "fingerprint")?,
            cache_hit: get_bool(j, "cache_hit")?,
            chunks: get_usize(j, "chunks")?,
            remote_chunks: get_usize(j, "remote_chunks")?,
            retries: get_u64(j, "retries")?,
            cases_checked: get_usize(j, "cases_checked")?,
            cases_skipped: get_usize(j, "cases_skipped")?,
            cases_reduced: get_usize(j, "cases_reduced")?,
            failure: get_opt_str(j, "failure")?,
            steps: get_u64(j, "steps")?,
            shared: get_u64(j, "shared")?,
            deep: get_u64(j, "deep")?,
            prim_steps: get_u64(j, "prim_steps")?,
            memo_entries: get_usize(j, "memo_entries")?,
            snapshot_entries: get_usize(j, "snapshot_entries")?,
            snapshot_hits: get_u64(j, "snapshot_hits")?,
            snapshot_evictions: get_u64(j, "snapshot_evictions")?,
            upper_hits: get_u64(j, "upper_hits")?,
            upper_evictions: get_u64(j, "upper_evictions")?,
            // Tolerant: responses encoded before the counter existed
            // observed no family sharing.
            shared_family_hits: j
                .get("shared_family_hits")
                .and_then(Json::as_int)
                .and_then(|n| u64::try_from(n).ok())
                .unwrap_or(0),
        })
    }
}

impl CertResponse {
    /// Encodes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("stack", Json::Str(self.stack.clone())),
            ("certified", Json::Bool(self.certified)),
            ("failure", opt_str(&self.failure)),
            ("failed_unit", opt_str(&self.failed_unit)),
            (
                "units",
                Json::Arr(self.units.iter().map(UnitReport::to_json).collect()),
            ),
            ("cache_hits", int(self.cache_hits as u64)),
            ("manifest_hit", Json::Bool(self.manifest_hit)),
            ("total_steps", int(self.total_steps)),
        ])
    }

    /// Decodes from [`CertResponse::to_json`]'s encoding.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let units = get(j, "units")?
            .as_arr()
            .ok_or("field `units` is not an array")?
            .iter()
            .map(UnitReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CertResponse {
            stack: get_str(j, "stack")?,
            certified: get_bool(j, "certified")?,
            failure: get_opt_str(j, "failure")?,
            failed_unit: get_opt_str(j, "failed_unit")?,
            units,
            cache_hits: get_usize(j, "cache_hits")?,
            // Tolerant: responses encoded before the manifest fast path
            // existed never hit it.
            manifest_hit: j.get("manifest_hit").and_then(Json::as_bool).unwrap_or(false),
            total_steps: get_u64(j, "total_steps")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let mut req = CertRequest::new("ticket");
        req.params.workers = 4;
        req.params.por = false;
        req.params.state_dedup = false;
        req.use_cache = false;
        req.chunk_cases = 7;
        let back = CertRequest::from_json(&req.to_json()).expect("decodes");
        assert_eq!(req, back);
    }

    #[test]
    fn params_without_state_dedup_decode_to_the_default() {
        let mut j = CertParams::default().to_json();
        let Json::Obj(fields) = &mut j else {
            panic!("params encode as an object");
        };
        fields.remove("state_dedup");
        let back = CertParams::from_json(&j).expect("tolerant decode");
        assert!(back.state_dedup, "missing flag defaults on, like Default");
    }

    #[test]
    fn response_round_trips_with_failure() {
        let resp = CertResponse {
            stack: "scratch".into(),
            certified: false,
            failure: Some("simulation fails on context #3".into()),
            failed_unit: Some("op".into()),
            units: vec![UnitReport {
                unit: "op".into(),
                fingerprint: "0".repeat(32),
                failure: Some("simulation fails on context #3".into()),
                chunks: 4,
                retries: 1,
                steps: 99,
                shared_family_hits: 5,
                ..UnitReport::default()
            }],
            cache_hits: 0,
            manifest_hit: false,
            total_steps: 99,
        };
        let back = CertResponse::from_json(&resp.to_json()).expect("decodes");
        assert_eq!(resp, back);

        let hit = CertResponse {
            certified: true,
            failure: None,
            failed_unit: None,
            units: Vec::new(),
            manifest_hit: true,
            total_steps: 0,
            ..resp
        };
        let back = CertResponse::from_json(&hit.to_json()).expect("decodes");
        assert_eq!(hit, back, "manifest_hit round-trips");
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = CertRequest::from_json(&Json::obj([("stack", Json::Str("t".into()))]))
            .expect_err("must fail");
        assert!(err.contains("params"), "error names the field: {err}");
    }
}
