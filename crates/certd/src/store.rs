//! The content-addressed certificate store.
//!
//! One record per certification unit, keyed by the unit's
//! [`ContentHash`] (sources + interfaces + footprints + relation +
//! context family + full `SimOptions`). Records are held in memory and,
//! when the daemon is given a store directory, mirrored to
//! `<fingerprint>.json` files that survive restarts. Failing verdicts
//! are stored too: re-requesting a known-bad unit replays its rendered
//! counterexample with zero exploration steps.
//!
//! The `CCAL_CERTD_CACHE=0` escape hatch disables *hits* (every lookup
//! misses) without disabling writes, so a suspect cache can be bypassed
//! and repopulated in one run.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

use ccal_core::envflag;
use ccal_core::fingerprint::ContentHash;
use ccal_forensics::json::{self, Json};

use crate::spec::{get_opt_str, get_str, get_u64, get_usize, int, opt_str};

/// On-disk record format version.
const STORE_VERSION: u64 = 1;

/// A stored unit verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredUnit {
    /// Unit name at store time (diagnostic only; the key is the hash).
    pub unit: String,
    /// Cases explored.
    pub cases_checked: usize,
    /// Cases skipped by dedup.
    pub cases_skipped: usize,
    /// Cases pruned by POR.
    pub cases_reduced: usize,
    /// Rendered counterexample, if the unit failed.
    pub failure: Option<String>,
}

impl StoredUnit {
    fn to_json(&self, fp: ContentHash) -> Json {
        Json::obj([
            ("version", int(STORE_VERSION)),
            ("fingerprint", Json::Str(fp.to_string())),
            ("unit", Json::Str(self.unit.clone())),
            ("cases_checked", int(self.cases_checked as u64)),
            ("cases_skipped", int(self.cases_skipped as u64)),
            ("cases_reduced", int(self.cases_reduced as u64)),
            ("failure", opt_str(&self.failure)),
        ])
    }

    fn from_json(j: &Json) -> Result<(ContentHash, StoredUnit), String> {
        if get_u64(j, "version")? != STORE_VERSION {
            return Err("unsupported store record version".into());
        }
        let fp = ContentHash::parse(&get_str(j, "fingerprint")?)
            .ok_or("bad fingerprint in store record")?;
        Ok((
            fp,
            StoredUnit {
                unit: get_str(j, "unit")?,
                cases_checked: get_usize(j, "cases_checked")?,
                cases_skipped: get_usize(j, "cases_skipped")?,
                cases_reduced: get_usize(j, "cases_reduced")?,
                failure: get_opt_str(j, "failure")?,
            },
        ))
    }
}

/// A stack manifest: the unit fingerprints a fully-certified stack
/// decomposed into, keyed by [`manifest_key`](crate::registry::manifest_key)
/// (stack name + every verdict-relevant parameter). A manifest is only
/// written for a *clean* run, so a manifest hit whose units are all
/// stored clean can answer a recertify without decomposing the stack at
/// all — no front-end, no interface construction, no per-unit
/// fingerprinting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredManifest {
    /// Stack name at store time (diagnostic only; the key is the hash).
    pub stack: String,
    /// `(unit name, unit fingerprint)` in pipeline order.
    pub units: Vec<(String, ContentHash)>,
}

impl StoredManifest {
    fn to_json(&self, fp: ContentHash) -> Json {
        Json::obj([
            ("version", int(STORE_VERSION)),
            ("fingerprint", Json::Str(fp.to_string())),
            ("stack", Json::Str(self.stack.clone())),
            (
                "units",
                Json::Arr(
                    self.units
                        .iter()
                        .map(|(name, ufp)| {
                            Json::obj([
                                ("unit", Json::Str(name.clone())),
                                ("fingerprint", Json::Str(ufp.to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<(ContentHash, StoredManifest), String> {
        if get_u64(j, "version")? != STORE_VERSION {
            return Err("unsupported manifest record version".into());
        }
        let fp = ContentHash::parse(&get_str(j, "fingerprint")?)
            .ok_or("bad fingerprint in manifest record")?;
        let units = j
            .get("units")
            .and_then(Json::as_arr)
            .ok_or("field `units` is not an array")?
            .iter()
            .map(|u| {
                let name = get_str(u, "unit")?;
                let ufp = ContentHash::parse(&get_str(u, "fingerprint")?)
                    .ok_or("bad unit fingerprint in manifest record")?;
                Ok((name, ufp))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok((
            fp,
            StoredManifest {
                stack: get_str(j, "stack")?,
                units,
            },
        ))
    }
}

/// The certificate store: an in-memory map, optionally mirrored to a
/// directory of `<fingerprint>.json` records (stack manifests go to
/// `manifest-<fingerprint>.json`).
#[derive(Debug)]
pub struct CertStore {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<ContentHash, StoredUnit>>,
    manifests: Mutex<HashMap<ContentHash, StoredManifest>>,
}

impl CertStore {
    /// A purely in-memory store (dies with the daemon).
    pub fn in_memory() -> CertStore {
        CertStore {
            dir: None,
            mem: Mutex::new(HashMap::new()),
            manifests: Mutex::new(HashMap::new()),
        }
    }

    /// A persistent store rooted at `dir`; loads every parseable record
    /// already present (unreadable files are skipped, not fatal — the
    /// worst case is a re-check).
    ///
    /// # Errors
    ///
    /// Failure to create the directory.
    pub fn at_dir(dir: PathBuf) -> io::Result<CertStore> {
        fs::create_dir_all(&dir)?;
        let mut mem = HashMap::new();
        let mut manifests = HashMap::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let Ok(value) = json::parse(&text) else {
                continue;
            };
            let is_manifest = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("manifest-"));
            if is_manifest {
                if let Ok((fp, m)) = StoredManifest::from_json(&value) {
                    manifests.insert(fp, m);
                }
            } else if let Ok((fp, unit)) = StoredUnit::from_json(&value) {
                mem.insert(fp, unit);
            }
        }
        Ok(CertStore {
            dir: Some(dir),
            mem: Mutex::new(mem),
            manifests: Mutex::new(manifests),
        })
    }

    /// Whether lookups may hit (the `CCAL_CERTD_CACHE` hatch; writes are
    /// unaffected). Unlike the engine's `CCAL_*` flags this one is read
    /// on every lookup, not cached at first use: it is an operational
    /// hatch for a long-running daemon, so flipping the variable must
    /// not require a restart.
    pub fn hits_enabled() -> bool {
        match std::env::var("CCAL_CERTD_CACHE") {
            Ok(raw) => envflag::parse_bool(&raw).unwrap_or_else(|| {
                envflag::warn_ignored("CCAL_CERTD_CACHE", &raw, "0 disables cache hits");
                true
            }),
            Err(_) => true,
        }
    }

    /// The stored verdict for `fp`, unless hits are disabled.
    pub fn get(&self, fp: ContentHash) -> Option<StoredUnit> {
        if !Self::hits_enabled() {
            return None;
        }
        self.mem.lock().unwrap_or_else(|e| e.into_inner()).get(&fp).cloned()
    }

    /// Records a verdict (in memory, and on disk when persistent). Disk
    /// writes go through a temp file + rename so a concurrent reader
    /// never sees a torn record.
    pub fn put(&self, fp: ContentHash, unit: StoredUnit) {
        if let Some(dir) = &self.dir {
            let body = unit.to_json(fp).pretty();
            let tmp = dir.join(format!(".{fp}.tmp"));
            let final_path = dir.join(format!("{fp}.json"));
            if fs::write(&tmp, body).is_ok() {
                let _ = fs::rename(&tmp, &final_path);
            }
        }
        self.mem
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(fp, unit);
    }

    /// The stored stack manifest for `fp`, unless hits are disabled
    /// (the same `CCAL_CERTD_CACHE` hatch that gates unit hits).
    pub fn get_manifest(&self, fp: ContentHash) -> Option<StoredManifest> {
        if !Self::hits_enabled() {
            return None;
        }
        self.manifests
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&fp)
            .cloned()
    }

    /// Records a stack manifest (in memory, and on disk when
    /// persistent), same torn-write discipline as [`CertStore::put`].
    pub fn put_manifest(&self, fp: ContentHash, manifest: StoredManifest) {
        if let Some(dir) = &self.dir {
            let body = manifest.to_json(fp).pretty();
            let tmp = dir.join(format!(".manifest-{fp}.tmp"));
            let final_path = dir.join(format!("manifest-{fp}.json"));
            if fs::write(&tmp, body).is_ok() {
                let _ = fs::rename(&tmp, &final_path);
            }
        }
        self.manifests
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(fp, manifest);
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.mem.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests against the per-lookup `CCAL_CERTD_CACHE` read:
    /// every test that mutates the variable or performs lookups takes
    /// this, so the kill-switch test cannot disable a neighbour's hits.
    static ENV: Mutex<()> = Mutex::new(());

    fn env_guard() -> std::sync::MutexGuard<'static, ()> {
        ENV.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fp(n: u128) -> ContentHash {
        ContentHash(n)
    }

    fn sample(unit: &str) -> StoredUnit {
        StoredUnit {
            unit: unit.into(),
            cases_checked: 10,
            cases_skipped: 2,
            cases_reduced: 3,
            failure: Some("simulation fails on context #1".into()),
        }
    }

    #[test]
    fn memory_store_round_trips() {
        let _env = env_guard();
        let store = CertStore::in_memory();
        assert!(store.is_empty());
        store.put(fp(42), sample("op"));
        assert_eq!(store.get(fp(42)), Some(sample("op")));
        assert_eq!(store.get(fp(43)), None);
    }

    #[test]
    fn persistent_store_survives_reopen() {
        let _env = env_guard();
        let dir = std::env::temp_dir().join(format!("ccal-certd-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = CertStore::at_dir(dir.clone()).expect("creates");
            store.put(fp(7), sample("funlift/acq"));
            store.put(
                fp(8),
                StoredUnit {
                    failure: None,
                    ..sample("client/foo")
                },
            );
        }
        let reopened = CertStore::at_dir(dir.clone()).expect("reopens");
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get(fp(7)), Some(sample("funlift/acq")));
        assert_eq!(reopened.get(fp(8)).expect("present").failure, None);
        let _ = fs::remove_dir_all(&dir);
    }

    fn manifest() -> StoredManifest {
        StoredManifest {
            stack: "qlock".into(),
            units: vec![("acq_q".into(), fp(11)), ("rel_q".into(), fp(12))],
        }
    }

    #[test]
    fn manifests_round_trip_and_survive_reopen() {
        let _env = env_guard();
        let store = CertStore::in_memory();
        assert_eq!(store.get_manifest(fp(99)), None);
        store.put_manifest(fp(99), manifest());
        assert_eq!(store.get_manifest(fp(99)), Some(manifest()));

        let dir = std::env::temp_dir().join(format!("ccal-certd-mstore-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = CertStore::at_dir(dir.clone()).expect("creates");
            store.put_manifest(fp(99), manifest());
            store.put(fp(11), StoredUnit { failure: None, ..sample("acq_q") });
        }
        let reopened = CertStore::at_dir(dir.clone()).expect("reopens");
        assert_eq!(
            reopened.get_manifest(fp(99)),
            Some(manifest()),
            "manifest survives restart"
        );
        assert_eq!(reopened.len(), 1, "manifest files are not unit records");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_hits_respect_the_kill_switch() {
        let _env = env_guard();
        let store = CertStore::in_memory();
        store.put_manifest(fp(5), manifest());
        std::env::set_var("CCAL_CERTD_CACHE", "0");
        let hit = store.get_manifest(fp(5));
        std::env::remove_var("CCAL_CERTD_CACHE");
        assert_eq!(hit, None, "hits disabled by the kill switch");
        assert_eq!(store.get_manifest(fp(5)), Some(manifest()));
    }
}
