//! The content-addressed certificate store.
//!
//! One record per certification unit, keyed by the unit's
//! [`ContentHash`] (sources + interfaces + footprints + relation +
//! context family + full `SimOptions`). Records are held in memory and,
//! when the daemon is given a store directory, mirrored to
//! `<fingerprint>.json` files that survive restarts. Failing verdicts
//! are stored too: re-requesting a known-bad unit replays its rendered
//! counterexample with zero exploration steps.
//!
//! The `CCAL_CERTD_CACHE=0` escape hatch disables *hits* (every lookup
//! misses) without disabling writes, so a suspect cache can be bypassed
//! and repopulated in one run.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

use ccal_core::envflag;
use ccal_core::fingerprint::ContentHash;
use ccal_forensics::json::{self, Json};

use crate::spec::{get_opt_str, get_str, get_u64, get_usize, int, opt_str};

/// On-disk record format version.
const STORE_VERSION: u64 = 1;

/// A stored unit verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredUnit {
    /// Unit name at store time (diagnostic only; the key is the hash).
    pub unit: String,
    /// Cases explored.
    pub cases_checked: usize,
    /// Cases skipped by dedup.
    pub cases_skipped: usize,
    /// Cases pruned by POR.
    pub cases_reduced: usize,
    /// Rendered counterexample, if the unit failed.
    pub failure: Option<String>,
}

impl StoredUnit {
    fn to_json(&self, fp: ContentHash) -> Json {
        Json::obj([
            ("version", int(STORE_VERSION)),
            ("fingerprint", Json::Str(fp.to_string())),
            ("unit", Json::Str(self.unit.clone())),
            ("cases_checked", int(self.cases_checked as u64)),
            ("cases_skipped", int(self.cases_skipped as u64)),
            ("cases_reduced", int(self.cases_reduced as u64)),
            ("failure", opt_str(&self.failure)),
        ])
    }

    fn from_json(j: &Json) -> Result<(ContentHash, StoredUnit), String> {
        if get_u64(j, "version")? != STORE_VERSION {
            return Err("unsupported store record version".into());
        }
        let fp = ContentHash::parse(&get_str(j, "fingerprint")?)
            .ok_or("bad fingerprint in store record")?;
        Ok((
            fp,
            StoredUnit {
                unit: get_str(j, "unit")?,
                cases_checked: get_usize(j, "cases_checked")?,
                cases_skipped: get_usize(j, "cases_skipped")?,
                cases_reduced: get_usize(j, "cases_reduced")?,
                failure: get_opt_str(j, "failure")?,
            },
        ))
    }
}

/// The certificate store: an in-memory map, optionally mirrored to a
/// directory of `<fingerprint>.json` records.
#[derive(Debug)]
pub struct CertStore {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<ContentHash, StoredUnit>>,
}

impl CertStore {
    /// A purely in-memory store (dies with the daemon).
    pub fn in_memory() -> CertStore {
        CertStore {
            dir: None,
            mem: Mutex::new(HashMap::new()),
        }
    }

    /// A persistent store rooted at `dir`; loads every parseable record
    /// already present (unreadable files are skipped, not fatal — the
    /// worst case is a re-check).
    ///
    /// # Errors
    ///
    /// Failure to create the directory.
    pub fn at_dir(dir: PathBuf) -> io::Result<CertStore> {
        fs::create_dir_all(&dir)?;
        let mut mem = HashMap::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let Ok(value) = json::parse(&text) else {
                continue;
            };
            if let Ok((fp, unit)) = StoredUnit::from_json(&value) {
                mem.insert(fp, unit);
            }
        }
        Ok(CertStore {
            dir: Some(dir),
            mem: Mutex::new(mem),
        })
    }

    /// Whether lookups may hit (the `CCAL_CERTD_CACHE` hatch; writes are
    /// unaffected). Unlike the engine's `CCAL_*` flags this one is read
    /// on every lookup, not cached at first use: it is an operational
    /// hatch for a long-running daemon, so flipping the variable must
    /// not require a restart.
    pub fn hits_enabled() -> bool {
        match std::env::var("CCAL_CERTD_CACHE") {
            Ok(raw) => envflag::parse_bool(&raw).unwrap_or_else(|| {
                envflag::warn_ignored("CCAL_CERTD_CACHE", &raw, "0 disables cache hits");
                true
            }),
            Err(_) => true,
        }
    }

    /// The stored verdict for `fp`, unless hits are disabled.
    pub fn get(&self, fp: ContentHash) -> Option<StoredUnit> {
        if !Self::hits_enabled() {
            return None;
        }
        self.mem.lock().unwrap_or_else(|e| e.into_inner()).get(&fp).cloned()
    }

    /// Records a verdict (in memory, and on disk when persistent). Disk
    /// writes go through a temp file + rename so a concurrent reader
    /// never sees a torn record.
    pub fn put(&self, fp: ContentHash, unit: StoredUnit) {
        if let Some(dir) = &self.dir {
            let body = unit.to_json(fp).pretty();
            let tmp = dir.join(format!(".{fp}.tmp"));
            let final_path = dir.join(format!("{fp}.json"));
            if fs::write(&tmp, body).is_ok() {
                let _ = fs::rename(&tmp, &final_path);
            }
        }
        self.mem
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(fp, unit);
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.mem.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u128) -> ContentHash {
        ContentHash(n)
    }

    fn sample(unit: &str) -> StoredUnit {
        StoredUnit {
            unit: unit.into(),
            cases_checked: 10,
            cases_skipped: 2,
            cases_reduced: 3,
            failure: Some("simulation fails on context #1".into()),
        }
    }

    #[test]
    fn memory_store_round_trips() {
        let store = CertStore::in_memory();
        assert!(store.is_empty());
        store.put(fp(42), sample("op"));
        assert_eq!(store.get(fp(42)), Some(sample("op")));
        assert_eq!(store.get(fp(43)), None);
    }

    #[test]
    fn persistent_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("ccal-certd-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let store = CertStore::at_dir(dir.clone()).expect("creates");
            store.put(fp(7), sample("funlift/acq"));
            store.put(
                fp(8),
                StoredUnit {
                    failure: None,
                    ..sample("client/foo")
                },
            );
        }
        let reopened = CertStore::at_dir(dir.clone()).expect("reopens");
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get(fp(7)), Some(sample("funlift/acq")));
        assert_eq!(reopened.get(fp(8)).expect("present").failure, None);
        let _ = fs::remove_dir_all(&dir);
    }
}
