//! Service differential suite: the daemon's verdicts, evidence, and
//! accounting must be bit-identical to in-process runs.
//!
//! Three layers of comparison:
//!
//! 1. **Daemon vs registry** — a certify request answered by the daemon
//!    (local runner, shards, chunked or not) must reproduce the per-unit
//!    case counts, failure strings, and — for serial one-chunk configs —
//!    the prefix step-counter deltas of calling `registry::run_unit`
//!    directly, across `workers × por × prefix/deep` engine configs.
//! 2. **Registry vs paper pipelines** — the registry's unit
//!    decomposition must reproduce the per-obligation accounting of
//!    `certify_ticket_stack_tuned` / `certify_qlock`, so the service
//!    certifies exactly the Fig. 9 obligations, not an approximation.
//! 3. **Fault injection** — shards dying mid-lease (the in-process
//!    stand-in for `kill -9`) change retries accounting only, never the
//!    verdict or the index-least evidence; cache hits answer with zero
//!    exploration steps (counter-asserted).
//!
//! Every test takes the `SERIAL` lock: prefix step counters are
//! process-global, and the daemon serializes certification anyway.

use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

use ccal_certd::coordinator::{Daemon, DaemonOptions};
use ccal_certd::proto::Addr;
use ccal_certd::registry::{self, UnitOutcome};
use ccal_certd::shard::{run_shard, ShardExit, ShardOptions};
use ccal_certd::spec::{CertParams, CertRequest, CertResponse};
use ccal_certd::store::CertStore;
use ccal_core::contexts::ContextGen;
use ccal_core::id::{Loc, Pid};
use ccal_core::prefix;
use ccal_objects::{qlock, ticket};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn fresh_daemon() -> (Daemon, Addr) {
    let opts = DaemonOptions {
        store: CertStore::in_memory(),
        ..DaemonOptions::default()
    };
    let daemon = Daemon::serve(opts, Some("127.0.0.1:0"), None).expect("daemon binds");
    let addr = Addr::Tcp(daemon.tcp_addr().expect("tcp listener").to_owned());
    (daemon, addr)
}

/// Spawns an in-process shard thread. Honest shards are not joined —
/// they poll until the test process exits; fault-injected shards return
/// and should be joined by the caller.
fn spawn_shard(addr: &Addr, opts: ShardOptions) -> thread::JoinHandle<ShardExit> {
    let addr = addr.clone();
    thread::spawn(move || run_shard(&addr, &opts).expect("shard connects"))
}

fn wait_for_shards(daemon: &Daemon, n: usize) {
    for _ in 0..200 {
        if daemon.shard_count() >= n {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("{n} shard(s) never connected");
}

fn params(workers: usize, por: bool, prefix_share: bool, deep_share: bool) -> CertParams {
    let mut p = CertParams::default();
    p.workers = workers;
    p.por = por;
    p.prefix_share = prefix_share;
    p.deep_share = deep_share;
    p
}

/// An uncached, cold request: pure exploration through the daemon.
fn cold_request(stack: &str, params: &CertParams) -> CertRequest {
    let mut req = CertRequest::new(stack);
    req.params = params.clone();
    req.use_cache = false;
    req.warm = false;
    req
}

/// One unit's in-process baseline: the registry outcome plus the
/// bracketed process-global counter deltas.
struct BaselineUnit {
    name: String,
    outcome: UnitOutcome,
    steps: u64,
    prim_steps: u64,
}

/// Runs a stack in process, unit by unit, stopping at the first failure
/// exactly as `check_fun` (and the daemon) do.
fn baseline(stack: &str, params: &CertParams) -> Vec<BaselineUnit> {
    let defs = registry::stack_units(stack, params).expect("stack resolves");
    let mut out = Vec::new();
    for def in &defs {
        let steps0 = prefix::steps_total();
        let prim0 = prefix::prim_steps_total();
        let outcome =
            registry::run_unit(stack, &def.name, params, None, None).expect("unit runs");
        let failed = outcome.failure.is_some();
        out.push(BaselineUnit {
            name: def.name.clone(),
            outcome,
            steps: prefix::steps_total().saturating_sub(steps0),
            prim_steps: prefix::prim_steps_total().saturating_sub(prim0),
        });
        if failed {
            break;
        }
    }
    out
}

/// Asserts a daemon response reproduces the in-process baseline:
/// verdict, per-unit counts, failure evidence, and — when `count_steps`
/// (serial, one chunk per unit, so the bracketed deltas are
/// deterministic) — the step counters themselves.
fn assert_matches_baseline(
    label: &str,
    resp: &CertResponse,
    base: &[BaselineUnit],
    count_steps: bool,
) {
    let base_failure = base.last().and_then(|b| b.outcome.failure.clone());
    assert_eq!(resp.certified, base_failure.is_none(), "{label}: verdict");
    assert_eq!(resp.failure, base_failure, "{label}: failure evidence");
    assert_eq!(resp.units.len(), base.len(), "{label}: unit count");
    for (u, b) in resp.units.iter().zip(base) {
        let l = format!("{label}: unit {}", b.name);
        assert_eq!(u.unit, b.name, "{l}: name");
        assert!(!u.cache_hit, "{l}: cold request must not hit the cache");
        assert_eq!(u.failure, b.outcome.failure, "{l}: failure");
        // Case accounting is only comparable for passing units: the
        // in-process `Err` path discards counts, while a chunked fold
        // legitimately sums the completed windows below the failure cut.
        if b.outcome.failure.is_none() {
            assert_eq!(u.cases_checked, b.outcome.cases_checked, "{l}: checked");
            assert_eq!(u.cases_skipped, b.outcome.cases_skipped, "{l}: skipped");
            assert_eq!(u.cases_reduced, b.outcome.cases_reduced, "{l}: reduced");
        }
        if count_steps {
            assert_eq!(u.steps, b.steps, "{l}: step delta");
            assert_eq!(u.prim_steps, b.prim_steps, "{l}: prim step delta");
        }
    }
}

/// Layer 1: the daemon's local runner vs direct registry runs, across
/// engine configs, on the passing ticket and qlock stacks.
#[test]
fn daemon_matches_in_process_runs_across_configs() {
    let _guard = serial();
    // (workers, por, prefix_share, deep_share)
    let configs = [
        (1, true, true, true),
        (1, false, true, true),
        (1, true, true, false),
        (1, true, false, false),
        (4, true, true, true),
    ];
    for stack in ["ticket", "qlock"] {
        for (workers, por, share, deep) in configs {
            let label = format!("{stack} workers={workers} por={por} share={share} deep={deep}");
            let p = params(workers, por, share, deep);
            let base = baseline(stack, &p);
            let (daemon, addr) = fresh_daemon();
            let resp = ccal_certd::certify(&addr, &cold_request(stack, &p))
                .expect("daemon answers");
            // Step counters are only chunk-deterministic for serial
            // exploration (workers > 1 interleaves memo population).
            assert_matches_baseline(&label, &resp, &base, workers == 1);
            assert_eq!(resp.cache_hits, 0, "{label}: cold");
            drop(daemon);
        }
    }
}

/// Layer 2: the registry's unit decomposition reproduces the
/// per-obligation accounting of the in-process certification pipelines.
#[test]
fn registry_decomposition_matches_certified_pipelines() {
    let _guard = serial();
    let p = CertParams::default();

    // Ticket: fun-lift (4 obligations) ++ log-lift (4) ++ client (1),
    // in BTreeMap primitive order — same as the registry's unit order.
    let b = Loc(0);
    let low = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(
            Pid(1),
            Arc::new(ticket::TicketEnvPlayer::new(Pid(1), b, p.rounds)),
        )
        .with_schedule_len(p.schedule_len)
        .with_por(p.por)
        .contexts();
    let atomic = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(
            Pid(1),
            Arc::new(ticket::FooEnvPlayer::new(Pid(1), b, p.rounds)),
        )
        .with_schedule_len(p.schedule_len)
        .with_por(p.por)
        .contexts();
    let stack =
        ticket::certify_ticket_stack_tuned(Pid(0), b, low, atomic, p.workers, p.dedup)
            .expect("ticket certifies in process");
    let pipeline: Vec<_> = stack
        .fun_lift
        .certificate
        .obligations()
        .iter()
        .chain(stack.log_lift.certificate.obligations())
        .chain(stack.client_layer.certificate.obligations())
        .collect();
    let units = baseline("ticket", &p);
    assert_eq!(units.len(), pipeline.len(), "obligation count");
    for (u, ob) in units.iter().zip(&pipeline) {
        let l = format!("ticket unit {} vs [{}]", u.name, ob.description);
        assert_eq!(u.outcome.failure, None, "{l}: passes");
        assert_eq!(u.outcome.cases_checked, ob.cases_checked, "{l}: checked");
        assert_eq!(u.outcome.cases_skipped, ob.cases_skipped, "{l}: skipped");
        assert_eq!(u.outcome.cases_reduced, ob.cases_reduced, "{l}: reduced");
    }

    // Qlock: acq_q, rel_q.
    let l = Loc(4);
    let ctx = ContextGen::new(vec![Pid(0), Pid(1)])
        .with_player(
            Pid(1),
            Arc::new(qlock::QlockEnvPlayer::new(Pid(1), l, p.rounds)),
        )
        .with_schedule_len(p.schedule_len)
        .with_por(p.por)
        .contexts();
    let layer = qlock::certify_qlock(Pid(0), l, ctx).expect("qlock certifies in process");
    let units = baseline("qlock", &p);
    assert_eq!(units.len(), layer.certificate.obligations().len());
    for (u, ob) in units.iter().zip(layer.certificate.obligations()) {
        let l = format!("qlock unit {} vs [{}]", u.name, ob.description);
        assert_eq!(u.outcome.failure, None, "{l}: passes");
        assert_eq!(u.outcome.cases_checked, ob.cases_checked, "{l}: checked");
        assert_eq!(u.outcome.cases_skipped, ob.cases_skipped, "{l}: skipped");
        assert_eq!(u.outcome.cases_reduced, ob.cases_reduced, "{l}: reduced");
    }
}

/// Layer 1, sharded: a chunked grid distributed over two healthy shard
/// processes folds back to the exact serial accounting, and all chunks
/// really did run remotely.
#[test]
fn sharded_chunked_ticket_run_is_bit_identical() {
    let _guard = serial();
    let p = CertParams::default();
    let base = baseline("ticket", &p);
    let (daemon, addr) = fresh_daemon();
    let _s1 = spawn_shard(&addr, ShardOptions::default());
    let _s2 = spawn_shard(&addr, ShardOptions::default());
    wait_for_shards(&daemon, 2);
    let mut req = cold_request("ticket", &p);
    req.chunk_cases = 3;
    let resp = ccal_certd::certify(&addr, &req).expect("daemon answers");
    // Chunked runs split the prefix-sharing brackets, so only the
    // kernel accounting (counts, verdict, evidence) is compared.
    assert_matches_baseline("sharded ticket", &resp, &base, false);
    for u in &resp.units {
        assert!(u.chunks > 1, "unit {}: grid was chunked", u.unit);
        assert_eq!(
            u.remote_chunks, u.chunks,
            "unit {}: with shards connected the coordinator never runs locally",
            u.unit
        );
    }
}

/// Fault injection: every shard dies upon receiving its first lease
/// (the deterministic stand-in for `kill -9` mid-chunk). The abandoned
/// chunks are re-run — locally, once the shards are gone — and the
/// response is bit-identical to the no-shard baseline, on both a
/// failing stack (index-least evidence) and a passing one.
#[test]
fn killed_shards_change_retries_but_not_the_verdict() {
    let _guard = serial();
    let p = CertParams::default();
    for stack in ["scratch", "qlock"] {
        let base = baseline(stack, &p);
        let (daemon, addr) = fresh_daemon();
        let dying1 = spawn_shard(
            &addr,
            ShardOptions {
                exit_after: Some(1),
                ..ShardOptions::default()
            },
        );
        let dying2 = spawn_shard(
            &addr,
            ShardOptions {
                exit_after: Some(1),
                ..ShardOptions::default()
            },
        );
        wait_for_shards(&daemon, 2);
        let mut req = cold_request(stack, &p);
        req.chunk_cases = 1;
        let resp = ccal_certd::certify(&addr, &req).expect("daemon answers");
        assert_matches_baseline(&format!("{stack} with killed shards"), &resp, &base, false);
        let retries: u64 = resp.units.iter().map(|u| u.retries).sum();
        assert!(
            retries >= 1,
            "{stack}: at least one lease was abandoned and re-run (got {retries})"
        );
        assert_eq!(dying1.join().expect("shard thread"), ShardExit::Injected);
        assert_eq!(dying2.join().expect("shard thread"), ShardExit::Injected);
    }
}

/// The scratch failure is index-least regardless of chunking: the
/// single-case chunks fail exactly where the whole-grid kernel fails.
#[test]
fn chunked_failure_evidence_is_index_least() {
    let _guard = serial();
    let p = CertParams::default();
    let whole = registry::run_unit("scratch", "op", &p, None, None).expect("runs");
    let whole_failure = whole.failure.expect("scratch fails");
    let (_daemon, addr) = fresh_daemon();
    let mut req = cold_request("scratch", &p);
    req.chunk_cases = 1;
    let resp = ccal_certd::certify(&addr, &req).expect("daemon answers");
    assert!(!resp.certified);
    assert_eq!(resp.failed_unit.as_deref(), Some("op"));
    assert_eq!(resp.failure.as_deref(), Some(whole_failure.as_str()));
}

/// Acceptance: recertifying an unchanged stack is answered from the
/// content-addressed store with ZERO exploration steps — counter
/// asserted on the process-global step counters, which the daemon's
/// local runner shares with this test.
#[test]
fn recertifying_an_unchanged_stack_costs_zero_steps() {
    let _guard = serial();
    let p = CertParams::default();
    let (_daemon, addr) = fresh_daemon();
    let mut req = CertRequest::new("qlock");
    req.params = p.clone();

    let first = ccal_certd::certify(&addr, &req).expect("daemon answers");
    assert!(first.certified);
    assert_eq!(first.cache_hits, 0);
    assert!(first.total_steps > 0, "first run explores");

    let steps0 = prefix::steps_total();
    let prim0 = prefix::prim_steps_total();
    let second = ccal_certd::certify(&addr, &req).expect("daemon answers");
    assert_eq!(prefix::steps_total(), steps0, "no lower-machine steps ran");
    assert_eq!(prefix::prim_steps_total(), prim0, "no primitive steps ran");
    assert!(second.certified);
    assert_eq!(second.cache_hits, second.units.len(), "every unit cached");
    assert_eq!(second.total_steps, 0, "cache hits report zero steps");
    for (a, b) in first.units.iter().zip(&second.units) {
        assert!(b.cache_hit, "unit {}: cache hit", b.unit);
        assert_eq!(a.fingerprint, b.fingerprint, "unit {}: same identity", b.unit);
        assert_eq!(a.cases_checked, b.cases_checked, "unit {}: counts", b.unit);
        assert_eq!(a.cases_skipped, b.cases_skipped, "unit {}: counts", b.unit);
        assert_eq!(a.cases_reduced, b.cases_reduced, "unit {}: counts", b.unit);
    }

    // Failures are cached too — same failure string, zero steps.
    let mut scratch = CertRequest::new("scratch");
    scratch.params = p.clone();
    let f1 = ccal_certd::certify(&addr, &scratch).expect("daemon answers");
    let f2 = ccal_certd::certify(&addr, &scratch).expect("daemon answers");
    assert!(!f1.certified && !f2.certified);
    assert_eq!(f1.failure, f2.failure, "cached failure evidence is identical");
    assert_eq!(f2.cache_hits, 1);
    assert_eq!(f2.total_steps, 0);

    // A parameter change dirties the fingerprint: no hit, fresh run.
    let mut dirty = CertRequest::new("qlock");
    dirty.params = p.clone();
    dirty.params.schedule_len += 1;
    let third = ccal_certd::certify(&addr, &dirty).expect("daemon answers");
    assert_eq!(third.cache_hits, 0, "changed params miss the cache");
    assert!(third.total_steps > 0);
}

/// The stack-manifest fast path: recertifying a fully-clean stack is
/// answered from the per-stack manifest without asking the registry to
/// decompose the stack at all — counter-asserted on the process-global
/// decomposition counter, which the daemon's local runner shares with
/// this test. Failing stacks never earn a manifest, and a parameter
/// change misses it.
#[test]
fn clean_recertify_skips_registry_decomposition() {
    let _guard = serial();
    let p = CertParams::default();
    let (_daemon, addr) = fresh_daemon();
    let mut req = CertRequest::new("qlock");
    req.params = p.clone();

    let first = ccal_certd::certify(&addr, &req).expect("daemon answers");
    assert!(first.certified);
    assert!(!first.manifest_hit, "a cold run cannot hit the manifest");

    let dec0 = registry::decompositions_total();
    let steps0 = prefix::steps_total();
    let second = ccal_certd::certify(&addr, &req).expect("daemon answers");
    assert!(second.manifest_hit, "fully-clean stack answers from the manifest");
    assert_eq!(
        registry::decompositions_total(),
        dec0,
        "the registry never decomposed the stack"
    );
    assert_eq!(prefix::steps_total(), steps0, "no exploration ran");
    assert!(second.certified);
    assert_eq!(second.cache_hits, second.units.len(), "every unit cached");
    assert_eq!(second.total_steps, 0);
    assert_eq!(first.units.len(), second.units.len());
    for (a, b) in first.units.iter().zip(&second.units) {
        assert!(b.cache_hit, "unit {}: cache hit", b.unit);
        assert_eq!(a.unit, b.unit, "manifest preserves pipeline order");
        assert_eq!(a.fingerprint, b.fingerprint, "unit {}: same identity", b.unit);
        assert_eq!(a.cases_checked, b.cases_checked, "unit {}: counts", b.unit);
        assert_eq!(a.cases_skipped, b.cases_skipped, "unit {}: counts", b.unit);
        assert_eq!(a.cases_reduced, b.cases_reduced, "unit {}: counts", b.unit);
    }

    // A failing stack never earns a manifest: the recertify re-derives
    // the first-failure evidence through the normal per-unit flow.
    let mut scratch = CertRequest::new("scratch");
    scratch.params = p.clone();
    let f1 = ccal_certd::certify(&addr, &scratch).expect("daemon answers");
    let dec1 = registry::decompositions_total();
    let f2 = ccal_certd::certify(&addr, &scratch).expect("daemon answers");
    assert!(!f1.certified && !f2.certified);
    assert!(!f2.manifest_hit, "failing stacks have no manifest");
    assert!(
        registry::decompositions_total() > dec1,
        "the failing stack was decomposed again"
    );
    assert_eq!(f1.failure, f2.failure, "evidence unchanged by the fast path");

    // A parameter change misses the manifest key, exactly as it dirties
    // every unit fingerprint.
    let mut dirty = CertRequest::new("qlock");
    dirty.params = p.clone();
    dirty.params.state_dedup = false;
    let third = ccal_certd::certify(&addr, &dirty).expect("daemon answers");
    assert!(!third.manifest_hit, "changed params miss the manifest");
    assert_eq!(third.cache_hits, 0, "changed params miss the unit store too");
    assert!(third.total_steps > 0, "the grid was re-explored");
    assert!(third.certified, "qlock certifies with convergence dedup off");
}

/// The `CCAL_CERTD_CACHE=0` hatch disables store hits (the daemon
/// process reads it per lookup), forcing recertification.
#[test]
fn cache_kill_switch_forces_recertification() {
    let _guard = serial();
    let p = CertParams::default();
    let (_daemon, addr) = fresh_daemon();
    let mut req = CertRequest::new("qlock");
    req.params = p;
    // Warm reuse off, so a forced re-check is visible in the step
    // counters (a warm re-check can legitimately cost zero steps).
    req.warm = false;
    let first = ccal_certd::certify(&addr, &req).expect("daemon answers");
    assert!(first.certified);
    std::env::set_var("CCAL_CERTD_CACHE", "0");
    let second = ccal_certd::certify(&addr, &req);
    std::env::remove_var("CCAL_CERTD_CACHE");
    let second = second.expect("daemon answers");
    assert_eq!(second.cache_hits, 0, "hits disabled by the kill switch");
    assert!(second.total_steps > 0, "the grid was re-explored");
    assert_eq!(second.certified, first.certified);
    let third = ccal_certd::certify(&addr, &req).expect("daemon answers");
    assert_eq!(
        third.cache_hits,
        third.units.len(),
        "hits come back once the switch is lifted"
    );
}

/// Warm memo state persists across requests: a second uncached run of
/// the same units reuses the daemon's prefix memo and snapshot caches,
/// reporting warm hits while producing the identical verdict and
/// accounting.
#[test]
fn warm_state_is_reused_across_requests() {
    let _guard = serial();
    // The cross-unit assertions below are about *semantic* families;
    // pin the mode so the CCAL_SHARE_SEMANTIC=0 suite rerun still
    // exercises them (the hatch's pinned behaviour has its own tests).
    let _on = prefix::ShareSemanticOverride::force(true);
    let p = CertParams::default();
    let (_daemon, addr) = fresh_daemon();
    let mut req = CertRequest::new("qlock");
    req.params = p;
    req.use_cache = false;
    req.warm = true;
    let first = ccal_certd::certify(&addr, &req).expect("daemon answers");
    let second = ccal_certd::certify(&addr, &req).expect("daemon answers");
    assert_eq!(first.certified, second.certified, "warm reuse preserves the verdict");
    for (a, b) in first.units.iter().zip(&second.units) {
        assert_eq!(a.cases_checked, b.cases_checked, "unit {}: counts", b.unit);
        assert_eq!(a.cases_reduced, b.cases_reduced, "unit {}: counts", b.unit);
        assert_eq!(a.failure, b.failure, "unit {}: evidence", b.unit);
        assert!(
            b.memo_entries > 0,
            "unit {}: warm memo carried entries into the second request",
            b.unit
        );
    }
    assert!(
        second.total_steps < first.total_steps,
        "warm memo state saves lower-machine steps ({} -> {})",
        first.total_steps,
        second.total_steps
    );
    // qlock's two units share one semantic family, so `rel_q` starts
    // warm on the *first* request — cross-unit reuse, surfaced by the
    // per-unit family-hits counter.
    assert!(
        first.units[1].shared_family_hits > 0,
        "rel_q must reuse acq_q's warm family state on the first request \
         (got {:?})",
        first.units.iter().map(|u| u.shared_family_hits).collect::<Vec<_>>()
    );
    for u in &second.units {
        assert!(
            u.shared_family_hits > 0,
            "unit {}: a warm re-request must report family hits",
            u.unit
        );
    }
}

/// Semantic sharing keys group the ticket stack's nine units into three
/// families, so sibling units start warm within the *first* request —
/// and every later unit starts warm on a second request. The per-unit
/// `shared_family_hits` counter makes the reuse observable end to end.
#[test]
fn ticket_units_share_family_state_within_and_across_requests() {
    let _guard = serial();
    // Family grouping is the semantic-sharing feature itself — pin the
    // mode so the CCAL_SHARE_SEMANTIC=0 suite rerun keeps covering it.
    let _on = prefix::ShareSemanticOverride::force(true);
    let (_daemon, addr) = fresh_daemon();
    let mut req = CertRequest::new("ticket");
    req.params = CertParams::default();
    req.use_cache = false;
    req.warm = true;
    let first = ccal_certd::certify(&addr, &req).expect("daemon answers");
    assert!(first.certified, "ticket certifies");
    let hits: Vec<u64> = first.units.iter().map(|u| u.shared_family_hits).collect();
    // Pipeline order: funlift/{acq,f,g,rel}, loglift/{acq,f,g,rel},
    // client/foo. Indices 1–3 and 5–7 follow a sibling of their family;
    // indices 4 and 8 open new families and must report nothing — the
    // counter is gated on the warm state being non-empty at lease start.
    for i in [1, 2, 3, 5, 6, 7] {
        assert!(
            hits[i] > 0,
            "unit {} must start warm from its family sibling (hits {hits:?})",
            first.units[i].unit
        );
    }
    for i in [4, 8] {
        assert_eq!(
            hits[i], 0,
            "unit {} opens a new family cold (hits {hits:?})",
            first.units[i].unit
        );
    }
    let second = ccal_certd::certify(&addr, &req).expect("daemon answers");
    assert_eq!(first.certified, second.certified, "warm reuse preserves the verdict");
    for (a, b) in first.units.iter().zip(&second.units) {
        assert_eq!(a.cases_checked, b.cases_checked, "unit {}: counts", b.unit);
        assert_eq!(a.failure, b.failure, "unit {}: evidence", b.unit);
    }
    for u in &second.units[1..] {
        assert!(
            u.shared_family_hits > 0,
            "unit {}: every later unit starts warm on a re-request",
            u.unit
        );
    }
}
