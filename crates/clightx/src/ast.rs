//! Abstract syntax of ClightX.
//!
//! ClightX is the C-like source language of the layered toolkit: "CCAL ...
//! supports layered concurrent programming in both C and assembly"
//! (abstract); "code of each thread can be verified at the C level over
//! `Lhtd[c][t]`" (§5.5). The language is a small C subset — integers,
//! assignments, `if`/`while`/`break`, calls to functions and layer
//! primitives, `return` — sufficient for every module in the paper
//! (Figs. 3, 10, 11).
//!
//! Two syntactic levels exist:
//!
//! * **surface** — what the parser produces: calls may appear anywhere in
//!   expressions (`while (get_n(b) != my_t) {}`);
//! * **lowered** — what the interpreter and compiler consume: calls only
//!   as statement right-hand sides, `&&`/`||` desugared, `while` loops
//!   rewritten to `loop`+`break` with hoisted condition calls. See
//!   [`crate::lower`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use ccal_core::id::Loc;

/// An interned ClightX identifier: a shared, immutable string.
///
/// Identifiers are minted once — at parse time (the parser deduplicates
/// within a module) or by the lowering pass for its `$tN` temporaries —
/// and every later occurrence is a reference-count bump. This keeps the
/// interpreter's per-call `locals` population and per-statement cloning
/// free of `String` deep copies, and makes bytecode frames cheap to fork.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ident(Arc<str>);

impl Ident {
    /// The identifier's text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for Ident {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl std::borrow::Borrow<str> for Ident {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Ident {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident(Arc::from(s))
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident(Arc::from(s))
    }
}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Ident {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<Ident> for str {
    fn eq(&self, other: &Ident) -> bool {
        self == &*other.0
    }
}

impl PartialEq<Ident> for &str {
    fn eq(&self, other: &Ident) -> bool {
        *self == &*other.0
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

/// Binary operators. `&&`/`||` are surface-only (lowered to `if`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (C integer division, truncating)
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (surface only; lowered before execution)
    And,
    /// `||` (surface only; lowered before execution)
    Or,
}

impl BinOp {
    /// Whether this operator is a comparison (result is 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether this operator is surface-only short-circuit logic.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation `!` (0 ↦ 1, nonzero ↦ 0).
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Not => write!(f, "!"),
            UnOp::Neg => write!(f, "-"),
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// A location (shared-object handle) literal. Surface syntax `#N`.
    LocConst(Loc),
    /// Variable reference.
    Var(Ident),
    /// Binary operation.
    Binop(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unop(UnOp, Box<Expr>),
    /// Function/primitive call — surface syntax only; the lowering pass
    /// hoists these into [`Stmt::Call`].
    Call(Ident, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for a variable.
    pub fn var(name: &str) -> Expr {
        Expr::Var(Ident::from(name))
    }

    /// Whether the expression contains any call node.
    pub fn has_call(&self) -> bool {
        match self {
            Expr::Int(_) | Expr::LocConst(_) | Expr::Var(_) => false,
            Expr::Binop(_, a, b) => a.has_call() || b.has_call(),
            Expr::Unop(_, a) => a.has_call(),
            Expr::Call(..) => true,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(i) => write!(f, "{i}"),
            Expr::LocConst(l) => write!(f, "#{}", l.0),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Binop(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Unop(op, a) => write!(f, "{op}({a})"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// No-op.
    Skip,
    /// `x = e;` (no calls in `e` after lowering).
    Assign(Ident, Expr),
    /// `x = f(a, b);` or `f(a, b);` — a call to a same-module function or
    /// an ambient-layer primitive.
    Call(Option<Ident>, Ident, Vec<Expr>),
    /// Statement sequence.
    Block(Vec<Stmt>),
    /// `if (e) { .. } else { .. }`.
    If(Expr, Box<Stmt>, Box<Stmt>),
    /// Surface `while (e) { .. }` (lowered to [`Stmt::Loop`]).
    While(Expr, Box<Stmt>),
    /// Infinite loop, exited by `break` — the lowered form of `while`.
    Loop(Box<Stmt>),
    /// Exit the innermost loop.
    Break,
    /// `return e;` / `return;` (void functions return unit).
    Return(Option<Expr>),
}

impl Stmt {
    /// Builds a block, flattening nested blocks of one element.
    pub fn block(stmts: Vec<Stmt>) -> Stmt {
        match stmts.len() {
            1 => stmts.into_iter().next().expect("len checked"),
            _ => Stmt::Block(stmts),
        }
    }
}

/// A ClightX function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CFunction {
    /// The function's name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<Ident>,
    /// Declared local variables (excluding parameters and compiler
    /// temporaries).
    pub locals: Vec<Ident>,
    /// The body.
    pub body: Stmt,
    /// Whether the function is declared to return a value (`int` vs
    /// `void`).
    pub returns_value: bool,
}

/// A ClightX module: a collection of function definitions (the `M` of a
/// certified layer, written in C).
#[derive(Debug, Clone, Default)]
pub struct CModule {
    funcs: BTreeMap<String, Arc<CFunction>>,
}

impl CModule {
    /// An empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function.
    pub fn with_fn(mut self, func: CFunction) -> Self {
        self.funcs.insert(func.name.clone(), Arc::new(func));
        self
    }

    /// Looks up a function.
    pub fn get(&self, name: &str) -> Option<&Arc<CFunction>> {
        self.funcs.get(name)
    }

    /// Function names, sorted.
    pub fn fn_names(&self) -> Vec<&str> {
        self.funcs.keys().map(String::as_str).collect()
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether the module is empty.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Iterates over functions in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<CFunction>> {
        self.funcs.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_call_detects_nested_calls() {
        let e = Expr::Binop(
            BinOp::Ne,
            Box::new(Expr::Call("get_n".into(), vec![Expr::var("b")])),
            Box::new(Expr::var("my_t")),
        );
        assert!(e.has_call());
        assert!(!Expr::var("x").has_call());
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::Binop(
            BinOp::Add,
            Box::new(Expr::Int(1)),
            Box::new(Expr::Unop(UnOp::Neg, Box::new(Expr::var("x")))),
        );
        assert_eq!(e.to_string(), "(1 + -(x))");
    }

    #[test]
    fn block_flattens_singletons() {
        let s = Stmt::block(vec![Stmt::Skip]);
        assert_eq!(s, Stmt::Skip);
        let s = Stmt::block(vec![Stmt::Skip, Stmt::Break]);
        assert!(matches!(s, Stmt::Block(_)));
    }

    #[test]
    fn module_collects_functions() {
        let m = CModule::new().with_fn(CFunction {
            name: "f".into(),
            params: vec![],
            locals: vec![],
            body: Stmt::Return(None),
            returns_value: false,
        });
        assert_eq!(m.fn_names(), vec!["f"]);
        assert!(m.get("f").is_some());
    }
}
