//! Flat register bytecode for lowered ClightX.
//!
//! The compiled tier of the ClightX pipeline: [`crate::compile`] resolves
//! every identifier to a dense *slot* index at compile (i.e. lower) time,
//! so the VM ([`crate::vm`]) never touches a string-keyed map on its hot
//! path, and loops become jumps to a code offset instead of per-iteration
//! re-pushes of a cloned statement tree.
//!
//! The instruction set is deliberately small and mirrors the lowered
//! statement language one-to-one, plus two branch fusions the compiler
//! applies (`!`-folding into the branch polarity, and compare-and-branch
//! for comparison conditions). Those fusions are semantics-preserving by
//! construction: they reuse the interpreter's own value helpers
//! ([`crate::interp`]) in the same order, so error strings and verdicts
//! stay bit-identical across tiers.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use ccal_core::val::Val;

use crate::ast::{BinOp, Ident, UnOp};

/// An instruction operand: a constant or a register slot.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// An immediate value (integer or location literal).
    Const(Val),
    /// A register slot (parameter, local, or expression temporary).
    Slot(u16),
}

/// The callee of a [`Inst::Call`], resolved at compile time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// A function of the same compiled module, by index.
    Internal(u32),
    /// An ambient-layer primitive, dispatched through the layer
    /// interface at its query point.
    External(Ident),
}

/// A bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `regs[dst] = src`.
    Mov {
        /// Destination slot.
        dst: u16,
        /// Source operand.
        src: Operand,
    },
    /// `regs[dst] = op src`.
    Unop {
        /// Destination slot.
        dst: u16,
        /// The operator.
        op: UnOp,
        /// Source operand.
        src: Operand,
    },
    /// `regs[dst] = a op b`.
    Binop {
        /// Destination slot.
        dst: u16,
        /// The operator (never `&&`/`||`: those are desugared before
        /// compilation).
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Unconditional jump.
    Jump {
        /// Target code offset.
        target: u32,
    },
    /// Jump to `target` when `truthy(cond) == expect`.
    Branch {
        /// The condition operand.
        cond: Operand,
        /// The polarity: jump on true (`true`) or on false (`false`).
        expect: bool,
        /// Target code offset.
        target: u32,
    },
    /// Fused compare-and-branch: jump to `target` when
    /// `truthy(a op b) == expect`. Only emitted for comparison
    /// operators, whose results are always `0`/`1`.
    CmpBranch {
        /// The comparison operator.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// The polarity.
        expect: bool,
        /// Target code offset.
        target: u32,
    },
    /// Call an internal function or external primitive; the result (unit
    /// for void callees) lands in `dst` when present.
    Call {
        /// Destination slot for the returned value, if the source bound
        /// one.
        dst: Option<u16>,
        /// The resolved callee.
        target: CallTarget,
        /// Argument operands, evaluated left to right.
        args: Box<[Operand]>,
    },
    /// Return `src` (unit when absent) from the current activation.
    Return {
        /// The returned operand.
        src: Option<Operand>,
    },
}

impl Inst {
    /// The branch/jump target, if this instruction has one.
    pub fn target(&self) -> Option<u32> {
        match self {
            Inst::Jump { target }
            | Inst::Branch { target, .. }
            | Inst::CmpBranch { target, .. } => Some(*target),
            _ => None,
        }
    }
}

/// One compiled function: slot layout plus flat code.
#[derive(Debug, Clone)]
pub struct CompiledFn {
    /// The function's name (for arity-error messages and lookups).
    pub name: String,
    /// The slot each parameter is stored into, in declaration order.
    /// Duplicate parameter names share a slot, so later arguments win —
    /// matching the interpreter's insertion order.
    pub param_slots: Vec<u16>,
    /// Slots re-initialised to `Undef` after parameter binding, in local
    /// declaration order (a local shadowing a parameter overwrites it,
    /// as in the interpreter).
    pub local_slots: Vec<u16>,
    /// Total register count (named slots plus expression temporaries).
    pub nslots: u16,
    /// The instruction sequence; always ends in a [`Inst::Return`].
    pub code: Box<[Inst]>,
}

impl CompiledFn {
    /// Number of declared parameters.
    pub fn arity(&self) -> usize {
        self.param_slots.len()
    }
}

/// A compiled module: functions in the source module's (sorted) order,
/// with internal calls resolved to indices.
#[derive(Debug, Clone, Default)]
pub struct CompiledModule {
    funcs: Vec<Arc<CompiledFn>>,
    by_name: BTreeMap<String, u32>,
}

impl CompiledModule {
    pub(crate) fn from_funcs(funcs: Vec<CompiledFn>) -> Self {
        let by_name = funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i as u32))
            .collect();
        Self {
            funcs: funcs.into_iter().map(Arc::new).collect(),
            by_name,
        }
    }

    /// The index of a function, for [`crate::vm::VmRun::new`].
    pub fn fn_index(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The function at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (compiled call targets never are).
    pub fn func(&self, id: u32) -> &Arc<CompiledFn> {
        &self.funcs[id as usize]
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether the module has no functions.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Iterates over compiled functions in index order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<CompiledFn>> {
        self.funcs.iter()
    }
}

impl fmt::Display for CompiledFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn {} (params {:?}, locals {:?}, {} slots):",
            self.name, self.param_slots, self.local_slots, self.nslots
        )?;
        for (i, inst) in self.code.iter().enumerate() {
            writeln!(f, "  {i:4}: {inst:?}")?;
        }
        Ok(())
    }
}
