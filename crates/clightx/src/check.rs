//! Static checks on lowered ClightX modules.
//!
//! The C verifier of the toolkit (Fig. 2) begins with well-formedness:
//! every variable is declared, `break` appears only inside loops, internal
//! calls have matching arity, `return e` only appears in value-returning
//! functions, and the code is in lowered form. Violations are rejected
//! before any simulation checking runs.

use std::collections::BTreeSet;
use std::fmt;

use crate::ast::{CFunction, CModule, Expr, Ident, Stmt};
use crate::lower::stmt_is_lowered;

/// A static error in a ClightX module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// The function containing the error.
    pub func: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in function `{}`: {}", self.func, self.message)
    }
}

impl std::error::Error for CheckError {}

struct Checker<'a> {
    module: &'a CModule,
    func: &'a CFunction,
    vars: BTreeSet<&'a str>,
    errors: Vec<CheckError>,
}

impl<'a> Checker<'a> {
    fn error(&mut self, message: String) {
        self.errors.push(CheckError {
            func: self.func.name.clone(),
            message,
        });
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Int(_) | Expr::LocConst(_) => {}
            Expr::Var(x) => {
                if !self.vars.contains(x.as_str()) {
                    self.error(format!("use of undeclared variable `{x}`"));
                }
            }
            Expr::Unop(_, a) => self.expr(a),
            Expr::Binop(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            Expr::Call(name, _) => {
                self.error(format!("call to `{name}` not in statement position"));
            }
        }
    }

    fn stmt(&mut self, s: &Stmt, in_loop: bool) {
        match s {
            Stmt::Skip => {}
            Stmt::Assign(x, e) => {
                if !self.vars.contains(x.as_str()) {
                    self.error(format!("assignment to undeclared variable `{x}`"));
                }
                self.expr(e);
            }
            Stmt::Call(dst, name, args) => {
                if let Some(dst) = dst {
                    if !self.vars.contains(dst.as_str()) {
                        self.error(format!("call result stored in undeclared variable `{dst}`"));
                    }
                }
                for a in args {
                    self.expr(a);
                }
                if let Some(callee) = self.module.get(name) {
                    if callee.params.len() != args.len() {
                        self.error(format!(
                            "`{name}` expects {} arguments, called with {}",
                            callee.params.len(),
                            args.len()
                        ));
                    }
                    if dst.is_some() && !callee.returns_value {
                        self.error(format!("void function `{name}` used as a value"));
                    }
                }
            }
            Stmt::Block(v) => v.iter().for_each(|s| self.stmt(s, in_loop)),
            Stmt::If(c, t, e) => {
                self.expr(c);
                self.stmt(t, in_loop);
                self.stmt(e, in_loop);
            }
            Stmt::While(c, b) => {
                self.expr(c);
                self.stmt(b, true);
            }
            Stmt::Loop(b) => self.stmt(b, true),
            Stmt::Break => {
                if !in_loop {
                    self.error("break outside of a loop".to_owned());
                }
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.expr(e);
                    if !self.func.returns_value {
                        self.error("`return e;` in a void function".to_owned());
                    }
                }
            }
        }
    }
}

/// Checks one lowered function.
///
/// # Errors
///
/// All [`CheckError`]s found (the check does not stop at the first).
pub fn check_function(module: &CModule, func: &CFunction) -> Result<(), Vec<CheckError>> {
    let mut vars: BTreeSet<&str> = func.params.iter().map(Ident::as_str).collect();
    vars.extend(func.locals.iter().map(Ident::as_str));
    let mut checker = Checker {
        module,
        func,
        vars,
        errors: Vec::new(),
    };
    if !stmt_is_lowered(&func.body) {
        checker.error("function body is not in lowered form".to_owned());
    }
    let body = func.body.clone();
    checker.stmt(&body, false);
    if checker.errors.is_empty() {
        Ok(())
    } else {
        Err(checker.errors)
    }
}

/// Checks every function of a lowered module.
///
/// # Errors
///
/// All [`CheckError`]s across the module.
pub fn check_module(module: &CModule) -> Result<(), Vec<CheckError>> {
    let mut errors = Vec::new();
    for f in module.iter() {
        if let Err(mut es) = check_function(module, f) {
            errors.append(&mut es);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_module;
    use crate::parser::parse_module;

    fn check_src(src: &str) -> Result<(), Vec<CheckError>> {
        check_module(&lower_module(&parse_module(src).unwrap()))
    }

    #[test]
    fn accepts_well_formed_code() {
        check_src(
            r#"
            int helper(int x) { return x + 1; }
            int f(int a) { int b = helper(a); while (b > 0) { b = b - 1; } return b; }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_undeclared_variables() {
        let errs = check_src("int f() { return nope; }").unwrap_err();
        assert!(errs[0].message.contains("undeclared variable `nope`"));
        let errs = check_src("void f() { nope = 3; }").unwrap_err();
        assert!(errs[0].message.contains("assignment to undeclared"));
    }

    #[test]
    fn rejects_arity_mismatch_on_internal_calls() {
        let errs = check_src("int g(int x) { return x; } void f() { g(); }").unwrap_err();
        assert!(errs[0].message.contains("expects 1 arguments"));
    }

    #[test]
    fn rejects_value_use_of_void_function() {
        let errs = check_src("void g() {} int f() { int x = g(); return x; }").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("used as a value")));
    }

    #[test]
    fn rejects_return_value_in_void_function() {
        let errs = check_src("void f() { return 3; }").unwrap_err();
        assert!(errs[0].message.contains("void function"));
    }

    #[test]
    fn break_outside_loop_is_rejected() {
        // `break` at top level cannot be produced by the parser, so build
        // the AST directly.
        use crate::ast::{CFunction, Stmt};
        let f = CFunction {
            name: "f".into(),
            params: vec![],
            locals: vec![],
            body: Stmt::Break,
            returns_value: false,
        };
        let m = CModule::new().with_fn(f.clone());
        let errs = check_function(&m, &f).unwrap_err();
        assert!(errs[0].message.contains("break outside"));
    }

    #[test]
    fn collects_multiple_errors() {
        let errs = check_src("int f() { a = b; return c; }").unwrap_err();
        assert!(errs.len() >= 3);
    }
}
