//! Compilation of lowered ClightX to slot-resolved bytecode.
//!
//! Three things happen here, all at lower time rather than on the VM's
//! hot path:
//!
//! 1. **Slot resolution** — every parameter, local, and `$tN` temporary
//!    gets a dense register index; variable access in the VM is an array
//!    index, not a `BTreeMap<String, _>` lookup.
//! 2. **Control-flow flattening** — `loop`/`break`/`if` become jumps to
//!    code offsets. A loop iteration re-enters at a `pc`, so the
//!    per-iteration `Arc`/clone traffic of the tree-walking interpreter
//!    disappears entirely.
//! 3. **Branch fusion** — `if (!c)` folds into the branch polarity,
//!    comparison conditions fuse into [`Inst::CmpBranch`], and branches
//!    to unconditional jumps are threaded to their final target. The
//!    ticket lock's `while (get_n(b) != my_t) {}` spin compiles to two
//!    retired instructions per iteration (call + fused branch) versus
//!    the interpreter's four work-items.
//!
//! Compilation is **whole-module-or-nothing**: any function the compiler
//! cannot translate (undeclared names, stray `break`, unlowered code —
//! everything [`crate::check`] would reject statically) fails the whole
//! module, and [`crate::interp::module_from_lowered`] keeps such modules
//! on the interpreter so their runtime error behaviour is unchanged.

use std::collections::HashMap;
use std::fmt;

use ccal_core::val::Val;

use crate::ast::{CFunction, CModule, Expr, Ident, Stmt, UnOp};
use crate::bytecode::{CallTarget, CompiledFn, CompiledModule, Inst, Operand};
use crate::lower::stmt_is_lowered;

/// Why a function could not be compiled (the module then stays on the
/// interpreter tier).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// The function that failed.
    pub func: String,
    /// What the compiler could not translate.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot compile `{}`: {}", self.func, self.message)
    }
}

impl std::error::Error for CompileError {}

struct FnCompiler<'a> {
    module: &'a CModule,
    fn_ids: &'a HashMap<&'a str, u32>,
    func: &'a CFunction,
    slots: HashMap<Ident, u16>,
    named_count: u16,
    temp_next: u16,
    max_slots: u16,
    code: Vec<Inst>,
    /// Break-jump patch sites, one list per active loop.
    loop_breaks: Vec<Vec<usize>>,
}

impl<'a> FnCompiler<'a> {
    fn fail(&self, message: impl Into<String>) -> CompileError {
        CompileError {
            func: self.func.name.clone(),
            message: message.into(),
        }
    }

    fn slot(&self, x: &Ident) -> Result<u16, CompileError> {
        self.slots
            .get(x)
            .copied()
            .ok_or_else(|| self.fail(format!("undeclared variable `{x}`")))
    }

    fn temp(&mut self) -> Result<u16, CompileError> {
        let t = self.temp_next;
        self.temp_next = self
            .temp_next
            .checked_add(1)
            .ok_or_else(|| self.fail("expression needs too many temporaries"))?;
        self.max_slots = self.max_slots.max(self.temp_next);
        Ok(t)
    }

    /// Compiles an expression; emitted instructions leave the value in
    /// the returned operand. Instruction order matches the interpreter's
    /// evaluation order (left subtree fully, then right, then the
    /// operator), so runtime errors surface identically.
    fn expr(&mut self, e: &Expr) -> Result<Operand, CompileError> {
        match e {
            Expr::Int(i) => Ok(Operand::Const(Val::Int(*i))),
            Expr::LocConst(l) => Ok(Operand::Const(Val::Loc(*l))),
            Expr::Var(x) => Ok(Operand::Slot(self.slot(x)?)),
            Expr::Unop(op, a) => {
                let src = self.expr(a)?;
                let dst = self.temp()?;
                self.code.push(Inst::Unop { dst, op: *op, src });
                Ok(Operand::Slot(dst))
            }
            Expr::Binop(op, a, b) => {
                if op.is_logical() {
                    return Err(self.fail("short-circuit operator in lowered code"));
                }
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                let dst = self.temp()?;
                self.code.push(Inst::Binop { dst, op: *op, a, b });
                Ok(Operand::Slot(dst))
            }
            Expr::Call(name, _) => Err(self.fail(format!(
                "call to `{name}` inside an expression: code was not lowered"
            ))),
        }
    }

    /// Emits a conditional jump taken when `truthy(cond) == jump_if`,
    /// folding `!` into the polarity and fusing comparisons. Returns the
    /// patch site. The condition's truthiness is always still computed,
    /// so type errors surface exactly as in the interpreter.
    fn cond_jump(&mut self, cond: &Expr, jump_if: bool) -> Result<usize, CompileError> {
        match cond {
            Expr::Unop(UnOp::Not, inner) => self.cond_jump(inner, !jump_if),
            Expr::Binop(op, a, b) if op.is_comparison() => {
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                self.code.push(Inst::CmpBranch {
                    op: *op,
                    a,
                    b,
                    expect: jump_if,
                    target: 0,
                });
                Ok(self.code.len() - 1)
            }
            _ => {
                let cond = self.expr(cond)?;
                self.code.push(Inst::Branch {
                    cond,
                    expect: jump_if,
                    target: 0,
                });
                Ok(self.code.len() - 1)
            }
        }
    }

    fn patch(&mut self, site: usize, target: u32) {
        match &mut self.code[site] {
            Inst::Jump { target: t }
            | Inst::Branch { target: t, .. }
            | Inst::CmpBranch { target: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn here(&self) -> Result<u32, CompileError> {
        u32::try_from(self.code.len()).map_err(|_| self.fail("function too large"))
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        // Expression temporaries are dead across statements; reuse them.
        self.temp_next = self.named_count;
        match s {
            Stmt::Skip => {}
            Stmt::Assign(x, e) => {
                let dst = self.slot(x)?;
                let src = self.expr(e)?;
                self.code.push(Inst::Mov { dst, src });
            }
            Stmt::Call(dst, name, args) => {
                let dst = match dst {
                    Some(d) => Some(self.slot(d)?),
                    None => None,
                };
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.expr(a)?);
                }
                let target = match self.fn_ids.get(name.as_str()) {
                    Some(&fid) => {
                        let callee = self.module.get(name).expect("indexed function");
                        if callee.params.len() != args.len() {
                            // The interpreter reports this at call time;
                            // fall back so the message is preserved.
                            return Err(self.fail(format!(
                                "`{name}` expects {} arguments, called with {}",
                                callee.params.len(),
                                args.len()
                            )));
                        }
                        CallTarget::Internal(fid)
                    }
                    None => CallTarget::External(name.clone()),
                };
                self.code.push(Inst::Call {
                    dst,
                    target,
                    args: ops.into_boxed_slice(),
                });
            }
            Stmt::Block(v) => {
                for s in v {
                    self.stmt(s)?;
                }
            }
            Stmt::If(c, t, e) => {
                let t_empty = stmt_is_empty(t);
                let e_empty = stmt_is_empty(e);
                if t_empty && e_empty {
                    // Still evaluate the condition for its type check.
                    let site = self.cond_jump(c, false)?;
                    let end = self.here()?;
                    self.patch(site, end);
                } else if e_empty {
                    let site = self.cond_jump(c, false)?;
                    self.stmt(t)?;
                    let end = self.here()?;
                    self.patch(site, end);
                } else if t_empty {
                    let site = self.cond_jump(c, true)?;
                    self.stmt(e)?;
                    let end = self.here()?;
                    self.patch(site, end);
                } else {
                    let to_else = self.cond_jump(c, false)?;
                    self.stmt(t)?;
                    self.code.push(Inst::Jump { target: 0 });
                    let to_end = self.code.len() - 1;
                    let else_at = self.here()?;
                    self.patch(to_else, else_at);
                    self.stmt(e)?;
                    let end = self.here()?;
                    self.patch(to_end, end);
                }
            }
            Stmt::While(..) => {
                return Err(self.fail("while in lowered code (lowering bug)"));
            }
            Stmt::Loop(body) => {
                let head = self.here()?;
                self.loop_breaks.push(Vec::new());
                self.stmt(body)?;
                self.code.push(Inst::Jump { target: head });
                let end = self.here()?;
                let breaks = self.loop_breaks.pop().expect("pushed above");
                for site in breaks {
                    self.patch(site, end);
                }
            }
            Stmt::Break => {
                self.code.push(Inst::Jump { target: 0 });
                let site = self.code.len() - 1;
                match self.loop_breaks.last_mut() {
                    Some(v) => v.push(site),
                    None => return Err(self.fail("break outside of a loop")),
                }
            }
            Stmt::Return(e) => {
                let src = match e {
                    Some(e) => Some(self.expr(e)?),
                    None => None,
                };
                self.code.push(Inst::Return { src });
            }
        }
        Ok(())
    }
}

fn stmt_is_empty(s: &Stmt) -> bool {
    match s {
        Stmt::Skip => true,
        Stmt::Block(v) => v.iter().all(stmt_is_empty),
        _ => false,
    }
}

/// Threads branches whose target is an unconditional jump directly to
/// the final destination. This is what makes a compiled spin loop's
/// back-edge a single retired instruction: the fused `CmpBranch` of
/// `if (!(t != my)) break;` jumps straight back to the loop head
/// instead of landing on the `Jump` that follows it.
fn thread_jumps(code: &mut [Inst]) {
    let resolve = |code: &[Inst], mut t: u32| {
        // The hop bound guards against jump-to-self cycles.
        for _ in 0..code.len() {
            match code.get(t as usize) {
                Some(Inst::Jump { target }) if *target != t => t = *target,
                _ => break,
            }
        }
        t
    };
    for i in 0..code.len() {
        if let Some(t) = code[i].target() {
            let t2 = resolve(code, t);
            if t2 != t {
                match &mut code[i] {
                    Inst::Jump { target }
                    | Inst::Branch { target, .. }
                    | Inst::CmpBranch { target, .. } => *target = t2,
                    _ => unreachable!("target() returned Some"),
                }
            }
        }
    }
}

/// Compiles one lowered function against its module.
///
/// # Errors
///
/// [`CompileError`] for constructs the bytecode tier does not execute
/// (the caller then falls back to the interpreter for the whole module).
pub fn compile_function(
    module: &CModule,
    fn_ids: &HashMap<&str, u32>,
    func: &CFunction,
) -> Result<CompiledFn, CompileError> {
    let mut c = FnCompiler {
        module,
        fn_ids,
        func,
        slots: HashMap::new(),
        named_count: 0,
        temp_next: 0,
        max_slots: 0,
        code: Vec::new(),
        loop_breaks: Vec::new(),
    };
    if !stmt_is_lowered(&func.body) {
        return Err(c.fail("function body is not in lowered form"));
    }
    // Slot assignment mirrors the interpreter's `BTreeMap` insertion:
    // params in order, then locals; duplicate names share a slot so the
    // later initialisation wins.
    let bind = |c: &mut FnCompiler<'_>, name: &Ident| -> Result<u16, CompileError> {
        let next = c.named_count;
        let slot = *c.slots.entry(name.clone()).or_insert(next);
        if slot == next {
            c.named_count = next
                .checked_add(1)
                .ok_or_else(|| c.fail("too many variables"))?;
        }
        Ok(slot)
    };
    let mut param_slots = Vec::with_capacity(func.params.len());
    for p in &func.params {
        param_slots.push(bind(&mut c, p)?);
    }
    let mut local_slots = Vec::with_capacity(func.locals.len());
    for l in &func.locals {
        local_slots.push(bind(&mut c, l)?);
    }
    c.max_slots = c.named_count;
    c.temp_next = c.named_count;
    c.stmt(&func.body)?;
    // No implicit trailing return: the VM treats a program counter one
    // past the end as frame completion with `Unit`, uncharged — matching
    // the interpreter, whose drained work stack also completes for free.
    // Jumps (loop breaks, branch joins) may legitimately target
    // `code.len()`.
    thread_jumps(&mut c.code);
    Ok(CompiledFn {
        name: func.name.clone(),
        param_slots,
        local_slots,
        nslots: c.max_slots,
        code: c.code.into_boxed_slice(),
    })
}

/// Compiles a whole lowered module, whole-module-or-nothing.
///
/// # Errors
///
/// The first [`CompileError`] encountered; the caller keeps the module
/// on the interpreter tier in that case.
pub fn compile_module(module: &CModule) -> Result<CompiledModule, CompileError> {
    let fn_ids: HashMap<&str, u32> = module
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i as u32))
        .collect();
    let mut funcs = Vec::with_capacity(module.len());
    for f in module.iter() {
        funcs.push(compile_function(module, &fn_ids, f)?);
    }
    Ok(CompiledModule::from_funcs(funcs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_module;
    use crate::parser::parse_module;

    fn compiled(src: &str) -> CompiledModule {
        compile_module(&lower_module(&parse_module(src).unwrap())).unwrap()
    }

    #[test]
    fn compiles_straight_line_code() {
        let m = compiled("int f(int x) { int y = x + 1; return y * 2; }");
        assert_eq!(m.len(), 1);
        let f = m.func(0);
        assert_eq!(f.arity(), 1);
        // The explicit `return` is the last instruction: no implicit
        // trailing return is appended — falling off the end is the VM's
        // free completion path.
        assert!(matches!(f.code.last(), Some(Inst::Return { src: Some(_) })));
    }

    #[test]
    fn spin_loop_compiles_to_two_hot_instructions() {
        // while (get_n(b) != my_t) {} — the ticket-lock spin (Fig. 10).
        let m = compiled("void f(int b) { int my_t = 0; while (get_n(b) != my_t) {} }");
        let f = m.func(0);
        // Find the external call; the fused branch right after it must
        // jump (when the comparison holds) straight back to the call —
        // two retired instructions per spin iteration.
        let call_at = f
            .code
            .iter()
            .position(|i| matches!(i, Inst::Call { .. }))
            .expect("a call to get_n");
        match &f.code[call_at + 1] {
            Inst::CmpBranch { expect, target, .. } => {
                assert!(*expect, "spin continues while the comparison holds");
                assert_eq!(
                    *target, call_at as u32,
                    "back-edge threads through the loop jump to the call"
                );
            }
            other => panic!("expected fused branch after spin call, got {other:?}"),
        }
    }

    #[test]
    fn not_folds_into_branch_polarity() {
        let m = compiled("int f(int x) { if (!(x < 3)) { return 1; } return 0; }");
        let f = m.func(0);
        assert!(
            !f.code
                .iter()
                .any(|i| matches!(i, Inst::Unop { op: UnOp::Not, .. })),
            "no materialised `!` in branch position: {f}"
        );
        assert!(f.code.iter().any(|i| matches!(i, Inst::CmpBranch { .. })));
    }

    #[test]
    fn undeclared_variable_fails_compilation() {
        use crate::ast::{CFunction, Expr, Stmt};
        // The checker rejects this too; built directly to hit the
        // compiler's own guard.
        let f = CFunction {
            name: "f".into(),
            params: vec![],
            locals: vec![],
            body: Stmt::Return(Some(Expr::var("nope"))),
            returns_value: true,
        };
        let m = CModule::new().with_fn(f);
        let err = compile_module(&m).unwrap_err();
        assert!(err.message.contains("undeclared variable `nope`"));
    }

    #[test]
    fn break_outside_loop_fails_compilation() {
        use crate::ast::{CFunction, Stmt};
        let f = CFunction {
            name: "f".into(),
            params: vec![],
            locals: vec![],
            body: Stmt::Break,
            returns_value: false,
        };
        let m = CModule::new().with_fn(f);
        assert!(compile_module(&m).is_err());
    }

    #[test]
    fn internal_calls_resolve_to_indices() {
        let m = compiled("int g(int x) { return x + 1; } int f(int x) { int y = g(x); return y; }");
        // Functions sort by name: f = 0, g = 1.
        let f = m.func(m.fn_index("f").unwrap());
        assert!(f.code.iter().any(|i| matches!(
            i,
            Inst::Call {
                target: CallTarget::Internal(1),
                ..
            }
        )));
    }

    #[test]
    fn duplicate_locals_share_slots() {
        use crate::ast::{CFunction, Expr, Ident, Stmt};
        let x = Ident::from("x");
        let f = CFunction {
            name: "f".into(),
            params: vec![x.clone()],
            locals: vec![x.clone()],
            body: Stmt::Return(Some(Expr::Var(x))),
            returns_value: true,
        };
        let m = CModule::new().with_fn(f);
        let cm = compile_module(&m).unwrap();
        let cf = cm.func(0);
        assert_eq!(cf.param_slots, vec![0]);
        assert_eq!(cf.local_slots, vec![0], "local shadows the parameter");
    }
}
