//! The ClightX interpreter, as a resumable layer computation.
//!
//! [`CRun`] executes a lowered ClightX function over an ambient layer
//! interface. Pure statements are the silent transitions of §3.1; calls
//! to layer primitives suspend at the primitives' query points, which
//! bubble up through [`PrimRun::resume`] — so C-level module code
//! interleaves with other participants exactly where the machine model
//! says it can, and nowhere else.
//!
//! The interpreter is the *reference tier*: [`module_from_lowered`] also
//! compiles each module to flat bytecode ([`crate::compile`]) and, when
//! [`ccal_core::prefix::bytecode_effective`] says so, instantiates the
//! [`crate::vm::VmRun`] VM instead. Both tiers share the value semantics
//! in this module ([`truthy`], [`apply_unop`], [`apply_binop`]) so their
//! verdicts, logs, and error strings are bit-identical.

use std::collections::BTreeMap;
use std::sync::Arc;

use ccal_core::layer::{PrimCtx, PrimRun, PrimStep, SubCall};
use ccal_core::machine::MachineError;
use ccal_core::module::{Lang, Module};
use ccal_core::val::Val;

use crate::ast::{BinOp, CFunction, CModule, Expr, Ident, Stmt, UnOp};
use crate::lower::{lower_module, stmt_is_lowered};

/// Step budget per run, guarding against loops without query points.
/// Shared by both execution tiers ([`CRun`] and [`crate::vm::VmRun`]).
pub(crate) const STEP_BUDGET: u64 = 1_000_000;

/// Coerces a condition value to a boolean, C-style.
pub(crate) fn truthy(v: &Val) -> Result<bool, MachineError> {
    match v {
        Val::Int(i) => Ok(*i != 0),
        Val::Bool(b) => Ok(*b),
        other => Err(MachineError::Stuck(format!(
            "condition evaluated to non-integer value {other}"
        ))),
    }
}

/// Applies a unary operator. Shared by the interpreter and the VM so both
/// tiers agree on results and error strings.
pub(crate) fn apply_unop(op: UnOp, v: &Val) -> Result<Val, MachineError> {
    match op {
        UnOp::Not => Ok(Val::Int(i64::from(!truthy(v)?))),
        UnOp::Neg => Ok(Val::Int(v.as_int()?.wrapping_neg())),
    }
}

/// Applies a (lowered, non-logical) binary operator. The evaluation-order
/// contract both tiers rely on: `Eq`/`Ne` compare structurally without
/// coercion; everything else coerces the left value, then the right, then
/// checks for division by zero.
pub(crate) fn apply_binop(op: BinOp, va: &Val, vb: &Val) -> Result<Val, MachineError> {
    match op {
        BinOp::Eq => Ok(Val::Int(i64::from(va == vb))),
        BinOp::Ne => Ok(Val::Int(i64::from(va != vb))),
        _ => {
            let x = va.as_int()?;
            let y = vb.as_int()?;
            let r = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        return Err(MachineError::Stuck("division by zero".into()));
                    }
                    x.wrapping_div(y)
                }
                BinOp::Rem => {
                    if y == 0 {
                        return Err(MachineError::Stuck("remainder by zero".into()));
                    }
                    x.wrapping_rem(y)
                }
                BinOp::Lt => i64::from(x < y),
                BinOp::Le => i64::from(x <= y),
                BinOp::Gt => i64::from(x > y),
                BinOp::Ge => i64::from(x >= y),
                BinOp::Eq | BinOp::Ne => unreachable!("handled above"),
                BinOp::And | BinOp::Or => {
                    return Err(MachineError::Stuck(
                        "short-circuit operator in lowered code".into(),
                    ));
                }
            };
            Ok(Val::Int(r))
        }
    }
}

fn eval(e: &Expr, locals: &BTreeMap<Ident, Val>) -> Result<Val, MachineError> {
    match e {
        Expr::Int(i) => Ok(Val::Int(*i)),
        Expr::LocConst(l) => Ok(Val::Loc(*l)),
        Expr::Var(x) => locals
            .get(x)
            .cloned()
            .ok_or_else(|| MachineError::Stuck(format!("use of undeclared variable `{x}`"))),
        Expr::Unop(op, a) => apply_unop(*op, &eval(a, locals)?),
        Expr::Binop(op, a, b) => {
            let va = eval(a, locals)?;
            let vb = eval(b, locals)?;
            apply_binop(*op, &va, &vb)
        }
        Expr::Call(name, _) => Err(MachineError::Stuck(format!(
            "call to `{name}` inside an expression: code was not lowered"
        ))),
    }
}

/// A loop body, exploded once into its statement sequence so every
/// iteration re-arms with reference-count bumps instead of a deep clone
/// of the body tree.
type LoopBody = Arc<[Arc<Stmt>]>;

fn explode_shared(body: &Stmt) -> LoopBody {
    match body {
        Stmt::Block(v) => v.iter().map(|s| Arc::new(s.clone())).collect(),
        s => std::iter::once(Arc::new(s.clone())).collect(),
    }
}

#[derive(Debug, Clone)]
enum WItem {
    /// A statement to execute. `Arc`-shared so loop iterations and block
    /// expansions push pointers, not tree clones.
    Stmt(Arc<Stmt>),
    /// Marker for an active loop; popped by `break`, re-armed on normal
    /// fall-through.
    Loop(LoopBody),
}

#[derive(Debug, Clone)]
struct CFrame {
    func: Arc<CFunction>,
    locals: BTreeMap<Ident, Val>,
    work: Vec<WItem>,
    /// Where the *caller* stores this frame's return value.
    ret_dst: Option<Ident>,
}

impl CFrame {
    fn new(
        func: Arc<CFunction>,
        args: &[Val],
        ret_dst: Option<Ident>,
    ) -> Result<Self, MachineError> {
        if args.len() != func.params.len() {
            return Err(MachineError::Stuck(format!(
                "{} expects {} arguments, got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let mut locals = BTreeMap::new();
        for (p, v) in func.params.iter().zip(args) {
            locals.insert(p.clone(), v.clone());
        }
        for l in &func.locals {
            locals.insert(l.clone(), Val::Undef);
        }
        let work = vec![WItem::Stmt(Arc::new(func.body.clone()))];
        Ok(Self {
            func,
            locals,
            work,
            ret_dst,
        })
    }
}

/// A resumable run of one ClightX function (plus nested activations).
pub struct CRun {
    module: Arc<CModule>,
    frames: Vec<CFrame>,
    pending: Option<(SubCall, Option<Ident>)>,
    budget: u64,
    /// Budget at the last [`PrimRun::resume`] return, for batched
    /// intra-primitive step accounting
    /// ([`ccal_core::prefix::record_prim_steps`]).
    reported: u64,
    init_error: Option<MachineError>,
    result: Option<Val>,
}

impl CRun {
    /// Starts a run of `func` (from the lowered `module`) with arguments.
    ///
    /// # Panics
    ///
    /// Panics if the function body is not in lowered form — construct runs
    /// through [`clightx_module`] or lower explicitly first.
    pub fn new(module: Arc<CModule>, func: Arc<CFunction>, args: Vec<Val>) -> Self {
        assert!(
            stmt_is_lowered(&func.body),
            "CRun requires lowered code; lower `{}` first",
            func.name
        );
        let (frames, init_error) = match CFrame::new(func, &args, None) {
            Ok(f) => (vec![f], None),
            Err(e) => (Vec::new(), Some(e)),
        };
        Self {
            module,
            frames,
            pending: None,
            budget: STEP_BUDGET,
            reported: STEP_BUDGET,
            init_error,
            result: None,
        }
    }

    /// Pops the current frame delivering `ret`; returns the final result
    /// if that was the outermost frame.
    fn pop_frame(&mut self, ret: Val) -> Option<Val> {
        let frame = self.frames.pop().expect("active frame");
        match self.frames.last_mut() {
            Some(caller) => {
                if let Some(dst) = frame.ret_dst {
                    caller.locals.insert(dst, ret);
                }
                None
            }
            None => Some(ret),
        }
    }

    fn do_break(&mut self) -> Result<(), MachineError> {
        let frame = self.frames.last_mut().expect("active frame");
        loop {
            match frame.work.pop() {
                Some(WItem::Loop(_)) => return Ok(()),
                Some(WItem::Stmt(_)) => {}
                None => {
                    return Err(MachineError::Stuck(format!(
                        "{}: break outside of a loop",
                        frame.func.name
                    )));
                }
            }
        }
    }

    fn resume_inner(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        if let Some(e) = self.init_error.take() {
            return Err(e);
        }
        if let Some(v) = &self.result {
            return Ok(PrimStep::Done(v.clone()));
        }
        loop {
            if let Some((sub, dst)) = self.pending.as_mut() {
                match sub.step(ctx)? {
                    None => return Ok(PrimStep::Query),
                    Some(v) => {
                        if let Some(dst) = dst.take() {
                            self.frames
                                .last_mut()
                                .expect("active frame")
                                .locals
                                .insert(dst, v);
                        }
                        self.pending = None;
                    }
                }
            }
            if self.budget == 0 {
                return Err(MachineError::OutOfFuel {
                    budget: STEP_BUDGET,
                });
            }
            self.budget -= 1;
            let frame = self.frames.last_mut().expect("active frame");
            let item = match frame.work.pop() {
                Some(item) => item,
                None => {
                    // Fell off the function body: implicit void return.
                    if let Some(v) = self.pop_frame(Val::Unit) {
                        self.result = Some(v.clone());
                        return Ok(PrimStep::Done(v));
                    }
                    continue;
                }
            };
            match item {
                WItem::Loop(body) => {
                    // Re-arm the loop and run its body again — pointer
                    // pushes only.
                    frame.work.push(WItem::Loop(body.clone()));
                    for s in body.iter().rev() {
                        frame.work.push(WItem::Stmt(s.clone()));
                    }
                }
                WItem::Stmt(rc) => match &*rc {
                    Stmt::Skip => {}
                    Stmt::Assign(x, e) => {
                        let v = eval(e, &frame.locals)?;
                        if !frame.locals.contains_key(x) {
                            return Err(MachineError::Stuck(format!(
                                "assignment to undeclared variable `{x}`"
                            )));
                        }
                        frame.locals.insert(x.clone(), v);
                    }
                    Stmt::Block(stmts) => {
                        for s in stmts.iter().rev() {
                            frame.work.push(WItem::Stmt(Arc::new(s.clone())));
                        }
                    }
                    Stmt::If(c, t, e) => {
                        let branch = if truthy(&eval(c, &frame.locals)?)? {
                            t
                        } else {
                            e
                        };
                        frame.work.push(WItem::Stmt(Arc::new((**branch).clone())));
                    }
                    Stmt::Loop(body) => {
                        let body = explode_shared(body);
                        frame.work.push(WItem::Loop(body.clone()));
                        for s in body.iter().rev() {
                            frame.work.push(WItem::Stmt(s.clone()));
                        }
                    }
                    Stmt::While(..) => {
                        return Err(MachineError::Stuck(
                            "while in lowered code (lowering bug)".into(),
                        ));
                    }
                    Stmt::Break => self.do_break()?,
                    Stmt::Return(e) => {
                        let v = match e {
                            Some(e) => eval(e, &frame.locals)?,
                            None => Val::Unit,
                        };
                        // Unwind this frame entirely.
                        frame.work.clear();
                        if let Some(v) = self.pop_frame(v) {
                            self.result = Some(v.clone());
                            return Ok(PrimStep::Done(v));
                        }
                    }
                    Stmt::Call(dst, name, args) => {
                        let mut vals = Vec::with_capacity(args.len());
                        for a in args {
                            vals.push(eval(a, &frame.locals)?);
                        }
                        if let Some(callee) = self.module.get(name).cloned() {
                            self.frames.push(CFrame::new(callee, &vals, dst.clone())?);
                        } else {
                            self.pending = Some((SubCall::start(ctx, name, vals)?, dst.clone()));
                        }
                    }
                },
            }
        }
    }
}

impl PrimRun for CRun {
    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        let r = self.resume_inner(ctx);
        let spent = self.reported - self.budget;
        if spent > 0 {
            ccal_core::prefix::record_prim_steps(spent);
            self.reported = self.budget;
        }
        r
    }

    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        let pending = match &self.pending {
            Some((sub, dst)) => Some((sub.fork()?, dst.clone())),
            None => None,
        };
        Some(Box::new(CRun {
            module: self.module.clone(),
            frames: self.frames.clone(),
            pending,
            budget: self.budget,
            reported: self.reported,
            init_error: self.init_error.clone(),
            result: self.result.clone(),
        }))
    }

    fn state_fp(&self, h: &mut ccal_core::fingerprint::ContentHasher) -> bool {
        h.section("run.c");
        h.usize("c.nframes", self.frames.len());
        for fr in &self.frames {
            h.str("frame.func", &fr.func.name);
            h.usize("frame.nlocals", fr.locals.len());
            // `BTreeMap` iterates in sorted ident order, so two frames
            // with equal bindings hash equal regardless of insertion
            // history.
            for (x, v) in &fr.locals {
                h.str("frame.local", &x.to_string());
                h.val("frame.local.val", v);
            }
            // The continuation: remaining work items, outermost last. A
            // statement hashes by its canonical structural rendering (the
            // `Arc`s are sharing, not identity); a loop marker hashes its
            // re-armed body the same way.
            h.usize("frame.nwork", fr.work.len());
            for item in &fr.work {
                match item {
                    WItem::Stmt(s) => h.str("work.stmt", &format!("{s:?}")),
                    WItem::Loop(body) => {
                        h.usize("work.loop", body.len());
                        for s in body.iter() {
                            h.str("loop.stmt", &format!("{s:?}"));
                        }
                    }
                }
            }
            match &fr.ret_dst {
                Some(d) => h.str("frame.ret_dst", &d.to_string()),
                None => h.bool("frame.ret_dst", false),
            }
        }
        match &self.pending {
            Some((sub, dst)) => {
                match dst {
                    Some(d) => h.str("pending.dst", &d.to_string()),
                    None => h.bool("pending.dst", false),
                }
                if !sub.state_fp(h) {
                    return false;
                }
            }
            None => h.bool("pending", false),
        }
        h.u64("c.budget", self.budget);
        // `reported` is pure step-accounting bookkeeping: it never changes
        // how the run resumes, so it stays out of the fingerprint.
        match &self.init_error {
            Some(e) => h.str("c.init_error", &format!("{e:?}")),
            None => h.bool("c.init_error", false),
        }
        match &self.result {
            Some(v) => h.val("c.result", v),
            None => h.bool("c.result", false),
        }
        true
    }
}

impl std::fmt::Debug for CRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CRun")
            .field("frames", &self.frames.len())
            .field("pending", &self.pending.is_some())
            .finish()
    }
}

/// Parses, lowers and statically checks ClightX source, returning a core
/// [`Module`] whose functions run interpretively over their underlay —
/// the C side of "layered concurrent programming in both C and assembly"
/// (§1).
///
/// # Errors
///
/// [`crate::CError`] on parse or static-check failure.
///
/// # Examples
///
/// ```
/// use ccal_clightx::clightx_module;
///
/// let m = clightx_module("M-add", "int add(int a, int b) { return a + b; }")?;
/// assert!(m.contains("add"));
/// # Ok::<(), ccal_clightx::CError>(())
/// ```
pub fn clightx_module(name: &str, src: &str) -> Result<Module, crate::CError> {
    let surface = crate::parser::parse_module(src)?;
    let lowered = lower_module(&surface);
    crate::check::check_module(&lowered)?;
    Ok(module_from_lowered(name, &lowered))
}

/// Wraps an already-lowered [`CModule`] as a core [`Module`].
///
/// The module is compiled to flat bytecode once, whole-module-or-nothing
/// ([`crate::compile::compile_module`]); each instantiation then picks the
/// execution tier via [`ccal_core::prefix::bytecode_effective`]. Modules
/// the compiler rejects (undeclared variables, stray `break`s — code the
/// static checker would refuse anyway) always run on the interpreter, so
/// their runtime error strings are unchanged.
pub fn module_from_lowered(name: &str, lowered: &CModule) -> Module {
    let shared_module = Arc::new(lowered.clone());
    let compiled = crate::compile::compile_module(lowered).ok().map(Arc::new);
    let mut m = Module::new(name);
    for f in lowered.iter() {
        let func = f.clone();
        let module = shared_module.clone();
        let vm_target = compiled
            .as_ref()
            .and_then(|cm| cm.fn_index(&f.name).map(|fid| (cm.clone(), fid)));
        let spec =
            ccal_core::layer::PrimSpec::strategy(
                &f.name,
                true,
                move |_pid, args| match &vm_target {
                    Some((cm, fid)) if ccal_core::prefix::bytecode_effective() => {
                        Box::new(crate::vm::VmRun::new(cm.clone(), *fid, args))
                    }
                    _ => Box::new(CRun::new(module.clone(), func.clone(), args)),
                },
            );
        m = m.with_fn(Lang::C, spec);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::env::EnvContext;
    use ccal_core::event::EventKind;
    use ccal_core::id::Pid;
    use ccal_core::layer::{LayerInterface, PrimSpec};
    use ccal_core::machine::LayerMachine;
    use ccal_core::strategy::RoundRobinScheduler;

    fn run(src: &str, name: &str, args: &[Val]) -> Result<Val, MachineError> {
        run_over(LayerInterface::builder("L").build(), src, name, args)
    }

    fn run_over(
        iface: LayerInterface,
        src: &str,
        name: &str,
        args: &[Val],
    ) -> Result<Val, MachineError> {
        let m = clightx_module("M", src).expect("valid source");
        let extended = m.install(&iface).unwrap();
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)));
        let mut machine = LayerMachine::new(extended, Pid(0), env);
        machine.call_prim(name, args)
    }

    #[test]
    fn computes_arithmetic() {
        assert_eq!(
            run("int f(int x) { return x * 3 - 1; }", "f", &[Val::Int(4)]).unwrap(),
            Val::Int(11)
        );
    }

    #[test]
    fn loops_and_breaks() {
        let src = r#"
            int sum_to(int n) {
                int acc = 0;
                int i = 1;
                while (i <= n) { acc = acc + i; i = i + 1; }
                return acc;
            }
        "#;
        assert_eq!(run(src, "sum_to", &[Val::Int(10)]).unwrap(), Val::Int(55));
    }

    #[test]
    fn internal_function_calls() {
        let src = r#"
            int double(int x) { return x + x; }
            int quad(int x) { int d = double(x); return double(d); }
        "#;
        assert_eq!(run(src, "quad", &[Val::Int(3)]).unwrap(), Val::Int(12));
    }

    #[test]
    fn recursion_works() {
        let src = "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }";
        assert_eq!(run(src, "fact", &[Val::Int(6)]).unwrap(), Val::Int(720));
    }

    #[test]
    fn calls_layer_primitives_and_generates_events() {
        let iface = LayerInterface::builder("L")
            .prim(PrimSpec::atomic("tick", |ctx, _| {
                ctx.emit(EventKind::Prim("tick".into(), vec![]));
                let n = ctx
                    .log
                    .iter()
                    .filter(|e| matches!(&e.kind, EventKind::Prim(p, _) if p == "tick"))
                    .count();
                Ok(Val::Int(n as i64))
            }))
            .build();
        let src = "int f() { int a = tick(); int b = tick(); return a + b; }";
        assert_eq!(run_over(iface, src, "f", &[]).unwrap(), Val::Int(3));
    }

    #[test]
    fn short_circuit_does_not_call_rhs() {
        let iface = LayerInterface::builder("L")
            .prim(PrimSpec::atomic("boom", |_, _| {
                Err(MachineError::Stuck("boom called".into()))
            }))
            .build();
        let src = "int f() { return 0 && boom(); }";
        assert_eq!(run_over(iface, src, "f", &[]).unwrap(), Val::Int(0));
    }

    #[test]
    fn division_by_zero_is_stuck() {
        assert!(matches!(
            run("int f(int x) { return 1 / x; }", "f", &[Val::Int(0)]),
            Err(MachineError::Stuck(_))
        ));
    }

    #[test]
    fn void_functions_return_unit() {
        assert_eq!(run("void f() { }", "f", &[]).unwrap(), Val::Unit);
        assert_eq!(run("void f() { return; }", "f", &[]).unwrap(), Val::Unit);
    }

    #[test]
    fn infinite_pure_loop_exhausts_budget() {
        let src = "void f() { while (1) {} }";
        assert!(matches!(
            run(src, "f", &[]),
            Err(MachineError::OutOfFuel { .. })
        ));
    }

    #[test]
    fn loc_literals_flow_to_prims() {
        let iface = LayerInterface::builder("L")
            .prim(PrimSpec::atomic("takes_loc", |_, args| {
                Ok(Val::Int(i64::from(args[0].as_loc()?.0)))
            }))
            .build();
        assert_eq!(
            run_over(iface, "int f() { return takes_loc(#9); }", "f", &[]).unwrap(),
            Val::Int(9)
        );
    }

    #[test]
    fn interpreter_tier_matches_results_when_forced() {
        // The same sources with the bytecode tier forced off must produce
        // the same values (the full differential matrix lives in the
        // `bytecode_differential` integration suite).
        let _off = ccal_core::prefix::BytecodeOverride::force(false);
        assert_eq!(
            run("int f(int x) { return x * 3 - 1; }", "f", &[Val::Int(4)]).unwrap(),
            Val::Int(11)
        );
        let src = "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }";
        assert_eq!(run(src, "fact", &[Val::Int(6)]).unwrap(), Val::Int(720));
    }
}
