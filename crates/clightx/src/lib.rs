//! # ccal-clightx — the C-like layered source language
//!
//! ClightX is the C side of CCAL's "layered concurrent programming in both
//! C and assembly" (§1): module implementations such as the ticket lock's
//! `acq`/`rel` (Figs. 3, 10) and the queuing lock (Fig. 11) are written in
//! a small C subset, interpreted directly over a layer interface for
//! source-level verification, and compiled to layered assembly by
//! `ccal-compcertx`.
//!
//! Pipeline: [`parser`] (surface syntax) → [`lower`] (call hoisting,
//! short-circuit and loop desugaring) → [`check`] (static well-formedness)
//! → execution. Execution has two bit-identical tiers: the tree-walking
//! interpreter [`interp`] and the compiled tier ([`compile`] slot-resolves
//! to [`bytecode`], run by the [`vm`]), selected per instantiation via
//! `ccal_core::prefix::bytecode_effective` (`CCAL_BYTECODE=0` forces the
//! interpreter).
//!
//! The one-call entry point is [`clightx_module`], which yields a core
//! `Module` ready for `install`/`check_fun`:
//!
//! ```
//! use ccal_clightx::clightx_module;
//!
//! let m = clightx_module(
//!     "M1",
//!     r#"
//!     void acq(int b) {
//!         int my_t = fai_t(b);
//!         while (get_n(b) != my_t) {}
//!         hold(b);
//!     }
//!     void rel(int b) { inc_n(b); }
//!     "#,
//! )?;
//! assert_eq!(m.fn_names(), vec!["acq", "rel"]);
//! # Ok::<(), ccal_clightx::CError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod bytecode;
pub mod check;
pub mod compile;
pub mod interp;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod vm;

pub use ast::{BinOp, CFunction, CModule, Expr, Ident, Stmt, UnOp};
pub use bytecode::{CompiledFn, CompiledModule};
pub use check::{check_function, check_module, CheckError};
pub use compile::{compile_module, CompileError};
pub use interp::{clightx_module, module_from_lowered, CRun};
pub use lower::{lower_function, lower_module};
pub use parser::{parse_module, ParseError};
pub use pretty::{print_function, print_module};
pub use vm::VmRun;

/// A front-end error: parse failure or static-check failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CError {
    /// The source failed to parse.
    Parse(ParseError),
    /// The module failed static checking.
    Check(Vec<CheckError>),
}

impl std::fmt::Display for CError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CError::Parse(e) => write!(f, "{e}"),
            CError::Check(es) => {
                writeln!(f, "{} static error(s):", es.len())?;
                for e in es {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CError {}

impl From<ParseError> for CError {
    fn from(e: ParseError) -> Self {
        CError::Parse(e)
    }
}

impl From<Vec<CheckError>> for CError {
    fn from(es: Vec<CheckError>) -> Self {
        CError::Check(es)
    }
}
