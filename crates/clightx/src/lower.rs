//! Lowering from surface ClightX to the executable core form.
//!
//! Three rewrites, all standard C front-end fare:
//!
//! 1. **Call hoisting** — calls may appear anywhere in surface
//!    expressions (`while (get_n(b) != my_t) {}`, Fig. 10); the lowered
//!    form allows calls only as statement right-hand sides, so nested
//!    calls are hoisted into fresh temporaries `$tN`. This fixes the
//!    evaluation order and makes every call a potential query point the
//!    interpreter and compiler can suspend at.
//! 2. **Short-circuit desugaring** — `&&`/`||` become nested `if`s over a
//!    temporary, preserving C's evaluation order (the right operand — and
//!    any calls in it — is only evaluated when needed).
//! 3. **Loop normalization** — `while (c) { .. }` becomes
//!    `loop { <hoisted c>; if (!c') break; .. }`, so the condition's calls
//!    re-execute on every iteration.

use crate::ast::{BinOp, CFunction, CModule, Expr, Ident, Stmt, UnOp};

struct Lowerer {
    counter: u32,
    temps: Vec<Ident>,
}

impl Lowerer {
    fn fresh(&mut self) -> Ident {
        let name = Ident::from(format!("$t{}", self.counter));
        self.counter += 1;
        self.temps.push(name.clone());
        name
    }

    /// Lowers an expression, appending prelude statements to `out`;
    /// the returned expression is call-free and logic-free.
    fn expr(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Expr {
        match e {
            Expr::Int(_) | Expr::LocConst(_) | Expr::Var(_) => e.clone(),
            Expr::Unop(op, a) => {
                let a = self.expr(a, out);
                Expr::Unop(*op, Box::new(a))
            }
            Expr::Binop(BinOp::And, a, b) => self.short_circuit(a, b, true, out),
            Expr::Binop(BinOp::Or, a, b) => self.short_circuit(a, b, false, out),
            Expr::Binop(op, a, b) => {
                let a = self.expr(a, out);
                let b = self.expr(b, out);
                Expr::Binop(*op, Box::new(a), Box::new(b))
            }
            Expr::Call(name, args) => {
                let args: Vec<Expr> = args.iter().map(|a| self.expr(a, out)).collect();
                let t = self.fresh();
                out.push(Stmt::Call(Some(t.clone()), name.clone(), args));
                Expr::Var(t)
            }
        }
    }

    /// `a && b` (is_and) or `a || b`: a temporary plus nested `if`s, with
    /// `b`'s prelude confined to the branch where `b` is evaluated.
    fn short_circuit(&mut self, a: &Expr, b: &Expr, is_and: bool, out: &mut Vec<Stmt>) -> Expr {
        let t = self.fresh();
        let a = self.expr(a, out);
        let mut b_prelude = Vec::new();
        let b = self.expr(b, &mut b_prelude);
        // Branch that evaluates b: t = (b != 0).
        let mut eval_b = b_prelude;
        eval_b.push(Stmt::Assign(
            t.clone(),
            Expr::Binop(BinOp::Ne, Box::new(b), Box::new(Expr::Int(0))),
        ));
        let eval_b = Stmt::Block(eval_b);
        let (then_branch, else_branch) = if is_and {
            // a && b: if (a) { eval b } else { t = 0 }
            (eval_b, Stmt::Assign(t.clone(), Expr::Int(0)))
        } else {
            // a || b: if (a) { t = 1 } else { eval b }
            (Stmt::Assign(t.clone(), Expr::Int(1)), eval_b)
        };
        out.push(Stmt::If(a, Box::new(then_branch), Box::new(else_branch)));
        Expr::Var(t)
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<Stmt>) {
        match s {
            Stmt::Skip => {}
            Stmt::Assign(x, e) => {
                let e = self.expr(e, out);
                out.push(Stmt::Assign(x.clone(), e));
            }
            Stmt::Call(dst, name, args) => {
                let args: Vec<Expr> = args.iter().map(|a| self.expr(a, out)).collect();
                out.push(Stmt::Call(dst.clone(), name.clone(), args));
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s, out);
                }
            }
            Stmt::If(cond, then_branch, else_branch) => {
                let cond = self.expr(cond, out);
                let mut t = Vec::new();
                self.stmt(then_branch, &mut t);
                let mut e = Vec::new();
                self.stmt(else_branch, &mut e);
                out.push(Stmt::If(
                    cond,
                    Box::new(Stmt::Block(t)),
                    Box::new(Stmt::Block(e)),
                ));
            }
            Stmt::While(cond, body) => {
                // loop { <cond prelude>; if (!cond') break; <body> }
                let mut inner = Vec::new();
                let cond = self.expr(cond, &mut inner);
                // `while (1)` (and any nonzero constant) needs no break
                // check — this also makes printing a `Loop` as
                // `while (1)` a lowering fixed point.
                let trivially_true = matches!(cond, Expr::Int(i) if i != 0);
                if !trivially_true {
                    inner.push(Stmt::If(
                        Expr::Unop(UnOp::Not, Box::new(cond)),
                        Box::new(Stmt::Break),
                        Box::new(Stmt::Skip),
                    ));
                }
                self.stmt(body, &mut inner);
                out.push(Stmt::Loop(Box::new(Stmt::Block(inner))));
            }
            Stmt::Loop(body) => {
                let mut inner = Vec::new();
                self.stmt(body, &mut inner);
                out.push(Stmt::Loop(Box::new(Stmt::Block(inner))));
            }
            Stmt::Break => out.push(Stmt::Break),
            Stmt::Return(None) => out.push(Stmt::Return(None)),
            Stmt::Return(Some(e)) => {
                let e = self.expr(e, out);
                out.push(Stmt::Return(Some(e)));
            }
        }
    }
}

/// Lowers one function: hoists calls, desugars short-circuit logic and
/// `while` loops, and appends the generated temporaries to the locals.
pub fn lower_function(f: &CFunction) -> CFunction {
    let mut lw = Lowerer {
        counter: 0,
        temps: Vec::new(),
    };
    let mut body = Vec::new();
    lw.stmt(&f.body, &mut body);
    let mut locals = f.locals.clone();
    locals.extend(lw.temps);
    CFunction {
        name: f.name.clone(),
        params: f.params.clone(),
        locals,
        body: Stmt::Block(body),
        returns_value: f.returns_value,
    }
}

/// Lowers every function of a module.
pub fn lower_module(m: &CModule) -> CModule {
    let mut out = CModule::new();
    for f in m.iter() {
        out = out.with_fn(lower_function(f));
    }
    out
}

/// Whether an expression is in lowered form (no calls, no `&&`/`||`).
pub fn expr_is_lowered(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::LocConst(_) | Expr::Var(_) => true,
        Expr::Unop(_, a) => expr_is_lowered(a),
        Expr::Binop(op, a, b) => !op.is_logical() && expr_is_lowered(a) && expr_is_lowered(b),
        Expr::Call(..) => false,
    }
}

/// Whether a statement tree is in lowered form (no `while`, all
/// expressions lowered).
pub fn stmt_is_lowered(s: &Stmt) -> bool {
    match s {
        Stmt::Skip | Stmt::Break | Stmt::Return(None) => true,
        Stmt::Assign(_, e) | Stmt::Return(Some(e)) => expr_is_lowered(e),
        Stmt::Call(_, _, args) => args.iter().all(expr_is_lowered),
        Stmt::Block(v) => v.iter().all(stmt_is_lowered),
        Stmt::If(c, t, e) => expr_is_lowered(c) && stmt_is_lowered(t) && stmt_is_lowered(e),
        Stmt::While(..) => false,
        Stmt::Loop(b) => stmt_is_lowered(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn lowered(src: &str) -> CModule {
        lower_module(&parse_module(src).unwrap())
    }

    #[test]
    fn lowering_produces_lowered_form() {
        let m = lowered(
            r#"
            void acq(int b) {
                int my_t;
                my_t = fai_t(b);
                while (get_n(b) != my_t) {}
                hold(b);
            }
            int both(int x) { return f(x) && g(x); }
            "#,
        );
        for f in m.iter() {
            assert!(stmt_is_lowered(&f.body), "{} not lowered", f.name);
        }
    }

    #[test]
    fn while_condition_calls_reexecute_each_iteration() {
        let m = lowered("void f(int b) { while (get_n(b) != 0) {} }");
        let f = m.get("f").unwrap();
        // The loop body must contain the hoisted get_n call.
        fn find_loop(s: &Stmt) -> Option<&Stmt> {
            match s {
                Stmt::Loop(b) => Some(b),
                Stmt::Block(v) => v.iter().find_map(find_loop),
                _ => None,
            }
        }
        let body = find_loop(&f.body).expect("a loop");
        let Stmt::Block(v) = body else { panic!() };
        assert!(
            matches!(&v[0], Stmt::Call(Some(_), name, _) if name == "get_n"),
            "loop begins by re-calling get_n, got {:?}",
            v[0]
        );
    }

    #[test]
    fn temps_are_added_to_locals() {
        let m = lowered("int f(int x) { return g(x) + h(x); }");
        let f = m.get("f").unwrap();
        assert!(f.locals.iter().any(|l| l.starts_with("$t")));
        assert!(f.locals.len() >= 2, "two hoisted calls");
    }

    #[test]
    fn short_circuit_confines_rhs_calls() {
        let m = lowered("int f(int x) { return x != 0 && g(x); }");
        let f = m.get("f").unwrap();
        // g must only be called inside an if-branch, not unconditionally.
        fn top_level_calls(s: &Stmt, acc: &mut Vec<Ident>) {
            match s {
                Stmt::Call(_, name, _) => acc.push(name.clone()),
                Stmt::Block(v) => v.iter().for_each(|s| top_level_calls(s, acc)),
                _ => {}
            }
        }
        let mut calls = Vec::new();
        top_level_calls(&f.body, &mut calls);
        assert!(
            !calls.iter().any(|c| c == "g"),
            "g hoisted to top level: short-circuit broken"
        );
    }

    #[test]
    fn lowering_is_idempotent_on_lowered_code() {
        let m1 = lowered("int f(int x) { int y = g(x); return y + 1; }");
        let m2 = lower_module(&m1);
        let f1 = m1.get("f").unwrap();
        let f2 = m2.get("f").unwrap();
        assert_eq!(f1.body, f2.body);
    }
}
