//! A recursive-descent parser for ClightX surface syntax.
//!
//! The concrete syntax is the C subset the paper's figures are written in
//! (Figs. 3, 10, 11), e.g.:
//!
//! ```c
//! void acq(int b) {
//!     int my_t;
//!     my_t = fai_t(b);
//!     while (get_n(b) != my_t) {}
//!     hold(b);
//! }
//! ```
//!
//! Extensions: `#N` is a location literal (a shared-object handle), and
//! declarations may carry initializers. Types are `int` and `void`; since
//! ClightX values are dynamically checked, `int` doubles as the handle
//! type (as `uint` does in the paper's pseudocode).

use std::collections::HashSet;
use std::fmt;

use ccal_core::id::Loc;

use crate::ast::{BinOp, CFunction, CModule, Expr, Ident, Stmt, UnOp};

/// A parse error with (1-based) line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    LocLit(u32),
    Punct(&'static str),
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::LocLit(l) => write!(f, "location `#{l}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

const PUNCTS: [&str; 22] = [
    "==", "!=", "<=", ">=", "&&", "||", "(", ")", "{", "}", ",", ";", "=", "<", ">", "+", "-", "*",
    "/", "%", "!", "#",
];

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let c = match self.peek() {
            None => return Ok((Tok::Eof, line, col)),
            Some(c) => c,
        };
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.bump();
            }
            let word = std::str::from_utf8(&self.src[start..self.pos])
                .expect("ascii identifier")
                .to_owned();
            return Ok((Tok::Ident(word), line, col));
        }
        if c.is_ascii_digit() {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
            let value: i64 = text
                .parse()
                .map_err(|_| self.error(format!("integer literal `{text}` out of range")))?;
            return Ok((Tok::Int(value), line, col));
        }
        if c == b'#' {
            self.bump();
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
            if start == self.pos {
                return Err(self.error("expected digits after `#` location literal"));
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
            let value: u32 = text
                .parse()
                .map_err(|_| self.error(format!("location literal `#{text}` out of range")))?;
            return Ok((Tok::LocLit(value), line, col));
        }
        for p in PUNCTS {
            if p.len() == 2 && self.src[self.pos..].starts_with(p.as_bytes()) {
                self.bump();
                self.bump();
                return Ok((Tok::Punct(p), line, col));
            }
        }
        for p in PUNCTS {
            if p.len() == 1 && self.src[self.pos..].starts_with(p.as_bytes()) {
                self.bump();
                return Ok((Tok::Punct(p), line, col));
            }
        }
        Err(self.error(format!("unexpected character `{}`", c as char)))
    }
}

struct Parser {
    toks: Vec<(Tok, usize, usize)>,
    idx: usize,
    /// Locals of the function currently being parsed (declarations are
    /// allowed in any statement position, with C-style function scope).
    locals: Vec<Ident>,
    /// Identifiers interned so far: every occurrence of a name in the
    /// module shares one allocation.
    interned: HashSet<Ident>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.idx].0
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        let (_, line, col) = self.toks[self.idx];
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn advance(&mut self) -> Tok {
        let t = self.toks[self.idx].0.clone();
        if self.idx + 1 < self.toks.len() {
            self.idx += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        if self.peek() == &Tok::Punct(p) {
            self.advance();
            Ok(())
        } else {
            Err(self.error_here(format!("expected `{p}`, found {}", self.peek())))
        }
    }

    fn try_punct(&mut self, p: &'static str) -> bool {
        if self.peek() == &Tok::Punct(p) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn intern(&mut self, s: &str) -> Ident {
        if let Some(i) = self.interned.get(s) {
            return i.clone();
        }
        let i = Ident::from(s);
        self.interned.insert(i.clone());
        i
    }

    fn ident(&mut self) -> Result<Ident, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.advance();
                Ok(self.intern(&s))
            }
            other => Err(self.error_here(format!("expected identifier, found {other}"))),
        }
    }

    fn is_type_keyword(word: &str) -> bool {
        matches!(word, "int" | "void" | "uint")
    }

    fn module(&mut self) -> Result<CModule, ParseError> {
        let mut module = CModule::new();
        while self.peek() != &Tok::Eof {
            module = module.with_fn(self.fundef()?);
        }
        Ok(module)
    }

    fn fundef(&mut self) -> Result<CFunction, ParseError> {
        let ty = self.ident()?;
        if !Self::is_type_keyword(&ty) {
            return Err(self.error_here(format!("expected return type, found `{ty}`")));
        }
        let returns_value = ty != "void";
        let name = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.try_punct(")") {
            loop {
                let pty = self.ident()?;
                if !Self::is_type_keyword(&pty) {
                    return Err(self.error_here(format!("expected parameter type, found `{pty}`")));
                }
                params.push(self.ident()?);
                if !self.try_punct(",") {
                    break;
                }
            }
            self.eat_punct(")")?;
        }
        self.eat_punct("{")?;
        self.locals.clear();
        let mut stmts = Vec::new();
        while !self.try_punct("}") {
            let s = self.stmt()?;
            if s != Stmt::Skip {
                stmts.push(s);
            }
        }
        Ok(CFunction {
            name: name.to_string(),
            params,
            locals: std::mem::take(&mut self.locals),
            body: Stmt::Block(stmts),
            returns_value,
        })
    }

    fn finish_assign(&mut self, var: Ident, rhs: Expr) -> Result<Stmt, ParseError> {
        self.eat_punct(";")?;
        Ok(match rhs {
            Expr::Call(name, args) => Stmt::Call(Some(var), name, args),
            e => Stmt::Assign(var, e),
        })
    }

    fn block(&mut self) -> Result<Stmt, ParseError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.try_punct("}") {
            let s = self.stmt()?;
            if s != Stmt::Skip {
                stmts.push(s);
            }
        }
        Ok(Stmt::Block(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Punct("{") => self.block(),
            Tok::Punct(";") => {
                self.advance();
                Ok(Stmt::Skip)
            }
            Tok::Ident(word) => match word.as_str() {
                "if" => {
                    self.advance();
                    self.eat_punct("(")?;
                    let cond = self.expr()?;
                    self.eat_punct(")")?;
                    let then_branch = self.block()?;
                    let else_branch = if matches!(self.peek(), Tok::Ident(w) if w == "else") {
                        self.advance();
                        if matches!(self.peek(), Tok::Ident(w) if w == "if") {
                            self.stmt()?
                        } else {
                            self.block()?
                        }
                    } else {
                        Stmt::Skip
                    };
                    Ok(Stmt::If(cond, Box::new(then_branch), Box::new(else_branch)))
                }
                "while" => {
                    self.advance();
                    self.eat_punct("(")?;
                    let cond = self.expr()?;
                    self.eat_punct(")")?;
                    let body = self.block()?;
                    Ok(Stmt::While(cond, Box::new(body)))
                }
                "return" => {
                    self.advance();
                    if self.try_punct(";") {
                        Ok(Stmt::Return(None))
                    } else {
                        let e = self.expr()?;
                        self.eat_punct(";")?;
                        Ok(Stmt::Return(Some(e)))
                    }
                }
                "break" => {
                    self.advance();
                    self.eat_punct(";")?;
                    Ok(Stmt::Break)
                }
                _ if Self::is_type_keyword(&word) => {
                    // Declaration (allowed anywhere; function scope).
                    self.advance();
                    let var = self.ident()?;
                    self.locals.push(var.clone());
                    if self.try_punct("=") {
                        let init = self.expr()?;
                        self.finish_assign(var, init)
                    } else {
                        self.eat_punct(";")?;
                        Ok(Stmt::Skip)
                    }
                }
                _ => {
                    // Assignment or expression-statement call.
                    let name = self.ident()?;
                    if self.try_punct("=") {
                        let rhs = self.expr()?;
                        self.finish_assign(name, rhs)
                    } else if self.peek() == &Tok::Punct("(") {
                        let args = self.call_args()?;
                        self.eat_punct(";")?;
                        Ok(Stmt::Call(None, name, args))
                    } else {
                        Err(self.error_here(format!(
                            "expected `=` or `(` after `{name}`, found {}",
                            self.peek()
                        )))
                    }
                }
            },
            other => Err(self.error_here(format!("expected statement, found {other}"))),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.eat_punct("(")?;
        let mut args = Vec::new();
        if self.try_punct(")") {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if !self.try_punct(",") {
                break;
            }
        }
        self.eat_punct(")")?;
        Ok(args)
    }

    // Precedence climbing: || < && < comparisons < additive < multiplicative < unary.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.try_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binop(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.try_punct("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binop(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("==") => BinOp::Eq,
                Tok::Punct("!=") => BinOp::Ne,
                Tok::Punct("<") => BinOp::Lt,
                Tok::Punct("<=") => BinOp::Le,
                Tok::Punct(">") => BinOp::Gt,
                Tok::Punct(">=") => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let rhs = self.add_expr()?;
            lhs = Expr::Binop(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binop(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Rem,
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binop(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.try_punct("!") {
            return Ok(Expr::Unop(UnOp::Not, Box::new(self.unary_expr()?)));
        }
        if self.try_punct("-") {
            return Ok(Expr::Unop(UnOp::Neg, Box::new(self.unary_expr()?)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.advance();
                Ok(Expr::Int(i))
            }
            Tok::LocLit(l) => {
                self.advance();
                Ok(Expr::LocConst(Loc(l)))
            }
            Tok::Punct("(") => {
                self.advance();
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.advance();
                let name = self.intern(&name);
                if self.peek() == &Tok::Punct("(") {
                    let args = self.call_args()?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.error_here(format!("expected expression, found {other}"))),
        }
    }
}

/// Parses a ClightX module from source text.
///
/// # Errors
///
/// [`ParseError`] with source position on malformed input.
///
/// # Examples
///
/// ```
/// let m = ccal_clightx::parser::parse_module(
///     "int add(int a, int b) { return a + b; }",
/// )?;
/// assert_eq!(m.fn_names(), vec!["add"]);
/// # Ok::<(), ccal_clightx::parser::ParseError>(())
/// ```
pub fn parse_module(src: &str) -> Result<CModule, ParseError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    loop {
        let t = lexer.next_token()?;
        let eof = t.0 == Tok::Eof;
        toks.push(t);
        if eof {
            break;
        }
    }
    let mut parser = Parser {
        toks,
        idx: 0,
        locals: Vec::new(),
        interned: HashSet::new(),
    };
    let module = parser.module()?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig3_style_function() {
        let src = r#"
            // The ticket-lock acquire of Fig. 3 / Fig. 10.
            void acq(int b) {
                int my_t;
                my_t = fai_t(b);
                while (get_n(b) != my_t) {}
                hold(b);
            }
        "#;
        let m = parse_module(src).unwrap();
        let f = m.get("acq").unwrap();
        assert_eq!(f.params, vec!["b"]);
        assert_eq!(f.locals, vec!["my_t"]);
        assert!(!f.returns_value);
    }

    #[test]
    fn parses_declarations_with_initializers() {
        let m = parse_module("int f() { int x = 3; int y = x + 1; return y; }").unwrap();
        let f = m.get("f").unwrap();
        assert_eq!(f.locals, vec!["x", "y"]);
    }

    #[test]
    fn parses_if_else_chains_and_logic() {
        let src = r#"
            int sign(int x) {
                if (x > 0) { return 1; }
                else if (x == 0 || x == -0) { return 0; }
                else { return -1; }
            }
        "#;
        let m = parse_module(src).unwrap();
        assert!(m.get("sign").is_some());
    }

    #[test]
    fn parses_loc_literals_and_comments() {
        let src = "/* lock handle */ void f() { acq(#7); }";
        let m = parse_module(src).unwrap();
        let f = m.get("f").unwrap();
        assert!(matches!(
            &f.body,
            Stmt::Block(v) if matches!(&v[0], Stmt::Call(None, name, args)
                if name == "acq" && args == &vec![Expr::LocConst(Loc(7))])
        ));
    }

    #[test]
    fn precedence_is_c_like() {
        let m = parse_module("int f() { return 1 + 2 * 3 == 7; }").unwrap();
        let f = m.get("f").unwrap();
        let Stmt::Block(v) = &f.body else { panic!() };
        let Stmt::Return(Some(e)) = &v[0] else {
            panic!()
        };
        assert_eq!(e.to_string(), "((1 + (2 * 3)) == 7)");
    }

    #[test]
    fn reports_position_on_error() {
        let err = parse_module("void f() { x ; }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected `=` or `(`"));
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(parse_module("/* oops").is_err());
    }

    #[test]
    fn parses_multiple_functions() {
        let m = parse_module("void f() {} void g() { f(); }").unwrap();
        assert_eq!(m.fn_names(), vec!["f", "g"]);
    }
}
