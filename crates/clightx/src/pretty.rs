//! Pretty-printing ClightX back to concrete syntax.
//!
//! Used for diagnostics (showing the lowered form of a module), for
//! golden tests, and to round-trip through the parser — a conventional
//! front-end hygiene check: `parse ∘ print ∘ parse = parse`.

use std::fmt::Write as _;

use crate::ast::{CFunction, CModule, Expr, Stmt};

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Expr::LocConst(l) => {
            let _ = write!(out, "#{}", l.0);
        }
        Expr::Var(x) => out.push_str(x),
        Expr::Unop(op, a) => {
            let _ = write!(out, "{op}(");
            print_expr(a, out);
            out.push(')');
        }
        Expr::Binop(op, a, b) => {
            out.push('(');
            print_expr(a, out);
            let _ = write!(out, " {op} ");
            print_expr(b, out);
            out.push(')');
        }
        Expr::Call(name, args) => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(a, out);
            }
            out.push(')');
        }
    }
}

fn print_stmt(s: &Stmt, out: &mut String, depth: usize) {
    match s {
        Stmt::Skip => {
            indent(out, depth);
            out.push_str(";\n");
        }
        Stmt::Assign(x, e) => {
            indent(out, depth);
            let _ = write!(out, "{x} = ");
            print_expr(e, out);
            out.push_str(";\n");
        }
        Stmt::Call(dst, name, args) => {
            indent(out, depth);
            if let Some(dst) = dst {
                let _ = write!(out, "{dst} = ");
            }
            print_expr(&Expr::Call(name.clone(), args.clone()), out);
            out.push_str(";\n");
        }
        Stmt::Block(v) => {
            for s in v {
                print_stmt(s, out, depth);
            }
        }
        Stmt::If(c, t, e) => {
            indent(out, depth);
            out.push_str("if (");
            print_expr(c, out);
            out.push_str(") {\n");
            print_stmt(t, out, depth + 1);
            indent(out, depth);
            if matches!(**e, Stmt::Skip) || matches!(&**e, Stmt::Block(v) if v.is_empty()) {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                print_stmt(e, out, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::While(c, b) => {
            indent(out, depth);
            out.push_str("while (");
            print_expr(c, out);
            out.push_str(") {\n");
            print_stmt(b, out, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Loop(b) => {
            // Surface syntax has no `loop`; print the canonical image
            // `while (1) { .. }`.
            indent(out, depth);
            out.push_str("while (1) {\n");
            print_stmt(b, out, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Break => {
            indent(out, depth);
            out.push_str("break;\n");
        }
        Stmt::Return(None) => {
            indent(out, depth);
            out.push_str("return;\n");
        }
        Stmt::Return(Some(e)) => {
            indent(out, depth);
            out.push_str("return ");
            print_expr(e, out);
            out.push_str(";\n");
        }
    }
}

/// Renders one function in concrete syntax. Compiler temporaries (`$tN`)
/// are renamed to parseable identifiers (`__tN`).
pub fn print_function(f: &CFunction) -> String {
    let mut out = String::new();
    let ty = if f.returns_value { "int" } else { "void" };
    let _ = write!(out, "{ty} {}(", f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "int {p}");
    }
    out.push_str(") {\n");
    for l in &f.locals {
        indent(&mut out, 1);
        let _ = writeln!(out, "int {l};");
    }
    print_stmt(&f.body, &mut out, 1);
    out.push_str("}\n");
    out.replace('$', "__")
}

/// Renders a whole module.
pub fn print_module(m: &CModule) -> String {
    let mut out = String::new();
    for f in m.iter() {
        out.push_str(&print_function(f));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_module;
    use crate::parser::parse_module;

    const SRC: &str = r#"
        int gcd(int a, int b) {
            while (b != 0) {
                int t = a % b;
                a = b;
                b = t;
            }
            return a;
        }
        void caller(int x) {
            int g = gcd(x, 12);
            if (g > 1 && x > 0) { f(g); } else { f(0); }
        }
    "#;

    #[test]
    fn printed_surface_module_reparses_to_the_same_ast() {
        let m1 = parse_module(SRC).unwrap();
        let printed = print_module(&m1);
        let m2 = parse_module(&printed).unwrap_or_else(|e| panic!("reparse: {e}\n{printed}"));
        for f in m1.iter() {
            let g = m2.get(&f.name).expect("function survives");
            assert_eq!(f.params, g.params);
            assert_eq!(f.body, g.body, "bodies differ for {}", f.name);
        }
    }

    #[test]
    fn printed_lowered_module_reparses_and_is_stable() {
        // parse ∘ print is the identity on printed lowered code (the
        // fixed-point property golden tests rely on).
        let lowered = lower_module(&parse_module(SRC).unwrap());
        let printed = print_module(&lowered);
        let reparsed = parse_module(&printed).unwrap();
        let printed_again = print_module(&lower_module(&reparsed));
        // `while (1)` in the print re-lowers to the same loop; printing
        // must be a fixed point after one round.
        let third = print_module(&lower_module(&parse_module(&printed_again).unwrap()));
        assert_eq!(printed_again, third);
    }

    #[test]
    fn lowered_ticket_lock_prints_readably() {
        let src = "void acq(int b) { int t = fai_t(b); while (get_n(b) != t) {} hold(b); }";
        let lowered = lower_module(&parse_module(src).unwrap());
        let printed = print_module(&lowered);
        assert!(printed.contains("while (1) {"), "{printed}");
        assert!(printed.contains("break;"), "{printed}");
        assert!(printed.contains("__t"), "temps renamed: {printed}");
    }
}
