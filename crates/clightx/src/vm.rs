//! The bytecode VM: the compiled execution tier for ClightX primitives.
//!
//! [`VmRun`] drives [`crate::bytecode`] code produced by
//! [`crate::compile::compile_module`]. Its state is deliberately compact —
//! a stack of `(pc, regs)` frames over `Arc`-shared code — so
//! [`PrimRun::fork_run`] (the workhorse of the prefix-sharing and
//! snapshot-trie machinery in `ccal_core::prefix`) copies a few flat
//! register vectors instead of a tree-walking work stack.
//!
//! Semantics are shared with the interpreter ([`crate::interp`]): the
//! same value helpers, the same step budget, the same external-call
//! suspension through [`SubCall`] — so verdicts, logs, and error strings
//! are bit-identical between tiers, and only the step *count* differs
//! (which is precisely what the B6 experiment measures via
//! [`ccal_core::prefix::record_prim_steps`]).

use std::sync::Arc;

use ccal_core::layer::{PrimCtx, PrimRun, PrimStep, SubCall};
use ccal_core::machine::MachineError;
use ccal_core::val::Val;

use crate::bytecode::{CallTarget, CompiledFn, CompiledModule, Inst, Operand};
use crate::interp::{apply_binop, apply_unop, truthy, STEP_BUDGET};

#[derive(Debug, Clone)]
struct VmFrame {
    func: Arc<CompiledFn>,
    pc: u32,
    regs: Box<[Val]>,
    /// The *caller's* slot receiving this frame's return value.
    ret_dst: Option<u16>,
}

impl VmFrame {
    fn new(
        func: Arc<CompiledFn>,
        args: &[Val],
        ret_dst: Option<u16>,
    ) -> Result<Self, MachineError> {
        if args.len() != func.arity() {
            return Err(MachineError::Stuck(format!(
                "{} expects {} arguments, got {}",
                func.name,
                func.arity(),
                args.len()
            )));
        }
        let mut regs = vec![Val::Undef; func.nslots as usize].into_boxed_slice();
        // Parameter binding then local re-initialisation, in declaration
        // order — replicating the interpreter's map-insertion semantics
        // for duplicate and shadowing names.
        for (slot, v) in func.param_slots.iter().zip(args) {
            regs[*slot as usize] = v.clone();
        }
        for slot in &func.local_slots {
            regs[*slot as usize] = Val::Undef;
        }
        Ok(Self {
            func,
            pc: 0,
            regs,
            ret_dst,
        })
    }
}

fn read(regs: &[Val], o: &Operand) -> Val {
    match o {
        Operand::Const(v) => v.clone(),
        Operand::Slot(s) => regs[*s as usize].clone(),
    }
}

/// What a frame-crossing instruction asks the outer loop to do.
enum Flow {
    Next,
    Call {
        dst: Option<u16>,
        target: CallTarget,
        vals: Vec<Val>,
    },
    Ret(Val),
}

/// A resumable bytecode run of one compiled function (plus nested
/// activations). The VM counterpart of [`crate::interp::CRun`].
pub struct VmRun {
    module: Arc<CompiledModule>,
    frames: Vec<VmFrame>,
    pending: Option<(SubCall, Option<u16>)>,
    budget: u64,
    /// Budget at the last [`PrimRun::resume`] return, for batched
    /// intra-primitive step accounting.
    reported: u64,
    init_error: Option<MachineError>,
    result: Option<Val>,
}

impl VmRun {
    /// Starts a run of function `fid` of `module` with arguments.
    pub fn new(module: Arc<CompiledModule>, fid: u32, args: Vec<Val>) -> Self {
        let func = module.func(fid).clone();
        let (frames, init_error) = match VmFrame::new(func, &args, None) {
            Ok(f) => (vec![f], None),
            Err(e) => (Vec::new(), Some(e)),
        };
        Self {
            module,
            frames,
            pending: None,
            budget: STEP_BUDGET,
            reported: STEP_BUDGET,
            init_error,
            result: None,
        }
    }

    /// Pops the current frame delivering `ret`; returns the final result
    /// if that was the outermost frame.
    fn pop_frame(&mut self, ret: Val) -> Option<Val> {
        let frame = self.frames.pop().expect("active frame");
        match self.frames.last_mut() {
            Some(caller) => {
                if let Some(dst) = frame.ret_dst {
                    caller.regs[dst as usize] = ret;
                }
                None
            }
            None => Some(ret),
        }
    }

    fn resume_inner(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        if let Some(e) = self.init_error.take() {
            return Err(e);
        }
        if let Some(v) = &self.result {
            return Ok(PrimStep::Done(v.clone()));
        }
        loop {
            if let Some((sub, dst)) = self.pending.as_mut() {
                match sub.step(ctx)? {
                    None => return Ok(PrimStep::Query),
                    Some(v) => {
                        if let Some(dst) = dst.take() {
                            self.frames.last_mut().expect("active frame").regs[dst as usize] = v;
                        }
                        self.pending = None;
                    }
                }
            }
            let flow = {
                let frame = self.frames.last_mut().expect("active frame");
                let VmFrame { func, pc, regs, .. } = frame;
                match func.code.get(*pc as usize) {
                    // Fell off the end: the frame completes with `Unit`,
                    // uncharged — the interpreter's drained work stack
                    // completes for free in exactly the same way.
                    None => Flow::Ret(Val::Unit),
                    Some(inst) => {
                        if self.budget == 0 {
                            return Err(MachineError::OutOfFuel {
                                budget: STEP_BUDGET,
                            });
                        }
                        self.budget -= 1;
                        *pc += 1;
                        match inst {
                            Inst::Mov { dst, src } => {
                                regs[*dst as usize] = read(regs, src);
                                Flow::Next
                            }
                            Inst::Unop { dst, op, src } => {
                                let v = apply_unop(*op, &read(regs, src))?;
                                regs[*dst as usize] = v;
                                Flow::Next
                            }
                            Inst::Binop { dst, op, a, b } => {
                                let va = read(regs, a);
                                let vb = read(regs, b);
                                regs[*dst as usize] = apply_binop(*op, &va, &vb)?;
                                Flow::Next
                            }
                            Inst::Jump { target } => {
                                *pc = *target;
                                Flow::Next
                            }
                            Inst::Branch {
                                cond,
                                expect,
                                target,
                            } => {
                                if truthy(&read(regs, cond))? == *expect {
                                    *pc = *target;
                                }
                                Flow::Next
                            }
                            Inst::CmpBranch {
                                op,
                                a,
                                b,
                                expect,
                                target,
                            } => {
                                let va = read(regs, a);
                                let vb = read(regs, b);
                                // Comparison results are always Int(0|1); truthy
                                // cannot fail here, apply_binop carries the
                                // coercion errors in interpreter order.
                                if truthy(&apply_binop(*op, &va, &vb)?)? == *expect {
                                    *pc = *target;
                                }
                                Flow::Next
                            }
                            Inst::Call { dst, target, args } => {
                                let vals: Vec<Val> = args.iter().map(|o| read(regs, o)).collect();
                                Flow::Call {
                                    dst: *dst,
                                    target: target.clone(),
                                    vals,
                                }
                            }
                            Inst::Return { src } => {
                                let v = match src {
                                    Some(o) => read(regs, o),
                                    None => Val::Unit,
                                };
                                Flow::Ret(v)
                            }
                        }
                    }
                }
            };
            match flow {
                Flow::Next => {}
                Flow::Call { dst, target, vals } => match target {
                    CallTarget::Internal(fid) => {
                        let callee = self.module.func(fid).clone();
                        self.frames.push(VmFrame::new(callee, &vals, dst)?);
                    }
                    CallTarget::External(name) => {
                        self.pending = Some((SubCall::start(ctx, &name, vals)?, dst));
                    }
                },
                Flow::Ret(v) => {
                    if let Some(out) = self.pop_frame(v) {
                        self.result = Some(out.clone());
                        return Ok(PrimStep::Done(out));
                    }
                }
            }
        }
    }
}

impl PrimRun for VmRun {
    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        let r = self.resume_inner(ctx);
        let spent = self.reported - self.budget;
        if spent > 0 {
            ccal_core::prefix::record_prim_steps(spent);
            self.reported = self.budget;
        }
        r
    }

    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        let pending = match &self.pending {
            Some((sub, dst)) => Some((sub.fork()?, *dst)),
            None => None,
        };
        Some(Box::new(VmRun {
            module: self.module.clone(),
            frames: self.frames.clone(),
            pending,
            budget: self.budget,
            reported: self.reported,
            init_error: self.init_error.clone(),
            result: self.result.clone(),
        }))
    }

    fn state_fp(&self, h: &mut ccal_core::fingerprint::ContentHasher) -> bool {
        h.section("run.vm");
        h.usize("vm.nframes", self.frames.len());
        for fr in &self.frames {
            h.str("frame.func", &fr.func.name);
            h.u64("frame.pc", u64::from(fr.pc));
            h.usize("frame.nregs", fr.regs.len());
            for (i, r) in fr.regs.iter().enumerate() {
                h.val(&format!("frame.reg[{i}]"), r);
            }
            match fr.ret_dst {
                Some(d) => h.u64("frame.ret_dst", u64::from(d)),
                None => h.bool("frame.ret_dst", false),
            }
        }
        match &self.pending {
            Some((sub, dst)) => {
                match dst {
                    Some(d) => h.u64("pending.dst", u64::from(*d)),
                    None => h.bool("pending.dst", false),
                }
                if !sub.state_fp(h) {
                    return false;
                }
            }
            None => h.bool("pending", false),
        }
        h.u64("vm.budget", self.budget);
        // `reported` is pure step-accounting bookkeeping: it never changes
        // how the run resumes, so it stays out of the fingerprint.
        match &self.init_error {
            Some(e) => h.str("vm.init_error", &format!("{e:?}")),
            None => h.bool("vm.init_error", false),
        }
        match &self.result {
            Some(v) => h.val("vm.result", v),
            None => h.bool("vm.result", false),
        }
        true
    }
}

impl std::fmt::Debug for VmRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VmRun")
            .field("frames", &self.frames.len())
            .field(
                "pc",
                &self.frames.last().map(|fr| (fr.func.name.clone(), fr.pc)),
            )
            .field("pending", &self.pending.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_module;
    use crate::lower::lower_module;
    use crate::parser::parse_module;
    use ccal_core::env::EnvContext;
    use ccal_core::id::Pid;
    use ccal_core::layer::LayerInterface;
    use ccal_core::machine::LayerMachine;
    use ccal_core::strategy::RoundRobinScheduler;

    fn run_vm(src: &str, name: &str, args: &[Val]) -> Result<Val, MachineError> {
        let lowered = lower_module(&parse_module(src).unwrap());
        let compiled = Arc::new(compile_module(&lowered).unwrap());
        let fid = compiled.fn_index(name).unwrap();
        let m = ccal_core::module::Module::new("M").with_fn(
            ccal_core::module::Lang::C,
            ccal_core::layer::PrimSpec::strategy(name, true, move |_pid, args| {
                Box::new(VmRun::new(compiled.clone(), fid, args))
            }),
        );
        let iface = LayerInterface::builder("L").build();
        let extended = m.install(&iface).unwrap();
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)));
        let mut machine = LayerMachine::new(extended, Pid(0), env);
        machine.call_prim(name, args)
    }

    #[test]
    fn computes_arithmetic() {
        assert_eq!(
            run_vm("int f(int x) { return x * 3 - 1; }", "f", &[Val::Int(4)]).unwrap(),
            Val::Int(11)
        );
    }

    #[test]
    fn loops_sum_like_the_interpreter() {
        let src = r#"
            int sum_to(int n) {
                int acc = 0;
                int i = 1;
                while (i <= n) { acc = acc + i; i = i + 1; }
                return acc;
            }
        "#;
        assert_eq!(
            run_vm(src, "sum_to", &[Val::Int(10)]).unwrap(),
            Val::Int(55)
        );
    }

    #[test]
    fn recursion_works() {
        let src = "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }";
        assert_eq!(run_vm(src, "fact", &[Val::Int(6)]).unwrap(), Val::Int(720));
    }

    #[test]
    fn division_by_zero_matches_interpreter_error() {
        let err = run_vm("int f(int x) { return 1 / x; }", "f", &[Val::Int(0)]).unwrap_err();
        assert!(err.to_string().contains("division by zero"));
    }

    #[test]
    fn infinite_pure_loop_exhausts_budget() {
        assert!(matches!(
            run_vm("void f() { while (1) {} }", "f", &[]),
            Err(MachineError::OutOfFuel { .. })
        ));
    }

    #[test]
    fn arity_mismatch_matches_interpreter_message() {
        let err = run_vm("int f(int x) { return x; }", "f", &[]).unwrap_err();
        assert!(err.to_string().contains("f expects 1 arguments, got 0"));
    }
}
