//! Differential testing of the two ClightX execution tiers.
//!
//! Random structured programs (generated as ASTs, not parsed — nested
//! control flow, bounded loops, layer-primitive calls) run through
//! parse-independent lowering, then through **both** tiers: the
//! tree-walking interpreter (`CRun`) and the compiled bytecode VM
//! (`VmRun`). Results must be bit-identical: same return value or same
//! error string, and the same emitted event log (primitive calls happen
//! at the same program points with the same arguments).

use std::sync::Arc;

use ccal_clightx::ast::{BinOp, CFunction, CModule, Expr, Stmt, UnOp};
use ccal_clightx::compile::compile_module;
use ccal_clightx::interp::CRun;
use ccal_clightx::lower::lower_module;
use ccal_clightx::vm::VmRun;
use ccal_core::env::EnvContext;
use ccal_core::event::EventKind;
use ccal_core::id::Pid;
use ccal_core::layer::{LayerInterface, PrimSpec};
use ccal_core::machine::{LayerMachine, MachineError};
use ccal_core::strategy::RoundRobinScheduler;
use ccal_core::val::Val;
use proptest::prelude::*;

const VARS: [&str; 3] = ["x", "a", "b"];

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-9_i64..9).prop_map(Expr::Int),
        (0_usize..VARS.len()).prop_map(|i| Expr::var(VARS[i])),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Rem),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                ]
            )
                .prop_map(|(a, b, op)| Expr::Binop(op, Box::new(a), Box::new(b))),
            inner
                .clone()
                .prop_map(|a| Expr::Unop(UnOp::Not, Box::new(a))),
            inner.prop_map(|a| Expr::Unop(UnOp::Neg, Box::new(a))),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        Just(Stmt::Skip),
        (0_usize..VARS.len(), arb_expr()).prop_map(|(i, e)| Stmt::Assign(VARS[i].into(), e)),
        // A layer-primitive call: a query point the machine suspends at,
        // in both tiers.
        (0_usize..VARS.len())
            .prop_map(|i| Stmt::Call(Some(VARS[i].into()), "tick".into(), vec![],)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (arb_expr(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Stmt::If(
                c,
                Box::new(t),
                Box::new(e)
            )),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Stmt::Block),
            // Bounded loop: while (a > 0) { a = a - 1; <body> }. Bodies
            // may reassign `a`, so a generated loop can diverge — both
            // tiers then exhaust their (identical) step budgets.
            inner.prop_map(|body| {
                Stmt::While(
                    Expr::Binop(BinOp::Gt, Box::new(Expr::var("a")), Box::new(Expr::Int(0))),
                    Box::new(Stmt::Block(vec![
                        Stmt::Assign(
                            "a".into(),
                            Expr::Binop(
                                BinOp::Sub,
                                Box::new(Expr::var("a")),
                                Box::new(Expr::Int(1)),
                            ),
                        ),
                        body,
                    ])),
                )
            }),
        ]
    })
}

fn tick_interface() -> LayerInterface {
    LayerInterface::builder("L")
        .prim(PrimSpec::atomic("tick", |ctx, _| {
            ctx.emit(EventKind::Prim("tick".into(), vec![]));
            let n = ctx
                .log
                .iter()
                .filter(|e| matches!(&e.kind, EventKind::Prim(p, _) if p == "tick"))
                .count();
            Ok(Val::Int(n as i64))
        }))
        .build()
}

/// Runs `f` of `module` on one tier; returns the outcome (value or error
/// string) plus the final log rendered to a string.
fn run_tier(module: &CModule, arg: i64, vm: bool) -> (Result<Val, String>, String) {
    let lowered = Arc::new(module.clone());
    let spec = if vm {
        let compiled = Arc::new(compile_module(module).expect("generated module compiles"));
        let fid = compiled.fn_index("f").expect("f exists");
        PrimSpec::strategy("f", true, move |_pid, args| {
            Box::new(VmRun::new(compiled.clone(), fid, args))
        })
    } else {
        let func = module.get("f").expect("f exists").clone();
        PrimSpec::strategy("f", true, move |_pid, args| {
            Box::new(CRun::new(lowered.clone(), func.clone(), args))
        })
    };
    let m = ccal_core::module::Module::new("M").with_fn(ccal_core::module::Lang::C, spec);
    let extended = m.install(&tick_interface()).unwrap();
    let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)));
    let mut machine = LayerMachine::new(extended, Pid(0), env);
    let res = machine
        .call_prim("f", &[Val::Int(arg)])
        .map_err(|e: MachineError| e.to_string());
    (res, format!("{}", machine.log))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vm_and_interpreter_agree(body in arb_stmt(), ret in arb_expr(), arg in -4_i64..5) {
        let f = CFunction {
            name: "f".into(),
            params: vec!["x".into()],
            locals: vec!["a".into(), "b".into()],
            body: Stmt::Block(vec![
                Stmt::Assign("a".into(), Expr::Int(5)),
                Stmt::Assign("b".into(), Expr::Int(0)),
                body,
                Stmt::Return(Some(ret)),
            ]),
            returns_value: true,
        };
        let module = lower_module(&CModule::new().with_fn(f));
        ccal_clightx::check::check_module(&module).expect("generated module is well-formed");
        let (interp_res, interp_log) = run_tier(&module, arg, false);
        let (vm_res, vm_log) = run_tier(&module, arg, true);
        prop_assert_eq!(&interp_res, &vm_res, "verdict diverged between tiers");
        prop_assert_eq!(&interp_log, &vm_log, "event log diverged between tiers");
    }
}

/// The tier toggle itself: `module_from_lowered` must dispatch to the VM
/// when the override says on and to the interpreter when off, with
/// identical observable behaviour either way.
#[test]
fn module_from_lowered_obeys_the_override() {
    let src = r#"
        int f(int x) {
            int acc = 0;
            while (x > 0) { acc = acc + tick(); x = x - 1; }
            return acc;
        }
    "#;
    let mut outcomes = Vec::new();
    for on in [true, false] {
        let _tier = ccal_core::prefix::BytecodeOverride::force(on);
        let m = ccal_clightx::clightx_module("M", src).unwrap();
        let extended = m.install(&tick_interface()).unwrap();
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)));
        let mut machine = LayerMachine::new(extended, Pid(0), env);
        let res = machine.call_prim("f", &[Val::Int(3)]).unwrap();
        outcomes.push((res, format!("{}", machine.log)));
    }
    assert_eq!(outcomes[0], outcomes[1], "tiers diverged");
    assert_eq!(outcomes[0].0, Val::Int(6), "1 + 2 + 3 ticks");
}
