//! The CompCertX code generator: lowered ClightX → layered assembly.
//!
//! "We have also developed a new thread-safe version of the CompCertX
//! compiler that can compile certified concurrent C layers into assembly
//! layers" (§1). The generator is a classic one-pass accumulator scheme:
//! expressions evaluate into `EAX` using the operand stack for
//! temporaries; locals live in frame slots; control flow compiles to
//! conditional jumps with backpatched targets. Calls follow the
//! register calling convention (`EAX`/`EBX`/`ECX`), compiling to
//! [`Instr::Call`] for same-module functions and [`Instr::PrimCall`] for
//! layer primitives.
//!
//! Where the Coq CompCertX carries a correctness proof, this one is paired
//! with *translation validation* ([`crate::validate`]): each compiled
//! function is simulation-checked against its source on the layer machine.

use std::collections::BTreeMap;
use std::fmt;

use ccal_clightx::ast::{BinOp, CFunction, CModule, Expr, Stmt, UnOp};
use ccal_clightx::lower::stmt_is_lowered;
use ccal_machine::asm::{AsmFunction, AsmModule, Cond, Instr, Operand, Reg};

/// A compilation error (source assumed parsed, lowered and checked; these
/// are the residual structural limits of the target).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A function has more parameters than the calling convention allows.
    TooManyParams {
        /// Offending function.
        func: String,
        /// Its parameter count.
        count: usize,
    },
    /// A call passes more arguments than the calling convention allows.
    TooManyArgs {
        /// The callee.
        callee: String,
        /// The argument count.
        count: usize,
    },
    /// The function body was not in lowered form.
    NotLowered {
        /// Offending function.
        func: String,
    },
    /// `break` outside a loop (should have been caught statically).
    BreakOutsideLoop {
        /// Offending function.
        func: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyParams { func, count } => {
                write!(f, "`{func}` has {count} parameters; the convention allows 3")
            }
            CompileError::TooManyArgs { callee, count } => {
                write!(f, "call to `{callee}` passes {count} arguments; the convention allows 3")
            }
            CompileError::NotLowered { func } => {
                write!(f, "`{func}` is not in lowered form")
            }
            CompileError::BreakOutsideLoop { func } => {
                write!(f, "`{func}` has a break outside any loop")
            }
        }
    }
}

impl std::error::Error for CompileError {}

struct FnCompiler<'a> {
    module: &'a CModule,
    func: &'a CFunction,
    slots: BTreeMap<&'a str, u32>,
    code: Vec<Instr>,
    /// Stack of loops: (start pc, indices of pending break jumps).
    loops: Vec<(usize, Vec<usize>)>,
}

impl<'a> FnCompiler<'a> {
    fn slot(&self, name: &str) -> u32 {
        *self
            .slots
            .get(name)
            .unwrap_or_else(|| panic!("unknown variable `{name}` survived static checks"))
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn cond_of(op: BinOp) -> Option<Cond> {
        match op {
            BinOp::Eq => Some(Cond::Eq),
            BinOp::Ne => Some(Cond::Ne),
            BinOp::Lt => Some(Cond::Lt),
            BinOp::Le => Some(Cond::Le),
            BinOp::Gt => Some(Cond::Gt),
            BinOp::Ge => Some(Cond::Ge),
            _ => None,
        }
    }

    /// Compiles `e` to leave its value in `EAX`.
    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Int(i) => {
                self.emit(Instr::Mov(Reg::EAX, Operand::Imm(*i)));
            }
            Expr::LocConst(l) => {
                self.emit(Instr::Mov(Reg::EAX, Operand::LocImm(*l)));
            }
            Expr::Var(x) => {
                let s = self.slot(x);
                self.emit(Instr::Mov(Reg::EAX, Operand::Slot(s)));
            }
            Expr::Unop(UnOp::Not, a) => {
                self.expr(a)?;
                self.emit(Instr::Cmp(Reg::EAX, Operand::Imm(0)));
                self.emit(Instr::Setcc(Cond::Eq, Reg::EAX));
            }
            Expr::Unop(UnOp::Neg, a) => {
                self.expr(a)?;
                self.emit(Instr::Mul(Reg::EAX, Operand::Imm(-1)));
            }
            Expr::Binop(op, a, b) => {
                self.expr(a)?;
                self.emit(Instr::Push(Reg::EAX));
                self.expr(b)?;
                self.emit(Instr::Mov(Reg::EBX, Operand::Reg(Reg::EAX)));
                self.emit(Instr::Pop(Reg::EAX));
                if let Some(cond) = Self::cond_of(*op) {
                    self.emit(Instr::Cmp(Reg::EAX, Operand::Reg(Reg::EBX)));
                    self.emit(Instr::Setcc(cond, Reg::EAX));
                } else {
                    let rhs = Operand::Reg(Reg::EBX);
                    let instr = match op {
                        BinOp::Add => Instr::Add(Reg::EAX, rhs),
                        BinOp::Sub => Instr::Sub(Reg::EAX, rhs),
                        BinOp::Mul => Instr::Mul(Reg::EAX, rhs),
                        BinOp::Div => Instr::Div(Reg::EAX, rhs),
                        BinOp::Rem => Instr::Rem(Reg::EAX, rhs),
                        _ => unreachable!("logical ops removed by lowering"),
                    };
                    self.emit(instr);
                }
            }
            Expr::Call(..) => unreachable!("calls hoisted by lowering"),
        }
        Ok(())
    }

    fn call(
        &mut self,
        dst: &Option<ccal_clightx::Ident>,
        name: &str,
        args: &[Expr],
    ) -> Result<(), CompileError> {
        if args.len() > 3 {
            return Err(CompileError::TooManyArgs {
                callee: name.to_owned(),
                count: args.len(),
            });
        }
        for a in args {
            self.expr(a)?;
            self.emit(Instr::Push(Reg::EAX));
        }
        for i in (0..args.len()).rev() {
            let reg = Reg::arg(i).expect("≤ 3 args");
            self.emit(Instr::Pop(reg));
        }
        if self.module.get(name).is_some() {
            self.emit(Instr::Call(name.to_owned()));
        } else {
            self.emit(Instr::PrimCall(name.to_owned(), args.len() as u8));
        }
        if let Some(dst) = dst {
            let s = self.slot(dst);
            self.emit(Instr::StoreSlot(s, Reg::EAX));
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Skip => {}
            Stmt::Assign(x, e) => {
                self.expr(e)?;
                let slot = self.slot(x);
                self.emit(Instr::StoreSlot(slot, Reg::EAX));
            }
            Stmt::Call(dst, name, args) => self.call(dst, name, args)?,
            Stmt::Block(v) => {
                for s in v {
                    self.stmt(s)?;
                }
            }
            Stmt::If(c, t, e) => {
                self.expr(c)?;
                self.emit(Instr::Cmp(Reg::EAX, Operand::Imm(0)));
                let jump_to_else = self.emit(Instr::Jcc(Cond::Eq, usize::MAX));
                self.stmt(t)?;
                let jump_to_end = self.emit(Instr::Jmp(usize::MAX));
                let else_pc = self.code.len();
                self.code[jump_to_else] = Instr::Jcc(Cond::Eq, else_pc);
                self.stmt(e)?;
                let end_pc = self.code.len();
                self.code[jump_to_end] = Instr::Jmp(end_pc);
            }
            Stmt::Loop(body) => {
                let start = self.code.len();
                self.loops.push((start, Vec::new()));
                self.stmt(body)?;
                self.emit(Instr::Jmp(start));
                let (_, breaks) = self.loops.pop().expect("loop stack balanced");
                let end = self.code.len();
                for b in breaks {
                    self.code[b] = Instr::Jmp(end);
                }
            }
            Stmt::Break => {
                let jump = self.emit(Instr::Jmp(usize::MAX));
                match self.loops.last_mut() {
                    Some((_, breaks)) => breaks.push(jump),
                    None => {
                        return Err(CompileError::BreakOutsideLoop {
                            func: self.func.name.clone(),
                        });
                    }
                }
            }
            Stmt::While(..) => {
                return Err(CompileError::NotLowered {
                    func: self.func.name.clone(),
                });
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => {
                        self.expr(e)?;
                        self.emit(Instr::Ret);
                    }
                    None => {
                        self.emit(Instr::RetVoid);
                    }
                };
            }
        }
        Ok(())
    }
}

/// Compiles one lowered ClightX function.
///
/// # Errors
///
/// [`CompileError`] on calling-convention or form violations.
pub fn compile_function(module: &CModule, func: &CFunction) -> Result<AsmFunction, CompileError> {
    if func.params.len() > 3 {
        return Err(CompileError::TooManyParams {
            func: func.name.clone(),
            count: func.params.len(),
        });
    }
    if !stmt_is_lowered(&func.body) {
        return Err(CompileError::NotLowered {
            func: func.name.clone(),
        });
    }
    let mut slots = BTreeMap::new();
    for (i, p) in func.params.iter().chain(func.locals.iter()).enumerate() {
        slots.insert(p.as_str(), i as u32);
    }
    let frame_slots = slots.len() as u32;
    let mut fc = FnCompiler {
        module,
        func,
        slots,
        code: Vec::new(),
        loops: Vec::new(),
    };
    // Prologue: spill register arguments into their frame slots.
    for (i, p) in func.params.iter().enumerate() {
        let reg = Reg::arg(i).expect("≤ 3 params");
        let slot = fc.slot(p);
        fc.emit(Instr::StoreSlot(slot, reg));
    }
    fc.stmt(&func.body)?;
    // Epilogue: implicit void return for fall-through paths.
    fc.emit(Instr::RetVoid);
    Ok(AsmFunction::new(
        &func.name,
        func.params.len() as u8,
        frame_slots,
        fc.code,
    ))
}

/// Compiles a whole lowered module.
///
/// # Errors
///
/// The first [`CompileError`] encountered.
pub fn compile_module(module: &CModule) -> Result<AsmModule, CompileError> {
    let mut out = AsmModule::new();
    for f in module.iter() {
        out = out.with_fn(compile_function(module, f)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_clightx::lower::lower_module;
    use ccal_clightx::parser::parse_module;
    use ccal_core::env::EnvContext;
    use ccal_core::id::Pid;
    use ccal_core::layer::LayerInterface;
    use ccal_core::machine::LayerMachine;
    use ccal_core::strategy::RoundRobinScheduler;
    use ccal_core::val::Val;
    use std::sync::Arc;

    fn compile_src(src: &str) -> AsmModule {
        let lowered = lower_module(&parse_module(src).unwrap());
        ccal_clightx::check::check_module(&lowered).unwrap();
        compile_module(&lowered).unwrap()
    }

    fn run_asm(asm: &AsmModule, name: &str, args: &[Val]) -> Val {
        let iface = LayerInterface::builder("L").build();
        let extended = asm.as_core_module("asm").install(&iface).unwrap();
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(1)));
        let mut m = LayerMachine::new(extended, Pid(0), env);
        m.call_prim(name, args).unwrap()
    }

    #[test]
    fn compiles_arithmetic() {
        let asm = compile_src("int f(int x, int y) { return (x + y) * 2 - x / y; }");
        assert_eq!(run_asm(&asm, "f", &[Val::Int(7), Val::Int(3)]), Val::Int(18));
    }

    #[test]
    fn compiles_conditionals() {
        let asm = compile_src("int max(int a, int b) { if (a > b) { return a; } return b; }");
        assert_eq!(run_asm(&asm, "max", &[Val::Int(4), Val::Int(9)]), Val::Int(9));
        assert_eq!(run_asm(&asm, "max", &[Val::Int(9), Val::Int(4)]), Val::Int(9));
    }

    #[test]
    fn compiles_loops_with_break() {
        let asm = compile_src(
            r#"
            int first_square_above(int n) {
                int i = 0;
                while (1) {
                    i = i + 1;
                    if (i * i > n) { break; }
                }
                return i;
            }
            "#,
        );
        assert_eq!(run_asm(&asm, "first_square_above", &[Val::Int(20)]), Val::Int(5));
    }

    #[test]
    fn compiles_internal_calls_and_recursion() {
        let asm = compile_src(
            r#"
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            "#,
        );
        assert_eq!(run_asm(&asm, "fib", &[Val::Int(10)]), Val::Int(55));
    }

    #[test]
    fn void_functions_compile_to_ret_void() {
        let asm = compile_src("void f() { }");
        assert_eq!(run_asm(&asm, "f", &[]), Val::Unit);
    }

    #[test]
    fn rejects_too_many_params() {
        let lowered = lower_module(
            &parse_module("int f(int a, int b, int c, int d) { return a; }").unwrap(),
        );
        assert!(matches!(
            compile_module(&lowered),
            Err(CompileError::TooManyParams { .. })
        ));
    }

    #[test]
    fn compiles_logical_operators_via_lowering() {
        let asm = compile_src("int f(int a, int b) { return a > 0 && b > 0; }");
        assert_eq!(run_asm(&asm, "f", &[Val::Int(1), Val::Int(1)]), Val::Int(1));
        assert_eq!(run_asm(&asm, "f", &[Val::Int(1), Val::Int(0)]), Val::Int(0));
        assert_eq!(run_asm(&asm, "f", &[Val::Int(0), Val::Int(5)]), Val::Int(0));
    }
}
