//! # ccal-compcertx — the thread-safe verified-compiler substitute
//!
//! The compilation side of CCAL (§5.5): "a new thread-safe version of the
//! CompCertX compiler that can compile certified concurrent C layers into
//! assembly layers", together with the "new extended algebraic memory
//! model ... whereby stack frames allocated for each thread are combined
//! to form a single coherent CompCert-style memory" (§1).
//!
//! * [`compile`] — the ClightX → layered-assembly code generator;
//! * [`validate`] — per-function translation validation over the layer
//!   machine (the executable substitute for the Coq correctness proof);
//! * [`memalg`] — the algebraic memory model `⊛` with the Fig. 12 axioms
//!   as property-checked theorems;
//! * [`link`] — thread-safe linking: placeholder-block stack-frame
//!   alignment and the N-thread composition check.

#![warn(missing_docs)]

pub mod compile;
pub mod link;
pub mod memalg;
pub mod validate;

pub use compile::{compile_function, compile_module, CompileError};
pub use link::{simulate_threaded_linking, LinkOutcome, ThreadTrace};
pub use memalg::{alloc, compose, compose_n, ld, liftnb, st};
pub use validate::{compcertx, compile_and_validate, CompiledModule, ValidateOptions};
