//! Thread-safe linking of stack frames (§5.5).
//!
//! "On top of the thread-local layer `Lhtd[c][t]`, a function called
//! within a thread will allocate its stack frame into the thread-private
//! memory state ... on top of the CPU-local layer `Lbtd[c]`, all stack
//! frames have to be allocated in the CPU-local memory regardless of which
//! thread they belong to; thus, in the thread composition proof, we need
//! to account for all such stack frames. Our solution ... extended the
//! semantics of `yield` and `sleep` \[to\] also allocate empty memory blocks
//! as 'placeholders' for other threads' new stack frames" (§5.5).
//!
//! [`simulate_threaded_linking`] executes both views of a frame-allocation
//! trace — the CPU-local memory where every frame allocates in global
//! order, and each thread's private memory where other threads' frames
//! appear as placeholders materialized at scheduling points — then checks
//! the algebraic composition `m1 ⊛ ... ⊛ mN ≃ m` and load agreement.

use std::collections::BTreeMap;

use ccal_core::calculus::{LayerError, Obligation, Rule};
use ccal_core::val::Val;
use ccal_machine::mem::{Addr, Block, Memory};

use crate::memalg::{compose_n, ld};

/// One scheduled slice of a thread's execution: how many stack frames it
/// allocates before yielding again (each frame is stamped with a
/// distinguishing value).
pub type ThreadTrace = Vec<usize>;

/// The result of a threaded-linking simulation.
#[derive(Debug, Clone)]
pub struct LinkOutcome {
    /// The CPU-local memory with every thread's frames.
    pub cpu_memory: Memory,
    /// Each thread's private memory (frames + placeholders).
    pub thread_memories: BTreeMap<u32, Memory>,
    /// The discharged `MultithreadLink` obligation.
    pub obligation: Obligation,
}

/// Runs the two views of the schedule and checks them against each other.
///
/// `schedule` is the interleaving: at each entry `(tid, frames)` the
/// scheduler runs thread `tid`, which allocates `frames` stack frames
/// (each of one slot, stamped with a unique value). When a thread resumes,
/// the extended `yield` semantics first allocates placeholders in its
/// private memory for every block other threads allocated in between —
/// keeping all block numbering aligned, exactly the construction of §5.5.
///
/// # Errors
///
/// [`LayerError::Mismatch`] if the composed thread memories do not equal
/// the CPU memory, or some load disagrees.
pub fn simulate_threaded_linking(
    schedule: &[(u32, usize)],
) -> Result<LinkOutcome, LayerError> {
    let mut cpu = Memory::new();
    let mut threads: BTreeMap<u32, Memory> = BTreeMap::new();
    for (tid, _) in schedule {
        threads.entry(*tid).or_default();
    }
    let mut stamp = 0_i64;
    for (tid, frames) in schedule {
        // Extended yield/sleep semantics: materialize placeholders for the
        // blocks allocated while this thread was away (liftnb to realign).
        let mine = threads.get_mut(tid).expect("thread registered");
        let gap = cpu.nb() - mine.nb();
        mine.liftnb(gap);
        for _ in 0..*frames {
            stamp += 1;
            let cb = cpu.alloc(1);
            cpu.store(Addr::new(cb, 0), Val::Int(stamp))
                .expect("fresh cpu frame");
            let tb = mine.alloc(1);
            mine.store(Addr::new(tb, 0), Val::Int(stamp))
                .expect("fresh thread frame");
            if cb != tb {
                return Err(LayerError::Mismatch {
                    expected: format!("aligned block ids (cpu {cb})"),
                    found: format!("thread block {tb}"),
                    context: format!("threaded linking, thread {tid}"),
                });
            }
        }
    }
    // Final realignment so every thread memory spans the full block range.
    for mem in threads.values_mut() {
        let gap = cpu.nb() - mem.nb();
        mem.liftnb(gap);
    }
    // The algebraic composition of the thread memories must reproduce the
    // CPU memory.
    let mems: Vec<Memory> = threads.values().cloned().collect();
    let composed = compose_n(&mems).ok_or_else(|| LayerError::Mismatch {
        expected: "disjointly-live thread memories (⊛ defined)".to_owned(),
        found: "overlapping live blocks".to_owned(),
        context: "threaded linking composition".to_owned(),
    })?;
    if composed != cpu {
        return Err(LayerError::Mismatch {
            expected: format!("composed = cpu memory ({} blocks)", cpu.nb()),
            found: format!("composed has {} blocks", composed.nb()),
            context: "threaded linking composition".to_owned(),
        });
    }
    // Load agreement (rule Ld transported to the N-ary case): every live
    // frame reads the same through its owner and through the CPU memory.
    let mut loads_checked = 0;
    for mem in threads.values() {
        for (b, block) in mem.iter() {
            if let Block::Live(data) = block {
                for off in 0..data.len() as u32 {
                    let addr = Addr::new(b, off);
                    let via_thread = ld(mem, addr).map_err(to_layer_err)?;
                    let via_cpu = ld(&cpu, addr).map_err(to_layer_err)?;
                    if via_thread != via_cpu {
                        return Err(LayerError::Mismatch {
                            expected: format!("{via_cpu} (CPU view)"),
                            found: format!("{via_thread} (thread view)"),
                            context: format!("threaded linking load at {addr}"),
                        });
                    }
                    loads_checked += 1;
                }
            }
        }
    }
    Ok(LinkOutcome {
        cpu_memory: cpu,
        thread_memories: threads,
        obligation: Obligation {
            rule: Rule::MultithreadLink,
            description: format!(
                "m1 ⊛ ... ⊛ mN ≃ m over a {}-slice schedule",
                schedule.len()
            ),
            cases_checked: loads_checked,
            cases_skipped: 0,
            cases_reduced: 0,
        },
    })
}

fn to_layer_err(e: ccal_machine::mem::MemError) -> LayerError {
    LayerError::Machine(ccal_core::machine::MachineError::Stuck(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_threads_interleaved() {
        let out =
            simulate_threaded_linking(&[(0, 2), (1, 1), (0, 1), (1, 3)]).expect("links cleanly");
        assert_eq!(out.cpu_memory.nb(), 7);
        assert_eq!(out.thread_memories.len(), 2);
        // Thread 0 owns blocks 0,1,3; thread 1 owns 2,4,5,6.
        let t0 = &out.thread_memories[&0];
        assert!(matches!(t0.block(0), Some(Block::Live(_))));
        assert!(t0.block(2).unwrap().is_empty_placeholder());
    }

    #[test]
    fn single_thread_degenerates_to_cpu_memory() {
        let out = simulate_threaded_linking(&[(0, 3)]).unwrap();
        assert_eq!(out.thread_memories[&0], out.cpu_memory);
    }

    #[test]
    fn empty_schedule_is_trivially_linked() {
        let out = simulate_threaded_linking(&[]).unwrap();
        assert_eq!(out.cpu_memory.nb(), 0);
        assert_eq!(out.obligation.rule, Rule::MultithreadLink);
    }

    proptest! {
        /// Any interleaving of up to 4 threads links: composition defined,
        /// equal to the CPU memory, all loads agree.
        #[test]
        fn linking_holds_for_arbitrary_schedules(
            schedule in proptest::collection::vec((0_u32..4, 0_usize..4), 0..12)
        ) {
            let out = simulate_threaded_linking(&schedule).expect("linking holds");
            let total: usize = schedule.iter().map(|(_, f)| f).sum();
            prop_assert_eq!(out.cpu_memory.nb() as usize, total);
        }
    }
}
