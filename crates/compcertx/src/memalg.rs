//! The algebraic memory model (Fig. 12).
//!
//! Thread-safe linking needs to account for stack frames: "we can prove
//! that a ternary relation `m1 ⊛ m2 ≃ m` holds between the private memory
//! states `m1, m2` of two disjoint thread sets and the thread-shared
//! memory state `m` after the parallel composition. This relation among
//! memory states is called the 'algebraic memory model', which is defined
//! by the axioms shown in Fig. 12" (§5.5).
//!
//! Here `⊛` is implemented as the executable [`compose`] (defined exactly
//! when no block is live on both sides), and every axiom of Fig. 12 —
//! `Nb`, `Comm`, `Ld`, `St`, `Alloc`, `Lift-R`, `Lift-L` — is a theorem
//! *checked* by the property tests in this module and regenerated as
//! experiment F12 by the benchmark harness.

use ccal_core::val::Val;
use ccal_machine::mem::{Addr, Block, MemError, Memory};

/// The parallel memory composition `m1 ⊛ m2` (§5.5): defined when every
/// block index is live in at most one operand (the other side holding an
/// empty placeholder or no block at all — "every non-shared memory block
/// of `m1` either does not exist in `m2` or corresponds to an empty block
/// in `m2`, and vice versa"). The result has `max(nb(m1), nb(m2))` blocks
/// (rule `Nb`), taking each live block from whichever side owns it.
pub fn compose(m1: &Memory, m2: &Memory) -> Option<Memory> {
    let nb = m1.nb().max(m2.nb());
    let mut out = Memory::new();
    for b in 0..nb {
        match (m1.block(b), m2.block(b)) {
            (Some(Block::Live(_)), Some(Block::Live(_))) => return None,
            (Some(Block::Live(data)), _) | (_, Some(Block::Live(data))) => {
                let id = out.alloc(data.len());
                for (off, v) in data.iter().enumerate() {
                    out.store(Addr::new(id, off as u32), v.clone())
                        .expect("freshly allocated block");
                }
            }
            _ => {
                out.liftnb(1);
            }
        }
    }
    Some(out)
}

/// N-ary composition, the generalization at the end of §5.5: `m` composes
/// `m1, ..., mN` iff there is an `m′` composing `m1, ..., m(N-1)` with
/// `mN ⊛ m′ ≃ m`. Returns `None` if any pairwise composition is undefined.
pub fn compose_n(mems: &[Memory]) -> Option<Memory> {
    let mut acc = Memory::new();
    for m in mems {
        acc = compose(m, &acc)?;
    }
    Some(acc)
}

/// `ld(m, ℓ)` of Fig. 12, as a convenience re-export of memory load.
///
/// # Errors
///
/// See [`Memory::load`].
pub fn ld(m: &Memory, addr: Addr) -> Result<Val, MemError> {
    m.load(addr)
}

/// `st(m, ℓ, v)` of Fig. 12: functional store (clones the memory).
///
/// # Errors
///
/// See [`Memory::store`].
pub fn st(m: &Memory, addr: Addr, v: Val) -> Result<Memory, MemError> {
    let mut out = m.clone();
    out.store(addr, v)?;
    Ok(out)
}

/// Functional `alloc`: returns the extended memory and the fresh block id.
pub fn alloc(m: &Memory, size: usize) -> (Memory, u32) {
    let mut out = m.clone();
    let b = out.alloc(size);
    (out, b)
}

/// Functional `liftnb(m, n)`.
pub fn liftnb(m: &Memory, n: u32) -> Memory {
    let mut out = m.clone();
    out.liftnb(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A generated compatible pair: a layout deciding, per block index,
    /// whether it is live in m1, live in m2, or a placeholder in both —
    /// plus independent tails.
    fn compatible_pair() -> impl Strategy<Value = (Memory, Memory)> {
        let cell = prop_oneof![Just(0_u8), Just(1), Just(2)];
        (
            proptest::collection::vec((cell, 1_usize..4, -8_i64..8), 0..8),
            0_u32..3,
            0_u32..3,
        )
            .prop_map(|(layout, tail1, tail2)| {
                let mut m1 = Memory::new();
                let mut m2 = Memory::new();
                for (side, size, seed) in layout {
                    match side {
                        1 => {
                            let b = m1.alloc(size);
                            m1.store(Addr::new(b, 0), Val::Int(seed)).unwrap();
                            m2.liftnb(1);
                        }
                        2 => {
                            let b = m2.alloc(size);
                            m2.store(Addr::new(b, 0), Val::Int(seed)).unwrap();
                            m1.liftnb(1);
                        }
                        _ => {
                            m1.liftnb(1);
                            m2.liftnb(1);
                        }
                    }
                }
                m1.liftnb(tail1);
                m2.liftnb(tail2);
                (m1, m2)
            })
    }

    proptest! {
        /// Rule Nb: nb(m) = max(nb(m1), nb(m2)).
        #[test]
        fn axiom_nb((m1, m2) in compatible_pair()) {
            let m = compose(&m1, &m2).expect("compatible by construction");
            prop_assert_eq!(m.nb(), m1.nb().max(m2.nb()));
        }

        /// Rule Comm: composition is commutative.
        #[test]
        fn axiom_comm((m1, m2) in compatible_pair()) {
            prop_assert_eq!(compose(&m1, &m2), compose(&m2, &m1));
        }

        /// Rule Ld: loads from m2 are preserved by the composition.
        #[test]
        fn axiom_ld((m1, m2) in compatible_pair()) {
            let m = compose(&m1, &m2).unwrap();
            for (b, block) in m2.iter() {
                if let Block::Live(data) = block {
                    for off in 0..data.len() as u32 {
                        let addr = Addr::new(b, off);
                        prop_assert_eq!(ld(&m2, addr).unwrap(), ld(&m, addr).unwrap());
                    }
                }
            }
        }

        /// Rule St: stores into m2 commute with composition.
        #[test]
        fn axiom_st((m1, m2) in compatible_pair()) {
            let m = compose(&m1, &m2).unwrap();
            for (b, block) in m2.iter() {
                if let Block::Live(data) = block {
                    if !data.is_empty() {
                        let addr = Addr::new(b, 0);
                        let lhs = compose(&m1, &st(&m2, addr, Val::Int(99)).unwrap()).unwrap();
                        let rhs = st(&m, addr, Val::Int(99)).unwrap();
                        prop_assert_eq!(lhs, rhs);
                    }
                }
            }
        }

        /// Rule Alloc: when nb(m1) ≤ nb(m2), allocation on m2 commutes
        /// with composition.
        #[test]
        fn axiom_alloc((m1, m2) in compatible_pair(), size in 1_usize..4) {
            prop_assume!(m1.nb() <= m2.nb());
            let m = compose(&m1, &m2).unwrap();
            let (m2a, b2) = alloc(&m2, size);
            let (ma, bm) = alloc(&m, size);
            prop_assert_eq!(b2, bm, "fresh block ids agree");
            prop_assert_eq!(compose(&m1, &m2a).unwrap(), ma);
        }

        /// Rule Lift-R: when nb(m1) ≤ nb(m2), lifting m2 commutes with
        /// composition.
        #[test]
        fn axiom_lift_r((m1, m2) in compatible_pair(), n in 0_u32..4) {
            prop_assume!(m1.nb() <= m2.nb());
            let m = compose(&m1, &m2).unwrap();
            prop_assert_eq!(compose(&m1, &liftnb(&m2, n)).unwrap(), liftnb(&m, n));
        }

        /// Rule Lift-L: when nb(m1) ≤ nb(m2), lifting m1 by n lifts the
        /// composition by n - (nb(m) - nb(m1)).
        #[test]
        fn axiom_lift_l((m1, m2) in compatible_pair(), extra in 0_u32..4) {
            prop_assume!(m1.nb() <= m2.nb());
            let m = compose(&m1, &m2).unwrap();
            // Ensure the rule's arithmetic is well-defined: n must cover
            // the gap nb(m) - nb(m1).
            let n = (m.nb() - m1.nb()) + extra;
            let lhs = compose(&liftnb(&m1, n), &m2).unwrap();
            let rhs = liftnb(&m, n - (m.nb() - m1.nb()));
            prop_assert_eq!(lhs, rhs);
        }

        /// N-ary composition agrees with iterated pairwise composition on
        /// disjointly-live families.
        #[test]
        fn compose_n_generalizes(layout in proptest::collection::vec(0_u8..3, 0..9)) {
            // Three thread memories, block i live in exactly thread layout[i].
            let mut mems = vec![Memory::new(), Memory::new(), Memory::new()];
            for (i, owner) in layout.iter().enumerate() {
                for (t, m) in mems.iter_mut().enumerate() {
                    if t as u8 == *owner {
                        let b = m.alloc(1);
                        m.store(Addr::new(b, 0), Val::Int(i as i64)).unwrap();
                    } else {
                        m.liftnb(1);
                    }
                }
            }
            let all = compose_n(&mems).expect("disjointly live");
            prop_assert_eq!(all.nb() as usize, layout.len());
            for (i, owner) in layout.iter().enumerate() {
                let addr = Addr::new(i as u32, 0);
                prop_assert_eq!(ld(&mems[*owner as usize], addr).unwrap(), ld(&all, addr).unwrap());
            }
        }
    }

    #[test]
    fn doubly_live_blocks_are_incomposable() {
        let mut m1 = Memory::new();
        m1.alloc(1);
        let mut m2 = Memory::new();
        m2.alloc(1);
        assert_eq!(compose(&m1, &m2), None);
    }

    #[test]
    fn empty_memories_compose_to_empty() {
        let m = compose(&Memory::new(), &Memory::new()).unwrap();
        assert_eq!(m.nb(), 0);
    }

    #[test]
    fn placeholder_only_sides_yield_placeholders() {
        let mut m1 = Memory::new();
        m1.liftnb(3);
        let mut m2 = Memory::new();
        m2.liftnb(1);
        let m = compose(&m1, &m2).unwrap();
        assert_eq!(m.nb(), 3);
        assert!(m.block(0).unwrap().is_empty_placeholder());
    }
}
