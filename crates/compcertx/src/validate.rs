//! Translation validation — the executable stand-in for CompCertX's
//! correctness proof.
//!
//! The Coq CompCertX proves once and for all that compilation preserves
//! per-function semantics over the layer machine. Without a proof
//! assistant, we validate each compilation instead: for every function,
//! the ClightX interpretation and the compiled assembly are run over the
//! *same* underlay interface, environment contexts, and argument vectors,
//! and must produce identical logs and return values — i.e. the compiled
//! code is checked to be a strategy-equivalent implementation
//! (`⟦CompCertX(f)⟧ ≤_id ⟦f⟧` and conversely, on the explored contexts).
//! A validated compilation yields a [`CompiledModule`] carrying a
//! [`Certificate`] with one `TranslationValidation` obligation per
//! function.

use std::collections::BTreeMap;

use ccal_clightx::ast::CModule;
use ccal_clightx::interp::module_from_lowered;
use ccal_core::calculus::{Certificate, LayerError, Obligation, Rule};
use ccal_core::env::EnvContext;
use ccal_core::id::Pid;
use ccal_core::layer::LayerInterface;
use ccal_core::machine::LayerMachine;
use ccal_core::module::Module;
use ccal_core::sim::SimRelation;
use ccal_core::val::Val;
use ccal_machine::asm::AsmModule;

use crate::compile::{compile_module, CompileError};

/// A validated compilation: the source, the produced assembly, both as
/// installable core modules, and the validation certificate.
#[derive(Debug, Clone)]
pub struct CompiledModule {
    /// The (lowered) source module.
    pub source: CModule,
    /// The compiled assembly.
    pub asm: AsmModule,
    /// The source as a core module (interpreted execution).
    pub c_module: Module,
    /// The assembly as a core module (compiled execution).
    pub asm_module: Module,
    /// One `TranslationValidation` obligation per function.
    pub certificate: Certificate,
}

/// Options for validation runs.
#[derive(Debug, Clone)]
pub struct ValidateOptions {
    /// Environment contexts to run under.
    pub contexts: Vec<EnvContext>,
    /// Argument vectors per function name (functions without an entry are
    /// exercised on a default integer workload matching their arity).
    pub workloads: BTreeMap<String, Vec<Vec<Val>>>,
    /// The participant to run as.
    pub pid: Pid,
    /// Step budget per run.
    pub fuel: u64,
}

impl ValidateOptions {
    /// Creates options from a context family.
    pub fn new(contexts: Vec<EnvContext>) -> Self {
        Self {
            contexts,
            workloads: BTreeMap::new(),
            pid: Pid(0),
            fuel: LayerMachine::DEFAULT_FUEL,
        }
    }

    /// Sets the workload for one function.
    pub fn with_workload(mut self, func: &str, args: Vec<Vec<Val>>) -> Self {
        self.workloads.insert(func.to_owned(), args);
        self
    }

    fn args_for(&self, func: &str, arity: usize) -> Vec<Vec<Val>> {
        if let Some(w) = self.workloads.get(func) {
            return w.clone();
        }
        // Default integer workload: a few small vectors of the right arity.
        [0_i64, 1, 2, 7]
            .iter()
            .map(|&base| (0..arity).map(|i| Val::Int(base + i as i64)).collect())
            .collect()
    }
}

/// Compiles `source` (already lowered and checked) and validates every
/// function against its interpretation over `underlay`.
///
/// # Errors
///
/// * [`LayerError::Machine`] wrapping a [`CompileError`] rendering if
///   compilation fails;
/// * [`LayerError::Mismatch`] with the disagreeing function/context if
///   validation fails.
pub fn compile_and_validate(
    name: &str,
    source: &CModule,
    underlay: &LayerInterface,
    opts: &ValidateOptions,
) -> Result<CompiledModule, LayerError> {
    let asm = compile_module(source).map_err(|e: CompileError| {
        LayerError::Machine(ccal_core::machine::MachineError::Stuck(format!(
            "compilation failed: {e}"
        )))
    })?;
    let c_module = module_from_lowered(&format!("{name}.c"), source);
    let asm_module = asm.as_core_module(&format!("{name}.s"));
    let c_iface = c_module.install(underlay)?;
    let asm_iface = asm_module.install(underlay)?;
    let mut certificate = Certificate::new();
    let relation = SimRelation::identity();
    for func in source.iter() {
        let args_family = opts.args_for(&func.name, func.params.len());
        let mut cases_checked = 0;
        let mut cases_skipped = 0;
        for (ci, env) in opts.contexts.iter().enumerate() {
            for args in &args_family {
                let mut c_machine =
                    LayerMachine::new(c_iface.clone(), opts.pid, env.clone()).with_fuel(opts.fuel);
                let mut asm_machine = LayerMachine::new(asm_iface.clone(), opts.pid, env.clone())
                    .with_fuel(opts.fuel);
                let c_res = c_machine.call_prim(&func.name, args);
                let asm_res = asm_machine.call_prim(&func.name, args);
                match (c_res, asm_res) {
                    (Ok(cv), Ok(av)) => {
                        if cv != av {
                            return Err(LayerError::Mismatch {
                                expected: format!("{cv} (source semantics)"),
                                found: format!("{av} (compiled semantics)"),
                                context: format!(
                                    "translation validation of `{}`, context #{ci}, args {args:?}",
                                    func.name
                                ),
                            });
                        }
                        if !relation.holds(&asm_machine.log, &c_machine.log) {
                            return Err(LayerError::Mismatch {
                                expected: c_machine.log.to_string(),
                                found: asm_machine.log.to_string(),
                                context: format!(
                                    "translation validation log of `{}`, context #{ci}",
                                    func.name
                                ),
                            });
                        }
                        certificate.probes.push(opts.pid, asm_machine.log.clone());
                        cases_checked += 1;
                    }
                    (Err(ce), Err(ae)) => {
                        // Both failed: accept only matching failure classes
                        // (e.g. both stuck on the same bad input, or both in
                        // an invalid context).
                        let same_class = std::mem::discriminant(&ce) == std::mem::discriminant(&ae);
                        if !same_class {
                            return Err(LayerError::Mismatch {
                                expected: format!("same failure class; source: {ce}"),
                                found: format!("compiled: {ae}"),
                                context: format!(
                                    "translation validation of `{}`, context #{ci}, args {args:?}",
                                    func.name
                                ),
                            });
                        }
                        cases_skipped += 1;
                    }
                    (Ok(_), Err(ae)) => {
                        return Err(LayerError::Mismatch {
                            expected: "compiled code to succeed like the source".to_owned(),
                            found: format!("compiled error: {ae}"),
                            context: format!(
                                "translation validation of `{}`, context #{ci}, args {args:?}",
                                func.name
                            ),
                        });
                    }
                    (Err(ce), Ok(_)) => {
                        return Err(LayerError::Mismatch {
                            expected: "source to succeed like the compiled code".to_owned(),
                            found: format!("source error: {ce}"),
                            context: format!(
                                "translation validation of `{}`, context #{ci}, args {args:?}",
                                func.name
                            ),
                        });
                    }
                }
            }
        }
        certificate.push(Obligation {
            rule: Rule::TranslationValidation,
            description: format!("CompCertX(`{}`) ≤_id ⟦{0}⟧_C over {}", func.name, underlay.name),
            cases_checked,
            cases_skipped,
            cases_reduced: 0,
        });
    }
    Ok(CompiledModule {
        source: source.clone(),
        asm,
        c_module,
        asm_module,
        certificate,
    })
}

/// One-call pipeline: parse, lower, check, compile and validate ClightX
/// source text over an underlay, returning the validated compilation.
///
/// # Errors
///
/// Front-end errors are wrapped as machine errors; validation errors as
/// [`LayerError::Mismatch`].
pub fn compcertx(
    name: &str,
    src: &str,
    underlay: &LayerInterface,
    opts: &ValidateOptions,
) -> Result<CompiledModule, LayerError> {
    let surface = ccal_clightx::parser::parse_module(src).map_err(|e| {
        LayerError::Machine(ccal_core::machine::MachineError::Stuck(format!("{e}")))
    })?;
    let lowered = ccal_clightx::lower::lower_module(&surface);
    ccal_clightx::check::check_module(&lowered).map_err(|es| {
        LayerError::Machine(ccal_core::machine::MachineError::Stuck(format!(
            "static checks failed: {} error(s)",
            es.len()
        )))
    })?;
    compile_and_validate(name, &lowered, underlay, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::contexts::ContextGen;
    use ccal_core::event::EventKind;
    use ccal_core::layer::PrimSpec;

    fn tick_iface() -> LayerInterface {
        LayerInterface::builder("L-tick")
            .prim(PrimSpec::atomic("tick", |ctx, _| {
                ctx.emit(EventKind::Prim("tick".into(), vec![]));
                let n = ctx
                    .log
                    .iter()
                    .filter(|e| matches!(&e.kind, EventKind::Prim(p, _) if p == "tick"))
                    .count();
                Ok(Val::Int(n as i64))
            }))
            .build()
    }

    fn opts() -> ValidateOptions {
        ValidateOptions::new(
            ContextGen::new(vec![Pid(0), Pid(1)])
                .with_schedule_len(2)
                .contexts(),
        )
    }

    #[test]
    fn validates_pure_functions() {
        let iface = LayerInterface::builder("L").build();
        let compiled = compcertx(
            "M",
            "int f(int x) { int y = x * 2; while (y > 10) { y = y - 3; } return y; }",
            &iface,
            &opts(),
        )
        .unwrap();
        assert!(compiled.certificate.total_cases() > 0);
        assert_eq!(compiled.asm.fn_names(), vec!["f"]);
    }

    #[test]
    fn validates_functions_with_primitive_calls() {
        let compiled = compcertx(
            "M",
            "int f() { int a = tick(); int b = tick(); return a + b; }",
            &tick_iface(),
            &opts(),
        )
        .unwrap();
        let ob = &compiled.certificate.obligations()[0];
        assert_eq!(ob.rule, Rule::TranslationValidation);
        assert!(ob.cases_checked > 0);
    }

    #[test]
    fn validates_division_failure_parity() {
        // Division by zero is stuck in both semantics — matching failure
        // classes are accepted (skipped), not errors.
        let iface = LayerInterface::builder("L").build();
        let compiled = compcertx(
            "M",
            "int f(int x) { return 10 / x; }",
            &iface,
            &ValidateOptions::new(opts().contexts)
                .with_workload("f", vec![vec![Val::Int(0)], vec![Val::Int(2)]]),
        )
        .unwrap();
        let ob = &compiled.certificate.obligations()[0];
        assert!(ob.cases_skipped > 0, "x=0 skipped as matching failure");
        assert!(ob.cases_checked > 0, "x=2 validated");
    }

    #[test]
    fn detects_a_miscompilation() {
        // Sabotage: compile one function but validate against different
        // source — the validator must notice.
        use ccal_clightx::lower::lower_module;
        use ccal_clightx::parser::parse_module;
        let good = lower_module(&parse_module("int f(int x) { return x + 1; }").unwrap());
        let bad = lower_module(&parse_module("int f(int x) { return x + 2; }").unwrap());
        let iface = LayerInterface::builder("L").build();
        let asm = compile_module(&bad).unwrap();
        // Hand-roll the comparison the validator performs.
        let c_iface = module_from_lowered("c", &good).install(&iface).unwrap();
        let a_iface = asm.as_core_module("s").install(&iface).unwrap();
        let env = opts().contexts.remove(0);
        let mut cm = LayerMachine::new(c_iface, Pid(0), env.clone());
        let mut am = LayerMachine::new(a_iface, Pid(0), env);
        let cv = cm.call_prim("f", &[Val::Int(1)]).unwrap();
        let av = am.call_prim("f", &[Val::Int(1)]).unwrap();
        assert_ne!(cv, av, "sabotaged compilation differs observably");
    }
}
