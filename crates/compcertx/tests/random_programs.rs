//! Translation validation on randomly *generated* (not parsed) programs:
//! structured statement trees with nested control flow, exercising the
//! code generator's jump patching, operand stack discipline and frame
//! layout far beyond the hand-written sources.

use ccal_clightx::ast::{BinOp, CFunction, CModule, Expr, Stmt, UnOp};
use ccal_clightx::lower::lower_module;
use ccal_compcertx::{compile_and_validate, ValidateOptions};
use ccal_core::contexts::ContextGen;
use ccal_core::id::Pid;
use ccal_core::layer::LayerInterface;
use ccal_core::val::Val;
use proptest::prelude::*;

const VARS: [&str; 3] = ["x", "a", "b"];

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-9_i64..9).prop_map(Expr::Int),
        (0_usize..VARS.len()).prop_map(|i| Expr::var(VARS[i])),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul),
                Just(BinOp::Lt), Just(BinOp::Le), Just(BinOp::Eq), Just(BinOp::Ne),
            ])
                .prop_map(|(a, b, op)| Expr::Binop(op, Box::new(a), Box::new(b))),
            inner
                .clone()
                .prop_map(|a| Expr::Unop(UnOp::Not, Box::new(a))),
            inner.prop_map(|a| Expr::Unop(UnOp::Neg, Box::new(a))),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        Just(Stmt::Skip),
        (0_usize..VARS.len(), arb_expr())
            .prop_map(|(i, e)| Stmt::Assign(VARS[i].into(), e)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (arb_expr(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Stmt::If(
                c,
                Box::new(t),
                Box::new(e)
            )),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Stmt::Block),
            // Bounded loop: while (a > 0) { a = a - 1; <body> } — always
            // terminates because the body cannot increase a above its
            // start (it may assign, so re-bound with a guard).
            inner.prop_map(|body| {
                Stmt::While(
                    Expr::Binop(
                        BinOp::Gt,
                        Box::new(Expr::var("a")),
                        Box::new(Expr::Int(0)),
                    ),
                    Box::new(Stmt::Block(vec![
                        Stmt::Assign(
                            "a".into(),
                            Expr::Binop(
                                BinOp::Sub,
                                Box::new(Expr::var("a")),
                                Box::new(Expr::Int(1)),
                            ),
                        ),
                        body,
                    ])),
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_programs_validate(body in arb_stmt(), ret in arb_expr()) {
        let f = CFunction {
            name: "f".into(),
            params: vec!["x".into()],
            locals: vec!["a".into(), "b".into()],
            body: Stmt::Block(vec![
                Stmt::Assign("a".into(), Expr::Int(5)),
                Stmt::Assign("b".into(), Expr::Int(0)),
                // Loop bodies may reassign `a`, so a generated loop can
                // diverge; both semantics then exhaust their budgets, a
                // matching failure class that validation accepts.
                body,
                Stmt::Return(Some(ret)),
            ]),
            returns_value: true,
        };
        let module = lower_module(&CModule::new().with_fn(f));
        ccal_clightx::check::check_module(&module).expect("generated module is well-formed");
        let iface = LayerInterface::builder("L").build();
        let opts = ValidateOptions::new(vec![ContextGen::new(vec![Pid(0)]).round_robin()])
            .with_workload("f", vec![vec![Val::Int(0)], vec![Val::Int(3)], vec![Val::Int(-2)]]);
        let compiled = compile_and_validate("M", &module, &iface, &opts)
            .expect("compiled code agrees with the interpreter");
        prop_assert!(compiled.certificate.total_cases() + count_skipped(&compiled) > 0);
    }
}

fn count_skipped(c: &ccal_compcertx::CompiledModule) -> usize {
    c.certificate
        .obligations()
        .iter()
        .map(|o| o.cases_skipped)
        .sum()
}
