//! Abstract layer state.
//!
//! "The abstract state `a` is generally used in our layered approach to
//! summarize in-memory data structures from lower layers. It is not just a
//! ghost state, because it affects program execution when making primitive
//! calls" (§3.1). Examples from the paper: the ownership-status map of the
//! push/pull model (Fig. 6), and the logical thread-control-block and
//! thread-queue arrays `a.tcbp` / `a.tdqp` of §4.2.
//!
//! We represent an abstract state as a named record of [`Val`] fields.
//! Indexed families (e.g. one logical queue per queue id) use
//! [`AbsState::field_at`] naming.

use std::collections::BTreeMap;
use std::fmt;

use crate::val::{Val, ValError};

/// A named record of abstract-state fields.
///
/// # Examples
///
/// ```
/// use ccal_core::abs::AbsState;
/// use ccal_core::val::Val;
///
/// let mut a = AbsState::new();
/// a.set("curid", Val::Int(3));
/// assert_eq!(a.get_int("curid")?, 3);
/// # Ok::<(), ccal_core::abs::AbsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AbsState {
    fields: BTreeMap<String, Val>,
}

impl AbsState {
    /// Creates an empty abstract state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets field `name` to `value`, returning the previous value if any.
    pub fn set(&mut self, name: &str, value: Val) -> Option<Val> {
        self.fields.insert(name.to_owned(), value)
    }

    /// Reads field `name`.
    ///
    /// # Errors
    ///
    /// [`AbsError::Missing`] if the field does not exist.
    pub fn get(&self, name: &str) -> Result<&Val, AbsError> {
        self.fields
            .get(name)
            .ok_or_else(|| AbsError::Missing(name.to_owned()))
    }

    /// Reads field `name`, defaulting to `Val::Undef` when absent.
    pub fn get_or_undef(&self, name: &str) -> Val {
        self.fields.get(name).cloned().unwrap_or(Val::Undef)
    }

    /// Reads an integer field.
    ///
    /// # Errors
    ///
    /// [`AbsError::Missing`] if absent, [`AbsError::Val`] if not an `Int`.
    pub fn get_int(&self, name: &str) -> Result<i64, AbsError> {
        Ok(self.get(name)?.as_int()?)
    }

    /// Reads a list field, cloning it.
    ///
    /// # Errors
    ///
    /// [`AbsError::Missing`] if absent, [`AbsError::Val`] if not a `List`.
    pub fn get_list(&self, name: &str) -> Result<Vec<Val>, AbsError> {
        Ok(self.get(name)?.as_list()?.to_vec())
    }

    /// Applies `f` to the current value of field `name` (or `Val::Undef` if
    /// absent) and stores the result.
    ///
    /// # Errors
    ///
    /// Propagates the error returned by `f`.
    pub fn update<F>(&mut self, name: &str, f: F) -> Result<(), AbsError>
    where
        F: FnOnce(Val) -> Result<Val, AbsError>,
    {
        let current = self.get_or_undef(name);
        let next = f(current)?;
        self.set(name, next);
        Ok(())
    }

    /// The canonical name of the `index`-th member of the indexed field
    /// family `base` — e.g. `field_at("tdqp", 3)` is the logical queue
    /// `a.tdqp 3` of §4.2.
    pub fn field_at(base: &str, index: i64) -> String {
        format!("{base}[{index}]")
    }

    /// Whether a field exists.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.contains_key(name)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Val)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the state has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Merges `other` into `self`; fields of `other` win on collision.
    /// Used when layer interfaces are joined by horizontal composition.
    pub fn merged_with(mut self, other: &AbsState) -> AbsState {
        for (k, v) in other.iter() {
            self.fields.insert(k.to_owned(), v.clone());
        }
        self
    }
}

impl fmt::Display for AbsState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

/// Error produced by abstract-state access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsError {
    /// The named field does not exist.
    Missing(String),
    /// A field had the wrong dynamic type.
    Val(ValError),
    /// A domain-specific invariant on the abstract state failed.
    Invalid(String),
}

impl fmt::Display for AbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsError::Missing(name) => write!(f, "abstract state has no field `{name}`"),
            AbsError::Val(e) => write!(f, "abstract state field: {e}"),
            AbsError::Invalid(msg) => write!(f, "abstract state invalid: {msg}"),
        }
    }
}

impl std::error::Error for AbsError {}

impl From<ValError> for AbsError {
    fn from(e: ValError) -> Self {
        AbsError::Val(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut a = AbsState::new();
        assert!(a.set("x", Val::Int(1)).is_none());
        assert_eq!(a.set("x", Val::Int(2)), Some(Val::Int(1)));
        assert_eq!(a.get_int("x").unwrap(), 2);
    }

    #[test]
    fn missing_field_errors() {
        let a = AbsState::new();
        assert_eq!(a.get("nope").unwrap_err(), AbsError::Missing("nope".into()));
        assert!(a.get_or_undef("nope").is_undef());
    }

    #[test]
    fn type_errors_propagate() {
        let mut a = AbsState::new();
        a.set("x", Val::Bool(true));
        assert!(matches!(a.get_int("x").unwrap_err(), AbsError::Val(_)));
    }

    #[test]
    fn update_applies_function() {
        let mut a = AbsState::new();
        a.set("n", Val::Int(5));
        a.update("n", |v| Ok(Val::Int(v.as_int().map_err(AbsError::from)? + 1)))
            .unwrap();
        assert_eq!(a.get_int("n").unwrap(), 6);
    }

    #[test]
    fn indexed_field_names() {
        assert_eq!(AbsState::field_at("tdqp", 3), "tdqp[3]");
    }

    #[test]
    fn merge_prefers_other() {
        let mut a = AbsState::new();
        a.set("x", Val::Int(1));
        a.set("y", Val::Int(2));
        let mut b = AbsState::new();
        b.set("x", Val::Int(10));
        let m = a.merged_with(&b);
        assert_eq!(m.get_int("x").unwrap(), 10);
        assert_eq!(m.get_int("y").unwrap(), 2);
    }
}
