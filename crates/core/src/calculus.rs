//! The concurrent layer calculus (Fig. 9) and certified layers.
//!
//! A certified concurrent abstraction layer is "a triple `(L1[A], M, L2[A])`
//! plus a mechanized proof object showing that the layer implementation `M`,
//! running on behalf of a thread set `A` over the interface `L1`, indeed
//! faithfully implements the desirable interface `L2` above" (§1). In this
//! reproduction the proof object is a [`Certificate`]: the record of every
//! obligation discharged by the bounded simulation checker. A
//! [`CertifiedLayer`] value can only be obtained by running the checks (or
//! by composing already-checked layers through the calculus rules), so
//! possession of the value plays the role the proof object plays in Coq.
//!
//! The rules of Fig. 9 map to constructors as follows:
//!
//! | Fig. 9 | here |
//! |--------|------|
//! | `Empty`  | [`empty`] |
//! | `Fun`    | [`check_fun`] |
//! | `Vcomp`  | [`vcomp`] |
//! | `Hcomp`  | [`hcomp`] |
//! | `Wk`     | [`weaken`] with an [`IfaceRefinement`] from [`check_iface_refinement`] |
//! | `Compat`/`Pcomp` | [`pcomp`] |

use std::collections::BTreeMap;
use std::fmt;

use crate::env::EnvContext;
use crate::id::{Pid, PidSet};
use crate::layer::LayerInterface;
use crate::machine::MachineError;
use crate::module::Module;
use crate::rely::ProbeSuite;
use crate::sim::{check_prim_refinement, SimFailure, SimOptions, SimRelation};
use crate::val::Val;

/// The calculus rule (or auxiliary theorem) that discharged an obligation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Fig. 9 `Empty`.
    Empty,
    /// Fig. 9 `Fun` — leaf simulation check.
    Fun,
    /// Fig. 9 `Vcomp` — vertical composition.
    Vcomp,
    /// Fig. 9 `Hcomp` — horizontal composition.
    Hcomp,
    /// Fig. 9 `Wk` — weakening through interface refinements.
    Wk,
    /// Fig. 9 `Compat` side condition.
    Compat,
    /// Fig. 9 `Pcomp` — parallel composition.
    Pcomp,
    /// Interface refinement `L′ ≤_R L` (the "log-lift" pattern, §3.3).
    IfaceSim,
    /// Theorem 2.2 — contextual refinement soundness.
    Soundness,
    /// Theorem 3.1 — multicore linking.
    MulticoreLink,
    /// Theorem 5.1 — multithreaded linking.
    MultithreadLink,
    /// CompCertX translation validation (§5.5).
    TranslationValidation,
    /// A liveness (starvation-freedom) obligation (§4.1).
    Liveness,
    /// A linearizability obligation (§7).
    Linearizability,
    /// Data-race freedom via push/pull stuckness (§3.1).
    RaceFreedom,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::Empty => "Empty",
            Rule::Fun => "Fun",
            Rule::Vcomp => "Vcomp",
            Rule::Hcomp => "Hcomp",
            Rule::Wk => "Wk",
            Rule::Compat => "Compat",
            Rule::Pcomp => "Pcomp",
            Rule::IfaceSim => "IfaceSim",
            Rule::Soundness => "Soundness",
            Rule::MulticoreLink => "MulticoreLink",
            Rule::MultithreadLink => "MultithreadLink",
            Rule::TranslationValidation => "TranslationValidation",
            Rule::Liveness => "Liveness",
            Rule::Linearizability => "Linearizability",
            Rule::RaceFreedom => "RaceFreedom",
        };
        write!(f, "{s}")
    }
}

/// One discharged obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// The rule that discharged it.
    pub rule: Rule,
    /// What was checked.
    pub description: String,
    /// Number of (context × workload) cases executed.
    pub cases_checked: usize,
    /// Number of cases skipped as invalid contexts.
    pub cases_skipped: usize,
    /// Number of cases pruned by the partial-order reduction (see
    /// [`crate::por`]): trace-equivalent to a checked case.
    pub cases_reduced: usize,
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} ({} cases, {} skipped",
            self.rule, self.description, self.cases_checked, self.cases_skipped
        )?;
        if self.cases_reduced > 0 {
            write!(f, ", {} reduced", self.cases_reduced)?;
        }
        write!(f, ")")
    }
}

/// The runtime stand-in for a mechanized proof object: the full record of
/// obligations discharged while building a certified layer, plus the probe
/// logs reused for `Compat` side conditions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Certificate {
    obligations: Vec<Obligation>,
    /// Logs reached during checking, used as probes by [`pcomp`].
    pub probes: ProbeSuite,
    /// Shrink accounting attached after a failed sibling check was
    /// minimized by the forensics pipeline (empty for ordinary
    /// certificates, so equality comparisons between differential runs
    /// are unaffected).
    shrink_notes: Vec<crate::forensics::ShrinkNote>,
}

impl Certificate {
    /// An empty certificate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an obligation.
    pub fn push(&mut self, obligation: Obligation) {
        self.obligations.push(obligation);
    }

    /// All obligations, in discharge order.
    pub fn obligations(&self) -> &[Obligation] {
        &self.obligations
    }

    /// Total number of executed cases across all obligations.
    pub fn total_cases(&self) -> usize {
        self.obligations.iter().map(|o| o.cases_checked).sum()
    }

    /// Total number of cases the partial-order reduction skipped as
    /// trace-equivalent across all obligations.
    pub fn total_reduced(&self) -> usize {
        self.obligations.iter().map(|o| o.cases_reduced).sum()
    }

    /// Total number of cases skipped as invalid contexts across all
    /// obligations.
    pub fn total_skipped(&self) -> usize {
        self.obligations.iter().map(|o| o.cases_skipped).sum()
    }

    /// Attaches shrink accounting for a minimized counterexample (see
    /// [`crate::forensics::ShrinkNote`]).
    pub fn push_shrink_note(&mut self, note: crate::forensics::ShrinkNote) {
        self.shrink_notes.push(note);
    }

    /// Shrink accounting attached to this certificate, in insertion order.
    pub fn shrink_notes(&self) -> &[crate::forensics::ShrinkNote] {
        &self.shrink_notes
    }

    /// Merges another certificate into this one.
    pub fn merge(&mut self, other: &Certificate) {
        self.obligations.extend(other.obligations.iter().cloned());
        self.probes.extend_from(&other.probes);
        self.shrink_notes.extend(other.shrink_notes.iter().cloned());
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "certificate: {} obligations, {} cases",
            self.obligations.len(),
            self.total_cases()
        )?;
        for o in &self.obligations {
            writeln!(f, "  {o}")?;
        }
        for n in &self.shrink_notes {
            writeln!(f, "  {n}")?;
        }
        Ok(())
    }
}

/// Errors rejecting a layer construction — the executable analog of an
/// unprovable proof goal.
#[derive(Debug)]
pub enum LayerError {
    /// A simulation check found a counterexample.
    Sim(Box<SimFailure>),
    /// A machine-level failure (e.g. linking collision).
    Machine(MachineError),
    /// A rule's structural premise failed (interface or relation
    /// mismatch).
    Mismatch {
        /// What the rule required.
        expected: String,
        /// What was found.
        found: String,
        /// Which rule/premise.
        context: String,
    },
    /// A `Compat` inclusion could not be established.
    Compat {
        /// The rely invariant that was not implied.
        invariant: String,
        /// Which direction failed (`"G(A) ⇒ R(B)"` or the converse).
        side: String,
    },
    /// An overlay primitive has neither a module implementation nor an
    /// underlay primitive to pass through.
    MissingImpl {
        /// The unimplemented primitive.
        prim: String,
    },
}

impl fmt::Display for LayerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerError::Sim(e) => write!(f, "{e}"),
            LayerError::Machine(e) => write!(f, "{e}"),
            LayerError::Mismatch {
                expected,
                found,
                context,
            } => write!(f, "{context}: expected {expected}, found {found}"),
            LayerError::Compat { invariant, side } => {
                write!(f, "compat failed: {side} does not establish `{invariant}`")
            }
            LayerError::MissingImpl { prim } => {
                write!(f, "overlay primitive `{prim}` has no implementation")
            }
        }
    }
}

impl std::error::Error for LayerError {}

impl From<MachineError> for LayerError {
    fn from(e: MachineError) -> Self {
        LayerError::Machine(e)
    }
}

impl From<Box<SimFailure>> for LayerError {
    fn from(e: Box<SimFailure>) -> Self {
        LayerError::Sim(e)
    }
}

/// A certified concurrent abstraction layer `L1[A] ⊢_R M : L2[A]`.
#[derive(Debug, Clone)]
pub struct CertifiedLayer {
    /// The underlay interface `L1`.
    pub underlay: LayerInterface,
    /// The implementation module `M`.
    pub module: Module,
    /// The overlay interface `L2`.
    pub overlay: LayerInterface,
    /// The simulation relation `R`.
    pub relation: SimRelation,
    /// The focused participant set `A`.
    pub focused: PidSet,
    /// The discharged obligations.
    pub certificate: Certificate,
}

impl CertifiedLayer {
    /// Renders the judgment `L1[A] ⊢_R M : L2[A]`.
    pub fn judgment(&self) -> String {
        format!(
            "{}{} ⊢_{} {} : {}{}",
            self.underlay.name,
            self.focused,
            self.relation.name(),
            self.module.name,
            self.overlay.name,
            self.focused
        )
    }
}

/// Options shared by the checking rules: the environment contexts to
/// quantify over, per-primitive argument workloads, and low-level
/// simulation options.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Environment contexts (the bounded stand-in for "all valid `E`").
    pub contexts: Vec<EnvContext>,
    /// Argument vectors per primitive name; primitives without an entry
    /// are called once with no arguments.
    pub workloads: BTreeMap<String, Vec<Vec<Val>>>,
    /// Per-primitive setup scripts (calls run on both machines before the
    /// checked invocation).
    pub setups: BTreeMap<String, Vec<(String, Vec<Val>)>>,
    /// Low-level simulation options.
    pub sim: SimOptions,
}

impl CheckOptions {
    /// Creates options from a context family with empty workloads.
    pub fn new(contexts: Vec<EnvContext>) -> Self {
        Self {
            contexts,
            workloads: BTreeMap::new(),
            setups: BTreeMap::new(),
            sim: SimOptions::default(),
        }
    }

    /// Sets the argument vectors used when checking primitive `prim`.
    pub fn with_workload(mut self, prim: &str, args: Vec<Vec<Val>>) -> Self {
        self.workloads.insert(prim.to_owned(), args);
        self
    }

    /// Sets the setup script run before each checked invocation of `prim`.
    pub fn with_setup(mut self, prim: &str, setup: Vec<(String, Vec<Val>)>) -> Self {
        self.setups.insert(prim.to_owned(), setup);
        self
    }

    /// Sets the worker-thread count for case-grid exploration (1 = serial).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.sim.workers = workers.max(1);
        self
    }

    /// Enables or disables upper-run memoization across symmetric
    /// schedules.
    #[must_use]
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.sim.dedup = dedup;
        self
    }

    /// Enables or disables the partial-order reduction (skipping contexts
    /// marked trace-equivalent by [`crate::contexts::ContextGen`]).
    #[must_use]
    pub fn with_por(mut self, por: bool) -> Self {
        self.sim.por = por;
        self
    }

    /// Enables or disables prefix-sharing of lower-machine runs across
    /// contexts with common consumed schedule prefixes (see
    /// [`crate::prefix`]).
    #[must_use]
    pub fn with_prefix_share(mut self, prefix_share: bool) -> Self {
        self.sim.prefix_share = prefix_share;
        self
    }

    /// Enables or disables deep prefix-sharing: forking the lower machine
    /// at every environment query point (see [`crate::prefix::SnapshotTrie`]).
    /// Effective only when prefix-sharing is on.
    #[must_use]
    pub fn with_deep_share(mut self, deep_share: bool) -> Self {
        self.sim.deep_share = deep_share;
        self
    }

    /// Enables or disables the compiled ClightX bytecode tier (see
    /// [`crate::prefix::bytecode_effective`]); bit-identical verdicts
    /// either way.
    #[must_use]
    pub fn with_bytecode(mut self, bytecode: bool) -> Self {
        self.sim.bytecode = bytecode;
        self
    }

    /// Enables or disables convergence dedup (state-fingerprint suffix
    /// caching at query-point cuts; see [`crate::explore`]); bit-identical
    /// verdicts and evidence either way.
    #[must_use]
    pub fn with_state_dedup(mut self, state_dedup: bool) -> Self {
        self.sim.state_dedup = state_dedup;
        self
    }

    /// Bounds the query-point snapshot trie (clamped to at least 1; the
    /// trie is cleared wholesale when full).
    #[must_use]
    pub fn with_snapshot_cap(mut self, cap: usize) -> Self {
        self.sim.snapshot_cap = cap.max(1);
        self
    }

    fn sim_for(&self, prim: &str) -> SimOptions {
        let mut sim = self.sim.clone();
        if let Some(setup) = self.setups.get(prim) {
            sim.setup = setup.clone();
        }
        sim
    }

    fn args_for(&self, prim: &str) -> Vec<Vec<Val>> {
        self.workloads
            .get(prim)
            .cloned()
            .unwrap_or_else(|| vec![Vec::new()])
    }
}

/// The `Empty` rule (Fig. 9): `L[A] ⊢_id ∅ : L[A]`.
pub fn empty(iface: &LayerInterface, focused: PidSet) -> CertifiedLayer {
    let mut certificate = Certificate::new();
    certificate.push(Obligation {
        rule: Rule::Empty,
        description: format!("{0}[{1}] ⊢_id ∅ : {0}[{1}]", iface.name, focused),
        cases_checked: 0,
        cases_skipped: 0,
        cases_reduced: 0,
    });
    CertifiedLayer {
        underlay: iface.clone(),
        module: Module::new("∅"),
        overlay: iface.clone(),
        relation: SimRelation::identity(),
        focused,
        certificate,
    }
}

/// The `Fun` rule (Fig. 9), generalized to whole modules: checks
/// `underlay[pid] ⊢_R module : overlay[pid]` by verifying, for every
/// overlay primitive, that its implementation (a module function, or the
/// same-named underlay primitive passed through) is simulated by the
/// overlay specification via `relation`.
///
/// # Errors
///
/// * [`LayerError::MissingImpl`] if an overlay primitive has no
///   implementation;
/// * [`LayerError::Sim`] with the first counterexample found.
pub fn check_fun(
    underlay: &LayerInterface,
    module: &Module,
    overlay: &LayerInterface,
    relation: &SimRelation,
    pid: Pid,
    opts: &CheckOptions,
) -> Result<CertifiedLayer, LayerError> {
    let extended = module.install(underlay)?;
    let mut certificate = Certificate::new();
    for prim in overlay.prim_names() {
        if !extended.has_prim(prim) {
            return Err(LayerError::MissingImpl {
                prim: prim.to_owned(),
            });
        }
        let kind = if module.contains(prim) {
            "module fn"
        } else {
            "pass-through"
        };
        let evidence = check_prim_refinement(
            &extended,
            prim,
            overlay,
            prim,
            relation,
            pid,
            &opts.contexts,
            &opts.args_for(prim),
            &opts.sim_for(prim),
        )?;
        certificate.probes.extend_from(&evidence.probes);
        certificate.push(Obligation {
            rule: Rule::Fun,
            description: format!(
                "⟦{}⟧_{}[{pid}] ≤_{} {}::{prim} ({kind})",
                prim,
                extended.name,
                relation.name(),
                overlay.name
            ),
            cases_checked: evidence.cases_checked,
            cases_skipped: evidence.cases_skipped,
            cases_reduced: evidence.cases_reduced,
        });
    }
    Ok(CertifiedLayer {
        underlay: underlay.clone(),
        module: module.clone(),
        overlay: overlay.clone(),
        relation: relation.clone(),
        focused: PidSet::singleton(pid),
        certificate,
    })
}

/// An interface refinement `lower ≤_R upper` (the specification-to-
/// specification simulations used by `Wk`, e.g. the log-lift
/// `L′1[i] ≤_{R1} L1[i]` of §2).
#[derive(Debug, Clone)]
pub struct IfaceRefinement {
    /// The concrete interface.
    pub lower: LayerInterface,
    /// The abstract interface.
    pub upper: LayerInterface,
    /// The simulation relation.
    pub relation: SimRelation,
    /// Evidence.
    pub certificate: Certificate,
}

/// Checks an interface refinement `lower ≤_R upper`: every primitive of
/// `upper` must simulate the same-named primitive of `lower` via
/// `relation`.
///
/// # Errors
///
/// [`LayerError::MissingImpl`] if `lower` lacks a primitive of `upper`;
/// [`LayerError::Sim`] on a counterexample.
pub fn check_iface_refinement(
    lower: &LayerInterface,
    upper: &LayerInterface,
    relation: &SimRelation,
    pid: Pid,
    opts: &CheckOptions,
) -> Result<IfaceRefinement, LayerError> {
    let mut certificate = Certificate::new();
    for prim in upper.prim_names() {
        if !lower.has_prim(prim) {
            return Err(LayerError::MissingImpl {
                prim: prim.to_owned(),
            });
        }
        let evidence = check_prim_refinement(
            lower,
            prim,
            upper,
            prim,
            relation,
            pid,
            &opts.contexts,
            &opts.args_for(prim),
            &opts.sim_for(prim),
        )?;
        certificate.probes.extend_from(&evidence.probes);
        certificate.push(Obligation {
            rule: Rule::IfaceSim,
            description: format!(
                "{}::{prim} ≤_{} {}::{prim}",
                lower.name,
                relation.name(),
                upper.name
            ),
            cases_checked: evidence.cases_checked,
            cases_skipped: evidence.cases_skipped,
            cases_reduced: evidence.cases_reduced,
        });
    }
    Ok(IfaceRefinement {
        lower: lower.clone(),
        upper: upper.clone(),
        relation: relation.clone(),
        certificate,
    })
}

fn require(cond: bool, context: &str, expected: &str, found: &str) -> Result<(), LayerError> {
    if cond {
        Ok(())
    } else {
        Err(LayerError::Mismatch {
            expected: expected.to_owned(),
            found: found.to_owned(),
            context: context.to_owned(),
        })
    }
}

/// The `Vcomp` rule (Fig. 9): from `L1[A] ⊢_R M : L2[A]` and
/// `L2[A] ⊢_S N : L3[A]`, derives `L1[A] ⊢_{R∘S} M ⊕ N : L3[A]`.
///
/// # Errors
///
/// [`LayerError::Mismatch`] if `a.overlay` and `b.underlay` are not the
/// same interface (by name and primitive set) or the focused sets differ;
/// [`LayerError::Machine`] if module linking collides.
pub fn vcomp(a: &CertifiedLayer, b: &CertifiedLayer) -> Result<CertifiedLayer, LayerError> {
    require(
        a.overlay.name == b.underlay.name && a.overlay.prim_names() == b.underlay.prim_names(),
        "Vcomp",
        &format!("b.underlay = a.overlay ({})", a.overlay.name),
        &b.underlay.name,
    )?;
    require(
        a.focused == b.focused,
        "Vcomp",
        &format!("focused {}", a.focused),
        &b.focused.to_string(),
    )?;
    let module = a.module.link(&b.module)?;
    let mut certificate = a.certificate.clone();
    certificate.merge(&b.certificate);
    certificate.push(Obligation {
        rule: Rule::Vcomp,
        description: format!(
            "{} ⊢ {} : {} (via {})",
            a.underlay.name, module.name, b.overlay.name, a.overlay.name
        ),
        cases_checked: 0,
        cases_skipped: 0,
        cases_reduced: 0,
    });
    Ok(CertifiedLayer {
        underlay: a.underlay.clone(),
        module,
        overlay: b.overlay.clone(),
        relation: a.relation.then(&b.relation),
        focused: a.focused.clone(),
        certificate,
    })
}

/// The `Hcomp` rule (Fig. 9): two layers over the *same* underlay, same
/// relation and same focused set; their modules are linked and their
/// overlays joined.
///
/// # Errors
///
/// [`LayerError::Mismatch`] on differing underlays/relations/focused sets;
/// [`LayerError::Machine`] on linking or join collisions.
pub fn hcomp(a: &CertifiedLayer, b: &CertifiedLayer) -> Result<CertifiedLayer, LayerError> {
    require(
        a.underlay.name == b.underlay.name,
        "Hcomp",
        &a.underlay.name,
        &b.underlay.name,
    )?;
    require(
        a.relation.name() == b.relation.name(),
        "Hcomp",
        a.relation.name(),
        b.relation.name(),
    )?;
    require(
        a.focused == b.focused,
        "Hcomp",
        &a.focused.to_string(),
        &b.focused.to_string(),
    )?;
    let module = a.module.link(&b.module)?;
    let overlay = a.overlay.join(&b.overlay)?;
    let mut certificate = a.certificate.clone();
    certificate.merge(&b.certificate);
    certificate.push(Obligation {
        rule: Rule::Hcomp,
        description: format!("{} ⊢ {} : {}", a.underlay.name, module.name, overlay.name),
        cases_checked: 0,
        cases_skipped: 0,
        cases_reduced: 0,
    });
    Ok(CertifiedLayer {
        underlay: a.underlay.clone(),
        module,
        overlay,
        relation: a.relation.clone(),
        focused: a.focused.clone(),
        certificate,
    })
}

/// The `Wk` rule (Fig. 9): strengthens a layer through interface
/// refinements on either side. `below` must refine into the layer's
/// underlay (`L′1 ≤_R L1`), `above` must refine the layer's overlay into a
/// more abstract interface (`L2 ≤_T L′2`). Either side may be `None`.
///
/// # Errors
///
/// [`LayerError::Mismatch`] if a refinement does not line up with the
/// layer's interfaces.
pub fn weaken(
    below: Option<&IfaceRefinement>,
    layer: &CertifiedLayer,
    above: Option<&IfaceRefinement>,
) -> Result<CertifiedLayer, LayerError> {
    let mut out = layer.clone();
    if let Some(b) = below {
        require(
            b.upper.name == layer.underlay.name,
            "Wk (below)",
            &layer.underlay.name,
            &b.upper.name,
        )?;
        out.underlay = b.lower.clone();
        out.relation = b.relation.then(&out.relation);
        out.certificate.merge(&b.certificate);
    }
    if let Some(t) = above {
        require(
            t.lower.name == layer.overlay.name,
            "Wk (above)",
            &layer.overlay.name,
            &t.lower.name,
        )?;
        out.overlay = t.upper.clone();
        out.relation = out.relation.then(&t.relation);
        out.certificate.merge(&t.certificate);
    }
    out.certificate.push(Obligation {
        rule: Rule::Wk,
        description: format!(
            "{} ⊢_{} {} : {}",
            out.underlay.name,
            out.relation.name(),
            out.module.name,
            out.overlay.name
        ),
        cases_checked: 0,
        cases_skipped: 0,
        cases_reduced: 0,
    });
    Ok(out)
}

/// The `Compat` + `Pcomp` rules (Fig. 9): composes two certified layers
/// with disjoint focused sets over the same interfaces and relation into a
/// layer focused on the union. The compatibility side conditions — each
/// side's guarantee implies the other's rely, at both underlay and overlay
/// — are checked structurally and on the probe logs accumulated in both
/// certificates.
///
/// # Errors
///
/// [`LayerError::Mismatch`] on structural premises,
/// [`LayerError::Compat`] when an inclusion cannot be established.
pub fn pcomp(a: &CertifiedLayer, b: &CertifiedLayer) -> Result<CertifiedLayer, LayerError> {
    require(
        a.focused.is_disjoint(&b.focused),
        "Pcomp",
        "disjoint focused sets (A ⊥ B)",
        &format!("{} vs {}", a.focused, b.focused),
    )?;
    require(
        a.underlay.name == b.underlay.name,
        "Pcomp",
        &a.underlay.name,
        &b.underlay.name,
    )?;
    require(
        a.overlay.name == b.overlay.name,
        "Pcomp",
        &a.overlay.name,
        &b.overlay.name,
    )?;
    require(
        a.relation.name() == b.relation.name(),
        "Pcomp",
        a.relation.name(),
        b.relation.name(),
    )?;
    let mut probes = ProbeSuite::new();
    probes.extend_from(&a.certificate.probes);
    probes.extend_from(&b.certificate.probes);
    let mut certificate = a.certificate.clone();
    certificate.merge(&b.certificate);
    let mut compat_cases = 0;
    for (iface_a, iface_b, level) in [
        (&a.underlay, &b.underlay, "underlay"),
        (&a.overlay, &b.overlay, "overlay"),
    ] {
        for (ga, rb, side) in [
            (&iface_a.conditions, &iface_b.conditions, "G(A) ⇒ R(B)"),
            (&iface_b.conditions, &iface_a.conditions, "G(B) ⇒ R(A)"),
        ] {
            if let Some(invariant) = ga.guarantee_implies_rely_of(rb, &probes) {
                return Err(LayerError::Compat {
                    invariant,
                    side: format!("{side} at {level}"),
                });
            }
            compat_cases += probes.len();
        }
    }
    certificate.push(Obligation {
        rule: Rule::Compat,
        description: format!(
            "compat({0}{1}, {0}{2}, {0}{3})",
            a.underlay.name,
            a.focused,
            b.focused,
            a.focused.union(&b.focused)
        ),
        cases_checked: compat_cases,
        cases_skipped: 0,
        cases_reduced: 0,
    });
    let focused = a.focused.union(&b.focused);
    let underlay = a
        .underlay
        .with_conditions(a.underlay.conditions.compose_parallel(&b.underlay.conditions));
    let overlay = a
        .overlay
        .with_conditions(a.overlay.conditions.compose_parallel(&b.overlay.conditions));
    certificate.push(Obligation {
        rule: Rule::Pcomp,
        description: format!(
            "{}{} ⊢_{} {} : {}{}",
            underlay.name,
            focused,
            a.relation.name(),
            a.module.name,
            overlay.name,
            focused
        ),
        cases_checked: 0,
        cases_skipped: 0,
        cases_reduced: 0,
    });
    Ok(CertifiedLayer {
        underlay,
        module: a.module.clone(),
        overlay,
        relation: a.relation.clone(),
        focused,
        certificate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contexts::ContextGen;
    use crate::event::EventKind;
    use crate::layer::PrimSpec;
    use crate::module::Lang;

    fn base_iface(name: &str) -> LayerInterface {
        LayerInterface::builder(name)
            .prim(PrimSpec::atomic("step", |ctx, _| {
                ctx.emit(EventKind::Prim("step".into(), vec![]));
                Ok(Val::Unit)
            }))
            .build()
    }

    fn wrap_module() -> Module {
        use crate::layer::{PrimCtx, PrimRun, PrimStep, SubCall};
        struct Wrap {
            sub: Option<SubCall>,
        }
        impl PrimRun for Wrap {
            fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
                if self.sub.is_none() {
                    self.sub = Some(SubCall::start(ctx, "step", vec![])?);
                }
                match self.sub.as_mut().unwrap().step(ctx)? {
                    Some(_) => Ok(PrimStep::Done(Val::Unit)),
                    None => Ok(PrimStep::Query),
                }
            }
        }
        Module::new("M").with_fn(
            Lang::Native,
            PrimSpec::strategy("wrapped", true, |_, _| Box::new(Wrap { sub: None })),
        )
    }

    fn overlay_iface(name: &str) -> LayerInterface {
        LayerInterface::builder(name)
            .prim(PrimSpec::atomic("wrapped", |ctx, _| {
                ctx.emit(EventKind::Prim("step".into(), vec![]));
                Ok(Val::Unit)
            }))
            .build()
    }

    fn opts() -> CheckOptions {
        CheckOptions::new(
            ContextGen::new(vec![Pid(0), Pid(1)])
                .with_schedule_len(2)
                .contexts(),
        )
    }

    #[test]
    fn empty_rule_is_identity() {
        let l = base_iface("L");
        let layer = empty(&l, PidSet::singleton(Pid(0)));
        assert_eq!(layer.underlay.name, layer.overlay.name);
        assert!(layer.module.is_empty());
        assert_eq!(layer.certificate.obligations().len(), 1);
    }

    #[test]
    fn fun_rule_certifies_wrapper() {
        let layer = check_fun(
            &base_iface("L0"),
            &wrap_module(),
            &overlay_iface("L1"),
            &SimRelation::identity(),
            Pid(1),
            &opts(),
        )
        .unwrap();
        assert!(layer.certificate.total_cases() > 0);
        assert!(layer.judgment().contains("⊢"));
    }

    #[test]
    fn fun_rule_rejects_missing_impl() {
        let overlay = LayerInterface::builder("L1")
            .prim(PrimSpec::atomic("ghost", |_, _| Ok(Val::Unit)))
            .build();
        let err = check_fun(
            &base_iface("L0"),
            &Module::new("M"),
            &overlay,
            &SimRelation::identity(),
            Pid(0),
            &opts(),
        )
        .unwrap_err();
        assert!(matches!(err, LayerError::MissingImpl { .. }));
    }

    #[test]
    fn vcomp_requires_matching_interfaces() {
        let l0 = base_iface("L0");
        let a = empty(&l0, PidSet::singleton(Pid(0)));
        let b = empty(&base_iface("L9"), PidSet::singleton(Pid(0)));
        assert!(matches!(vcomp(&a, &b), Err(LayerError::Mismatch { .. })));
        let ok = vcomp(&a, &empty(&l0, PidSet::singleton(Pid(0)))).unwrap();
        assert_eq!(ok.relation.name(), "id ∘ id");
    }

    #[test]
    fn pcomp_unions_focused_sets() {
        let l0 = base_iface("L0");
        let a = empty(&l0, PidSet::singleton(Pid(0)));
        let b = empty(&l0, PidSet::singleton(Pid(1)));
        let ab = pcomp(&a, &b).unwrap();
        assert_eq!(ab.focused, PidSet::from_pids([Pid(0), Pid(1)]));
        // Overlapping focused sets are rejected.
        assert!(matches!(pcomp(&a, &a), Err(LayerError::Mismatch { .. })));
    }

    #[test]
    fn hcomp_joins_overlays() {
        let l0 = base_iface("L0");
        let a = check_fun(
            &l0,
            &wrap_module(),
            &overlay_iface("La"),
            &SimRelation::identity(),
            Pid(0),
            &opts(),
        )
        .unwrap();
        // Second layer: empty module, pass-through of "step".
        let b = check_fun(
            &l0,
            &Module::new("N"),
            &base_iface("Lb"),
            &SimRelation::identity(),
            Pid(0),
            &opts(),
        )
        .unwrap();
        let joined = hcomp(&a, &b).unwrap();
        assert!(joined.overlay.has_prim("wrapped"));
        assert!(joined.overlay.has_prim("step"));
    }
}
