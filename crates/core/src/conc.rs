//! The multi-participant game machine.
//!
//! The layer machine over `L[A]` with several focused participants "will
//! run `P` when the control is transferred to any member of `A`, but will
//! ask `E` for the next move when the control is transferred to the
//! environment" (§2). [`ConcurrentMachine`] implements that game: each
//! focused participant runs a program (a sequence of primitive calls); the
//! scheduler strategy decides whose in-flight [`PrimRun`] advances to its
//! next query point; environment participants contribute their strategies'
//! events.
//!
//! Interleaving granularity follows §3.2 exactly: instructions and private
//! primitives are silent and uninterruptible; control can change hands only
//! at *query points*, i.e. just before shared primitives — and not even
//! there while the participant is in the critical state (§2).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::abs::AbsState;
use crate::env::EnvContext;
use crate::event::EventKind;
use crate::id::{Pid, PidSet};
use crate::layer::{LayerInterface, PrimCtx, PrimRun, PrimStep};
use crate::log::Log;
use crate::machine::MachineError;
use crate::strategy::StrategyMove;
use crate::val::Val;

/// A straight-line program for one focused participant: a sequence of
/// primitive calls. This matches the client programs of the paper's
/// walkthrough (Fig. 3: `T1() { foo(); }`).
pub type ThreadScript = Vec<(String, Vec<Val>)>;

/// The result of running a multi-participant game to completion.
#[derive(Debug, Clone)]
pub struct ConcurrentOutcome {
    /// The final global log.
    pub log: Log,
    /// The final abstract state.
    pub abs: AbsState,
    /// Return values of each participant's calls, in program order.
    pub rets: BTreeMap<Pid, Vec<Val>>,
    /// Number of scheduler decisions taken.
    pub turns: u64,
}

struct Player {
    /// `Arc`-shared: scripts are immutable once the game starts, so
    /// query-point snapshot forks ([`GameState::fork`]) bump a refcount
    /// per player instead of deep-cloning every script.
    script: Arc<ThreadScript>,
    next_call: usize,
    run: Option<Box<dyn PrimRun>>,
    rets: Vec<Val>,
    done: bool,
}

impl Player {
    fn fork(&self) -> Option<Player> {
        let run = match &self.run {
            Some(r) => Some(r.fork_run()?),
            None => None,
        };
        Some(Player {
            script: Arc::clone(&self.script),
            next_call: self.next_call,
            run,
            rets: self.rets.clone(),
            done: self.done,
        })
    }
}

/// The complete mutable state of an in-flight game: every focused
/// player's script position, accumulated returns and in-flight
/// [`PrimRun`], the abstract state, the global log, and the turn/stall
/// accounting. A [`GameState`] plus a [`ConcurrentMachine`] (interface,
/// environment, fuel) determine the rest of the run — which is what makes
/// a forked state a valid snapshot for the query-point trie
/// ([`crate::prefix::SnapshotTrie`]): each turn consumes exactly one
/// schedule slot, so a state at turn `k` can resume under any context
/// agreeing on the first `k` slots.
pub struct GameState {
    players: BTreeMap<Pid, Player>,
    abs: AbsState,
    log: Log,
    turns: u64,
    last_progress: (usize, usize, usize),
    stalled_for: u64,
}

impl GameState {
    /// Schedule slots consumed so far — exactly one scheduler decision is
    /// taken per turn.
    pub fn sched_consumed(&self) -> usize {
        usize::try_from(self.turns).unwrap_or(usize::MAX)
    }

    /// Whether every focused player has finished its script.
    pub fn all_done(&self) -> bool {
        self.players.values().all(|p| p.done)
    }

    /// Events in the global log so far — the work proxy the checkers'
    /// prefix-sharing accounting uses when resuming from a snapshot.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Forks the state for resumption under another environment context
    /// that agrees on the consumed schedule prefix. Returns `None` when
    /// any in-flight run does not support [`PrimRun::fork_run`].
    pub fn fork(&self) -> Option<GameState> {
        let mut players = BTreeMap::new();
        for (pid, p) in &self.players {
            players.insert(*pid, p.fork()?);
        }
        Some(GameState {
            players,
            abs: self.abs.clone(),
            log: self.log.clone(),
            turns: self.turns,
            last_progress: self.last_progress,
            stalled_for: self.stalled_for,
        })
    }

    fn into_outcome(self) -> ConcurrentOutcome {
        ConcurrentOutcome {
            log: self.log,
            abs: self.abs,
            rets: self
                .players
                .into_iter()
                .map(|(p, st)| (p, st.rets))
                .collect(),
            turns: self.turns,
        }
    }

    /// Consumes the state, keeping only its log — what the convergence
    /// cache grafts a cached suffix onto after aborting a run at a cut.
    pub fn into_log(self) -> Log {
        self.log
    }

    /// A canonical [`crate::fingerprint::ContentHash`] of everything that
    /// determines this game's remaining execution given its machine
    /// (interface, fuel) and remaining schedule: every player's script,
    /// position, returns, completion flag and in-flight run state, the
    /// abstract state, the log's convergence digest
    /// ([`Log::conv_hash`]), and the turn/stall accounting. `None` when
    /// any in-flight run does not support
    /// [`crate::layer::PrimRun::state_fp`] — the convergence cache then
    /// skips this cut, which is always sound.
    pub fn conv_fingerprint(&self) -> Option<crate::fingerprint::ContentHash> {
        let mut h = crate::fingerprint::ContentHasher::new();
        h.section("ccal.conv.game.v1");
        h.u64("game.turns", self.turns);
        h.u64("game.stalled_for", self.stalled_for);
        h.usize("game.progress.events", self.last_progress.0);
        h.usize("game.progress.rets", self.last_progress.1);
        h.usize("game.progress.done", self.last_progress.2);
        h.section("game.abs");
        h.usize("abs.len", self.abs.len());
        for (name, v) in self.abs.iter() {
            h.str("abs.field", name);
            h.val("abs.val", v);
        }
        self.log.conv_hash(&mut h);
        h.usize("game.nplayers", self.players.len());
        for (pid, p) in &self.players {
            h.u64("player.pid", u64::from(pid.0));
            h.usize("player.next_call", p.next_call);
            h.bool("player.done", p.done);
            h.usize("player.script_len", p.script.len());
            for (name, args) in p.script.iter() {
                h.str("player.call", name);
                for (i, a) in args.iter().enumerate() {
                    h.val(&format!("player.arg[{i}]"), a);
                }
            }
            h.usize("player.nrets", p.rets.len());
            for (i, r) in p.rets.iter().enumerate() {
                h.val(&format!("player.ret[{i}]"), r);
            }
            match &p.run {
                Some(run) => {
                    if !run.state_fp(&mut h) {
                        return None;
                    }
                }
                None => h.bool("player.run", false),
            }
        }
        Some(h.finish())
    }
}

impl fmt::Debug for GameState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GameState")
            .field("turns", &self.turns)
            .field("log_len", &self.log.len())
            .finish()
    }
}

/// A whole game state is directly a query-point snapshot — the adapter the
/// game-based checkers (liveness, linearizability, race freedom) hand to
/// the exploration kernel, replacing the per-checker newtype wrappers they
/// used to carry.
impl crate::prefix::ForkSnapshot for GameState {
    fn fork(&self) -> Option<Self> {
        GameState::fork(self)
    }
}

/// The machine for a focused set `A` over an interface `L`, with an
/// environment context for the scheduler and all non-focused participants.
pub struct ConcurrentMachine {
    iface: LayerInterface,
    focused: PidSet,
    env: EnvContext,
    fuel: u64,
}

impl ConcurrentMachine {
    /// Default scheduler-decision budget.
    pub const DEFAULT_FUEL: u64 = 200_000;

    /// Creates a game machine over `iface` focused on `focused`, with
    /// environment context `env` (scheduler + strategies of participants
    /// outside `focused`).
    pub fn new(iface: LayerInterface, focused: PidSet, env: EnvContext) -> Self {
        Self {
            iface,
            focused,
            env,
            fuel: Self::DEFAULT_FUEL,
        }
    }

    /// Overrides the turn budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs the game: every focused participant executes its script to
    /// completion under the environment context's schedule.
    ///
    /// # Errors
    ///
    /// * [`MachineError::Stuck`] and friends if any participant's run
    ///   fails;
    /// * [`MachineError::GuaranteeViolated`] if a focused step breaks the
    ///   guarantee;
    /// * [`MachineError::RelyViolated`] / unfair [`MachineError::Env`] when
    ///   the context is invalid (callers treat these as vacuous);
    /// * [`MachineError::OutOfFuel`] if the game does not finish within the
    ///   turn budget (livelock / starvation).
    pub fn run(
        &self,
        programs: &BTreeMap<Pid, ThreadScript>,
    ) -> Result<ConcurrentOutcome, MachineError> {
        self.run_traced(programs).0
    }

    /// [`ConcurrentMachine::run`], additionally returning the global log as
    /// it stood when the run ended — including on *failure*, where
    /// [`MachineError`] alone carries no events. The failure-forensics
    /// pipeline reifies this partial log into a replayable scripted
    /// context. On success the returned log equals the outcome's (the log
    /// is copy-on-write, so the extra clone is a reference-count bump).
    pub fn run_traced(
        &self,
        programs: &BTreeMap<Pid, ThreadScript>,
    ) -> (Result<ConcurrentOutcome, MachineError>, Log) {
        self.run_traced_with_snapshots(programs, &mut |_| {})
    }

    /// [`ConcurrentMachine::run_traced`] with a snapshot hook invoked just
    /// *before* every scheduler decision — the cut points of the
    /// query-point snapshot trie. At hook time the state has consumed
    /// exactly [`GameState::sched_consumed`] schedule slots.
    pub fn run_traced_with_snapshots(
        &self,
        programs: &BTreeMap<Pid, ThreadScript>,
        hook: &mut dyn FnMut(&GameState),
    ) -> (Result<ConcurrentOutcome, MachineError>, Log) {
        self.run_traced_from(self.init_state(programs), hook)
    }

    /// Drives a [`GameState`] — fresh from
    /// [`ConcurrentMachine::init_state`] or forked from a snapshot — to
    /// completion, with the same snapshot hook as
    /// [`ConcurrentMachine::run_traced_with_snapshots`]. A forked state
    /// must be resumed on a machine whose environment context agrees with
    /// the snapshot's on the schedule prefix already consumed.
    pub fn run_traced_from(
        &self,
        st: GameState,
        hook: &mut dyn FnMut(&GameState),
    ) -> (Result<ConcurrentOutcome, MachineError>, Log) {
        match self.run_traced_from_ctl(st, &mut |s| {
            hook(s);
            false
        }) {
            Ok(r) => r,
            Err(_) => unreachable!("a never-aborting hook cannot abort the game"),
        }
    }

    /// Abort-capable [`ConcurrentMachine::run_traced_from`]: the hook runs
    /// just before every scheduler decision and may return `true` to stop
    /// the game at that cut point, in which case the state — left exactly
    /// at the cut — comes back as `Err`. This is how the convergence cache
    /// completes a game whose remaining suffix it has already explored
    /// from a fingerprint-identical state: abort at the cut, then graft
    /// the cached suffix onto the aborted state's log.
    pub fn run_traced_from_ctl(
        &self,
        mut st: GameState,
        hook: &mut dyn FnMut(&GameState) -> bool,
    ) -> Result<(Result<ConcurrentOutcome, MachineError>, Log), GameState> {
        while !st.all_done() {
            if hook(&st) {
                return Err(st);
            }
            if let Err(e) = self.step_turn(&mut st) {
                return Ok((Err(e), st.log));
            }
        }
        let log = st.log.clone();
        Ok((Ok(st.into_outcome()), log))
    }

    /// Initializes the game state for a program assignment.
    ///
    /// # Panics
    ///
    /// If a program is given for a participant outside the focused set.
    pub fn init_state(&self, programs: &BTreeMap<Pid, ThreadScript>) -> GameState {
        for pid in programs.keys() {
            assert!(
                self.focused.contains(*pid),
                "program given for non-focused participant {pid}"
            );
        }
        let players: BTreeMap<Pid, Player> = self
            .focused
            .iter()
            .map(|pid| {
                let script = Arc::new(programs.get(&pid).cloned().unwrap_or_default());
                let done = script.is_empty();
                (
                    pid,
                    Player {
                        script,
                        next_call: 0,
                        run: None,
                        rets: Vec::new(),
                        done,
                    },
                )
            })
            .collect();
        GameState {
            players,
            abs: self.iface.init_abs.clone(),
            log: Log::new(),
            turns: 0,
            last_progress: (0, 0, 0),
            stalled_for: 0,
        }
    }

    /// Takes one turn: one scheduler decision, then either an environment
    /// player's move or a focused player's advance to its next query
    /// point. Callers must check [`GameState::all_done`] first.
    ///
    /// Stall detection: if no observable progress (non-scheduling events,
    /// completed calls, finished players) happens for `64 * (|A| + 4)`
    /// consecutive turns, the game is livelocked — report starvation early
    /// instead of burning the whole budget on scheduling events. The stall
    /// counters live in the [`GameState`] so a forked snapshot resumes
    /// with *identical* stall behavior.
    ///
    /// # Errors
    ///
    /// See [`ConcurrentMachine::run`].
    pub fn step_turn(&self, st: &mut GameState) -> Result<(), MachineError> {
        if st.turns >= self.fuel {
            return Err(MachineError::OutOfFuel { budget: self.fuel });
        }
        let stall_limit: u64 = 64 * (self.focused.len() as u64 + 4);
        let progress = (
            st.log.iter().filter(|e| !e.is_sched()).count(),
            st.players.values().map(|p| p.rets.len()).sum::<usize>(),
            st.players.values().filter(|p| p.done).count(),
        );
        if progress == st.last_progress {
            st.stalled_for += 1;
            if st.stalled_for > stall_limit {
                return Err(MachineError::OutOfFuel { budget: self.fuel });
            }
        } else {
            st.last_progress = progress;
            st.stalled_for = 0;
        }
        st.turns += 1;
        // One scheduler decision.
        let target = self.schedule_one(&mut st.log)?;
        if !self.focused.contains(target) {
            // Environment participant: play its strategy move.
            match self.env.player(target).next_move(&st.log) {
                StrategyMove::Emit(evs) => st.log.append_all(evs),
                StrategyMove::Finish(_) => {}
                StrategyMove::Stuck => {
                    return Err(MachineError::Env(crate::env::EnvError::PlayerStuck {
                        pid: target,
                        log_len: st.log.len(),
                    }));
                }
            }
            return self.check_rely(&st.log);
        }
        // Focused participant: advance to its next query point.
        let player = st.players.get_mut(&target).expect("focused player exists");
        self.advance_player(target, player, &mut st.log, &mut st.abs)?;
        self.check_guarantee(target, &st.log)
    }

    /// Asks the scheduler strategy for exactly one scheduling event.
    fn schedule_one(&self, log: &mut Log) -> Result<Pid, MachineError> {
        match self.env.scheduler().next_move(log) {
            StrategyMove::Emit(evs) => match evs.as_slice() {
                [e] => {
                    if let EventKind::HwSched(p) = e.kind {
                        log.append(e.clone());
                        Ok(p)
                    } else {
                        Err(MachineError::Env(crate::env::EnvError::SchedulerStuck {
                            log_len: log.len(),
                        }))
                    }
                }
                _ => Err(MachineError::Env(crate::env::EnvError::SchedulerStuck {
                    log_len: log.len(),
                })),
            },
            _ => Err(MachineError::Env(crate::env::EnvError::SchedulerStuck {
                log_len: log.len(),
            })),
        }
    }

    /// Advances one focused participant until it reaches a real query
    /// point (outside the critical state), finishes its script, or errs.
    fn advance_player(
        &self,
        pid: Pid,
        player: &mut Player,
        log: &mut Log,
        abs: &mut AbsState,
    ) -> Result<(), MachineError> {
        let mut inner_fuel = self.fuel;
        loop {
            if inner_fuel == 0 {
                return Err(MachineError::OutOfFuel { budget: self.fuel });
            }
            inner_fuel -= 1;
            if player.run.is_none() {
                match player.script.get(player.next_call) {
                    Some((name, args)) => {
                        let run = self.iface.prim(name)?.instantiate(pid, args.clone());
                        player.run = Some(run);
                        player.next_call += 1;
                    }
                    None => {
                        player.done = true;
                        return Ok(());
                    }
                }
            }
            let step = {
                let run = player.run.as_mut().expect("active run");
                let mut ctx = PrimCtx {
                    pid,
                    abs,
                    log,
                    iface: &self.iface,
                };
                run.resume(&mut ctx)?
            };
            match step {
                PrimStep::Done(v) => {
                    player.rets.push(v);
                    player.run = None;
                    // Loop: the next call starts within this turn; if it is
                    // a shared primitive it will immediately hit its query
                    // point and yield the turn.
                }
                PrimStep::Query => {
                    // In the critical state the machine does not query and
                    // keeps control (§2); otherwise the turn ends here.
                    if !self.iface.is_critical(pid, log) {
                        return Ok(());
                    }
                }
            }
        }
    }

    fn check_rely(&self, log: &Log) -> Result<(), MachineError> {
        for pid in self.focused.iter() {
            if let Some(inv) = self.iface.conditions.rely.first_violation(pid, log) {
                return Err(MachineError::RelyViolated {
                    invariant: inv.name().to_owned(),
                    pid,
                });
            }
        }
        Ok(())
    }

    fn check_guarantee(&self, pid: Pid, log: &Log) -> Result<(), MachineError> {
        if let Some(inv) = self.iface.conditions.guarantee.first_violation(pid, log) {
            return Err(MachineError::GuaranteeViolated {
                invariant: inv.name().to_owned(),
                pid,
                log_len: log.len(),
            });
        }
        Ok(())
    }
}

impl fmt::Debug for ConcurrentMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConcurrentMachine")
            .field("iface", &self.iface.name)
            .field("focused", &self.focused.to_string())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::PrimSpec;
    use crate::strategy::RoundRobinScheduler;
    use std::sync::Arc;

    fn counter_iface() -> LayerInterface {
        LayerInterface::builder("L-counter")
            .prim(PrimSpec::atomic("bump", |ctx, _| {
                ctx.emit(EventKind::Prim("bump".into(), vec![]));
                let n = ctx
                    .log
                    .iter()
                    .filter(|e| matches!(&e.kind, EventKind::Prim(p, _) if p == "bump"))
                    .count();
                Ok(Val::Int(n as i64))
            }))
            .build()
    }

    fn two_focused() -> (PidSet, EnvContext) {
        (
            PidSet::from_pids([Pid(0), Pid(1)]),
            EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2))),
        )
    }

    #[test]
    fn interleaves_two_participants() {
        let (focused, env) = two_focused();
        let m = ConcurrentMachine::new(counter_iface(), focused, env);
        let mut programs = BTreeMap::new();
        programs.insert(Pid(0), vec![("bump".to_owned(), vec![]); 2]);
        programs.insert(Pid(1), vec![("bump".to_owned(), vec![]); 2]);
        let out = m.run(&programs).unwrap();
        assert_eq!(out.log.count_by(Pid(0)), 2);
        assert_eq!(out.log.count_by(Pid(1)), 2);
        // Return values observe the global (interleaved) counter: the
        // multiset of all returns is {1, 2, 3, 4}.
        let mut all: Vec<i64> = out
            .rets
            .values()
            .flatten()
            .map(|v| v.as_int().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4]);
    }

    #[test]
    fn round_robin_alternates_bumps() {
        let (focused, env) = two_focused();
        let m = ConcurrentMachine::new(counter_iface(), focused, env);
        let mut programs = BTreeMap::new();
        programs.insert(Pid(0), vec![("bump".to_owned(), vec![]); 2]);
        programs.insert(Pid(1), vec![("bump".to_owned(), vec![]); 2]);
        let out = m.run(&programs).unwrap();
        let authors: Vec<Pid> = out.log.without_sched().iter().map(|e| e.pid).collect();
        assert_eq!(authors, vec![Pid(0), Pid(1), Pid(0), Pid(1)]);
    }

    #[test]
    fn environment_players_interleave_with_focused() {
        use crate::strategy::ScriptPlayer;
        let focused = PidSet::singleton(Pid(0));
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2))).with_player(
            Pid(1),
            Arc::new(ScriptPlayer::new(
                Pid(1),
                vec![vec![crate::event::Event::prim(Pid(1), "noise", vec![])]],
            )),
        );
        let m = ConcurrentMachine::new(counter_iface(), focused, env);
        let mut programs = BTreeMap::new();
        programs.insert(Pid(0), vec![("bump".to_owned(), vec![])]);
        let out = m.run(&programs).unwrap();
        assert_eq!(out.log.count_by(Pid(1)), 1, "env noise recorded");
    }

    #[test]
    fn empty_programs_finish_immediately() {
        let (focused, env) = two_focused();
        let m = ConcurrentMachine::new(counter_iface(), focused, env);
        let out = m.run(&BTreeMap::new()).unwrap();
        assert!(out.log.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-focused")]
    fn rejects_program_for_unfocused_pid() {
        let (_, env) = two_focused();
        let m = ConcurrentMachine::new(counter_iface(), PidSet::singleton(Pid(0)), env);
        let mut programs = BTreeMap::new();
        programs.insert(Pid(5), vec![("bump".to_owned(), vec![])]);
        let _ = m.run(&programs);
    }

    #[test]
    fn starvation_is_out_of_fuel() {
        // Scheduler that only ever schedules p0, while p1 has work.
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::new(vec![Pid(0)])));
        let m = ConcurrentMachine::new(
            counter_iface(),
            PidSet::from_pids([Pid(0), Pid(1)]),
            env,
        )
        .with_fuel(64);
        let mut programs = BTreeMap::new();
        programs.insert(Pid(1), vec![("bump".to_owned(), vec![])]);
        let err = m.run(&programs).unwrap_err();
        assert!(matches!(err, MachineError::OutOfFuel { .. }));
    }

    #[test]
    fn run_traced_returns_the_partial_log_on_failure() {
        // Same starving setup: the run fails, but the traced log still
        // carries the scheduling events the game played before dying.
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::new(vec![Pid(0)])));
        let m = ConcurrentMachine::new(
            counter_iface(),
            PidSet::from_pids([Pid(0), Pid(1)]),
            env,
        )
        .with_fuel(64);
        let mut programs = BTreeMap::new();
        programs.insert(Pid(1), vec![("bump".to_owned(), vec![])]);
        let (res, log) = m.run_traced(&programs);
        assert!(res.is_err());
        assert!(!log.is_empty(), "the partial log is preserved");
        assert!(log.iter().all(|e| e.pid == Pid(0)));
    }

    #[test]
    fn run_traced_matches_run_on_success() {
        let (focused, env) = two_focused();
        let m = ConcurrentMachine::new(counter_iface(), focused, env);
        let mut programs = BTreeMap::new();
        programs.insert(Pid(0), vec![("bump".to_owned(), vec![]); 2]);
        let (res, log) = m.run_traced(&programs);
        let out = res.unwrap();
        assert_eq!(out.log, log);
    }
}
