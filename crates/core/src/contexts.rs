//! Environment-context generation for bounded verification.
//!
//! The paper quantifies over *all* valid environment contexts; the Rust
//! reproduction checks obligations over a generated family of contexts:
//! every schedule prefix of a bounded length (optionally sampled when the
//! space is large), each combined with configurable environment-player
//! strategies and completed by a fair round-robin scheduler.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::env::EnvContext;
use crate::id::Pid;
use crate::strategy::{ScriptScheduler, Strategy};

/// A generator of environment contexts.
///
/// # Examples
///
/// ```
/// use ccal_core::contexts::ContextGen;
/// use ccal_core::id::Pid;
///
/// let gen = ContextGen::new(vec![Pid(0), Pid(1)]).with_schedule_len(3);
/// let ctxs = gen.contexts();
/// assert_eq!(ctxs.len(), 8); // 2^3 schedule prefixes
/// ```
#[derive(Clone)]
pub struct ContextGen {
    /// The participant domain `D`.
    pub domain: Vec<Pid>,
    players: BTreeMap<Pid, Arc<dyn Strategy>>,
    schedule_len: usize,
    max_contexts: usize,
    fuel: u64,
}

impl ContextGen {
    /// Creates a generator over the given domain with no environment
    /// players (idle environment), schedule prefix length 4, and at most
    /// 256 contexts.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is empty.
    pub fn new(domain: Vec<Pid>) -> Self {
        assert!(!domain.is_empty(), "context domain must be non-empty");
        Self {
            domain,
            players: BTreeMap::new(),
            schedule_len: 4,
            max_contexts: 256,
            fuel: EnvContext::DEFAULT_FUEL,
        }
    }

    /// Sets the strategy of environment participant `pid` in every
    /// generated context.
    pub fn with_player(mut self, pid: Pid, strategy: Arc<dyn Strategy>) -> Self {
        self.players.insert(pid, strategy);
        self
    }

    /// Sets the enumerated schedule prefix length. The number of contexts
    /// is `|domain|^len` before capping.
    pub fn with_schedule_len(mut self, len: usize) -> Self {
        self.schedule_len = len;
        self
    }

    /// Caps the number of generated contexts; when the enumeration is
    /// larger, prefixes are sampled with a deterministic stride.
    pub fn with_max_contexts(mut self, max: usize) -> Self {
        self.max_contexts = max.max(1);
        self
    }

    /// Sets the per-query fuel (fairness bound) of generated contexts.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Total number of schedule prefixes before capping.
    pub fn space_size(&self) -> usize {
        self.domain.len().pow(self.schedule_len as u32)
    }

    fn prefix(&self, mut index: usize) -> Vec<Pid> {
        let n = self.domain.len();
        let mut script = Vec::with_capacity(self.schedule_len);
        for _ in 0..self.schedule_len {
            script.push(self.domain[index % n]);
            index /= n;
        }
        script
    }

    fn make_context(&self, script: Vec<Pid>) -> EnvContext {
        let scheduler = ScriptScheduler::new(script, self.domain.clone());
        let mut env = EnvContext::new(Arc::new(scheduler)).with_fuel(self.fuel);
        for (pid, s) in &self.players {
            env = env.with_player(*pid, s.clone());
        }
        env
    }

    /// Generates the context family: every schedule prefix of the
    /// configured length (sampled deterministically when larger than the
    /// cap), each completed by fair round-robin.
    pub fn contexts(&self) -> Vec<EnvContext> {
        let total = self.space_size();
        let take = total.min(self.max_contexts);
        let stride = total.div_ceil(take).max(1);
        (0..total)
            .step_by(stride)
            .take(take)
            .map(|i| self.make_context(self.prefix(i)))
            .collect()
    }

    /// A single fair round-robin context (no scripted prefix) — the
    /// cheapest smoke-test context.
    pub fn round_robin(&self) -> EnvContext {
        self.make_context(Vec::new())
    }
}

impl std::fmt::Debug for ContextGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContextGen")
            .field("domain", &self.domain)
            .field("schedule_len", &self.schedule_len)
            .field("max_contexts", &self.max_contexts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::PidSet;
    use crate::log::Log;

    #[test]
    fn enumerates_full_space_when_small() {
        let gen = ContextGen::new(vec![Pid(0), Pid(1)]).with_schedule_len(2);
        assert_eq!(gen.space_size(), 4);
        assert_eq!(gen.contexts().len(), 4);
    }

    #[test]
    fn caps_and_samples_large_spaces() {
        let gen = ContextGen::new(vec![Pid(0), Pid(1), Pid(2)])
            .with_schedule_len(6)
            .with_max_contexts(10);
        let ctxs = gen.contexts();
        assert!(ctxs.len() <= 10);
        assert!(!ctxs.is_empty());
    }

    #[test]
    fn generated_contexts_are_usable() {
        let gen = ContextGen::new(vec![Pid(0), Pid(1)]).with_schedule_len(2);
        for env in gen.contexts() {
            let mut log = Log::new();
            let got = env
                .extend_until_focused(&PidSet::singleton(Pid(1)), &mut log)
                .unwrap();
            assert_eq!(got, Pid(1));
        }
    }

    #[test]
    fn distinct_prefixes_give_distinct_schedules() {
        let gen = ContextGen::new(vec![Pid(0), Pid(1)]).with_schedule_len(1);
        let ctxs = gen.contexts();
        let mut first_targets = Vec::new();
        for env in &ctxs {
            let mut log = Log::new();
            // Focused on both pids so the first sched event decides.
            let focused = PidSet::from_pids([Pid(0), Pid(1)]);
            let got = env.extend_until_focused(&focused, &mut log).unwrap();
            first_targets.push(got);
        }
        first_targets.sort_unstable();
        first_targets.dedup();
        assert_eq!(first_targets.len(), 2);
    }
}
