//! Environment-context generation for bounded verification.
//!
//! The paper quantifies over *all* valid environment contexts; the Rust
//! reproduction checks obligations over a generated family of contexts:
//! every schedule prefix of a bounded length (optionally sampled when the
//! space is large), each combined with configurable environment-player
//! strategies and completed by a fair round-robin scheduler.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::env::EnvContext;
use crate::id::Pid;
use crate::por::{self, PidIndependence};
use crate::prefix::{self, ScheduleKey};
use crate::strategy::{ScriptScheduler, Strategy};

/// A generator of environment contexts.
///
/// # Examples
///
/// ```
/// use ccal_core::contexts::ContextGen;
/// use ccal_core::id::Pid;
///
/// let gen = ContextGen::new(vec![Pid(0), Pid(1)]).with_schedule_len(3);
/// let ctxs = gen.contexts();
/// assert_eq!(ctxs.len(), 8); // 2^3 schedule prefixes
/// ```
#[derive(Clone)]
pub struct ContextGen {
    /// The participant domain `D`.
    pub domain: Vec<Pid>,
    players: BTreeMap<Pid, Arc<dyn Strategy>>,
    schedule_len: usize,
    max_contexts: usize,
    fuel: u64,
    por: bool,
    /// The prefix-sharing family id: every context minted by this generator
    /// instance carries it in its [`ScheduleKey`], so lower-run outcomes
    /// never cross generator boundaries (different players, domain, or
    /// fuel). Cloning the generator keeps the family — a clone mints
    /// contexts identical to the original's.
    family: u64,
    /// Whether [`ContextGen::with_family`] pinned the family. Structural
    /// setters debug-assert against running *after* the pin: they would
    /// silently discard it (resetting to a fresh counter value), which is
    /// never what a caller pinning for cross-request sharing wants.
    pinned: bool,
}

impl ContextGen {
    /// Creates a generator over the given domain with no environment
    /// players (idle environment), schedule prefix length 4, and at most
    /// 256 contexts.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is empty.
    pub fn new(domain: Vec<Pid>) -> Self {
        assert!(!domain.is_empty(), "context domain must be non-empty");
        Self {
            domain,
            players: BTreeMap::new(),
            schedule_len: 4,
            max_contexts: 256,
            fuel: EnvContext::DEFAULT_FUEL,
            por: por::por_enabled(),
            family: prefix::next_family(),
            pinned: false,
        }
    }

    fn reset_family(&mut self, setter: &str) {
        debug_assert!(
            !self.pinned,
            "ContextGen::{setter} after with_family would silently discard \
             the pinned prefix-sharing family; pin the family last"
        );
        self.family = prefix::next_family();
    }

    /// Sets the strategy of environment participant `pid` in every
    /// generated context. Starts a fresh prefix-sharing family: contexts
    /// minted before and after differ in behavior, so their lower-run
    /// outcomes must not be shared.
    pub fn with_player(mut self, pid: Pid, strategy: Arc<dyn Strategy>) -> Self {
        self.players.insert(pid, strategy);
        self.reset_family("with_player");
        self
    }

    /// Sets the enumerated schedule prefix length. The number of contexts
    /// is `|domain|^len` before capping. Starts a fresh prefix-sharing
    /// family (scripts of different lengths clamp consumed depths
    /// differently).
    pub fn with_schedule_len(mut self, len: usize) -> Self {
        self.schedule_len = len;
        self.reset_family("with_schedule_len");
        self
    }

    /// Caps the number of generated contexts; when the enumeration is
    /// larger, prefixes are sampled with a deterministic stride.
    pub fn with_max_contexts(mut self, max: usize) -> Self {
        self.max_contexts = max.max(1);
        self
    }

    /// Sets the per-query fuel (fairness bound) of generated contexts.
    /// Starts a fresh prefix-sharing family (the fuel bound is part of a
    /// run's behavior).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self.reset_family("with_fuel");
        self
    }

    /// Enables or disables partial-order-reduction marking (see
    /// [`crate::por`]). Defaults to [`por::por_enabled`] — on unless the
    /// process was started with `CCAL_POR=0`.
    pub fn with_por(mut self, por: bool) -> Self {
        self.por = por;
        self
    }

    /// Pins the prefix-sharing family id instead of the process-local
    /// counter value, so *separately constructed* generators — across
    /// units, requests or processes — mint contexts whose schedule keys
    /// can share memoized runs. The caller asserts that every generator
    /// pinned to `family` is configured identically (domain, players,
    /// schedule length, fuel): the certification service derives the
    /// family from the unit's semantic sharing key
    /// ([`crate::fingerprint::share_key`]), which covers exactly those
    /// inputs. Call *last* — the structural builder methods reset the
    /// family to a fresh counter value, and debug-assert if invoked
    /// after a pin rather than discarding it silently.
    pub fn with_family(mut self, family: u64) -> Self {
        self.family = family;
        self.pinned = true;
        self
    }

    /// Total number of schedule prefixes before capping, saturating at
    /// `usize::MAX` when `|domain|^len` overflows (so huge configurations
    /// sample rather than panic or wrap).
    pub fn space_size(&self) -> usize {
        self.domain
            .len()
            .checked_pow(self.schedule_len.try_into().unwrap_or(u32::MAX))
            .unwrap_or(usize::MAX)
    }

    fn prefix(&self, mut index: usize) -> Vec<Pid> {
        let n = self.domain.len();
        let mut script = Vec::with_capacity(self.schedule_len);
        for _ in 0..self.schedule_len {
            script.push(self.domain[index % n]);
            index /= n;
        }
        script
    }

    fn make_context(&self, script: Vec<Pid>) -> EnvContext {
        let key = ScheduleKey::new(self.family, script.clone(), self.domain.len());
        let scheduler = ScriptScheduler::new(script, self.domain.clone());
        let mut env = EnvContext::new(Arc::new(scheduler))
            .with_fuel(self.fuel)
            .with_schedule_key(key);
        for (pid, s) in &self.players {
            env = env.with_player(*pid, s.clone());
        }
        env
    }

    /// The independence relation over this generator's domain, derived from
    /// the registered players' declared alphabets (pids without a player —
    /// e.g. the focused pid — are opaque and dependent with everything).
    pub fn independence(&self) -> PidIndependence {
        PidIndependence::from_players(&self.domain, &self.players)
    }

    /// Grid indices marked redundant by the partial-order reduction: the
    /// non-canonical members of each Mazurkiewicz trace class. Empty when
    /// POR is disabled, when the independence relation is trivial, or when
    /// the grid is sampled rather than fully enumerated (marking a sampled
    /// grid could drop a trace whose canonical representative was never
    /// sampled).
    fn por_marked_indices(&self, total: usize, take: usize) -> BTreeSet<usize> {
        if !self.por || take != total {
            return BTreeSet::new();
        }
        let ind = self.independence();
        if ind.is_trivial() {
            return BTreeSet::new();
        }
        let canonical = por::canonical_index_set(&self.domain, self.schedule_len, &ind);
        (0..total).filter(|i| !canonical.contains(i)).collect()
    }

    /// Generates the context family: every schedule prefix of the
    /// configured length (sampled deterministically when larger than the
    /// cap), each completed by fair round-robin.
    ///
    /// When the grid is fully enumerated and the partial-order reduction is
    /// on, contexts whose schedule prefix is trace-equivalent to a
    /// lower-indexed one are included but marked
    /// [`EnvContext::is_por_equivalent`] — checkers running with reduction
    /// skip them, and the full grid stays available for differential runs.
    ///
    /// Sampling (when the space exceeds the cap) spreads indices evenly
    /// across the whole range *and* varies the low digits: sample `k` takes
    /// index `⌊k·total/take⌋ + (k mod ⌊total/take⌋)`, which is strictly
    /// increasing and in range, and exercises both early and late schedule
    /// slots (a plain stride with the least-significant-digit-first
    /// encoding would hold the early slots constant).
    pub fn contexts(&self) -> Vec<EnvContext> {
        let total = self.space_size();
        let take = total.min(self.max_contexts);
        let marked = self.por_marked_indices(total, take);
        self.sample_indices(total, take)
            .into_iter()
            .map(|i| {
                let env = self.make_context(self.prefix(i));
                if marked.contains(&i) {
                    env.mark_por_equivalent()
                } else {
                    env
                }
            })
            .collect()
    }

    fn sample_indices(&self, total: usize, take: usize) -> Vec<usize> {
        if take == total {
            return (0..total).collect();
        }
        let bucket = (total / take).max(1);
        (0..take)
            .map(|k| (k as u128 * total as u128 / take as u128) as usize + (k % bucket))
            .collect()
    }

    /// A single fair round-robin context (no scripted prefix) — the
    /// cheapest smoke-test context.
    pub fn round_robin(&self) -> EnvContext {
        self.make_context(Vec::new())
    }
}

impl std::fmt::Debug for ContextGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContextGen")
            .field("domain", &self.domain)
            .field("schedule_len", &self.schedule_len)
            .field("max_contexts", &self.max_contexts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::PidSet;
    use crate::log::Log;

    #[test]
    fn enumerates_full_space_when_small() {
        let gen = ContextGen::new(vec![Pid(0), Pid(1)]).with_schedule_len(2);
        assert_eq!(gen.space_size(), 4);
        assert_eq!(gen.contexts().len(), 4);
    }

    #[test]
    fn caps_and_samples_large_spaces() {
        let gen = ContextGen::new(vec![Pid(0), Pid(1), Pid(2)])
            .with_schedule_len(6)
            .with_max_contexts(10);
        let ctxs = gen.contexts();
        assert!(ctxs.len() <= 10);
        assert!(!ctxs.is_empty());
    }

    #[test]
    fn generated_contexts_are_usable() {
        let gen = ContextGen::new(vec![Pid(0), Pid(1)]).with_schedule_len(2);
        for env in gen.contexts() {
            let mut log = Log::new();
            let got = env
                .extend_until_focused(&PidSet::singleton(Pid(1)), &mut log)
                .unwrap();
            assert_eq!(got, Pid(1));
        }
    }

    #[test]
    fn space_size_saturates_instead_of_overflowing() {
        // Regression: `2usize.pow(64)` used to panic in debug builds and
        // wrap to 0 in release, making `contexts()` divide by zero.
        let gen = ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(64)
            .with_max_contexts(8);
        assert_eq!(gen.space_size(), usize::MAX);
        assert_eq!(gen.contexts().len(), 8);
    }

    #[test]
    fn sampling_covers_first_and_last_schedule_slots() {
        // Regression: a plain index stride of `total/take` with the
        // least-significant-digit-first prefix encoding held the early
        // schedule slots constant (stride 256 ⇒ low 8 bits always zero)
        // and a truncating `step_by` never reached the tail.
        let gen = ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(16)
            .with_max_contexts(256);
        let total = gen.space_size();
        let indices = gen.sample_indices(total, 256);
        assert_eq!(indices.len(), 256);
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 256, "sampled indices are distinct");
        assert!(indices.iter().all(|&i| i < total));
        for slot in [0, 15] {
            let varied = indices
                .iter()
                .map(|&i| (i >> slot) & 1)
                .collect::<std::collections::BTreeSet<_>>();
            assert_eq!(varied.len(), 2, "schedule slot {slot} must vary");
        }
    }

    #[test]
    fn por_marks_only_non_canonical_contexts_on_full_grids() {
        use crate::id::Loc;
        use crate::strategy::ScratchPlayer;

        // Pids 1 and 2 are scratch players on disjoint locations; pid 0 is
        // opaque (focused). Classes collapse only across slots 1↔2.
        let gen = ContextGen::new(vec![Pid(0), Pid(1), Pid(2)])
            .with_schedule_len(3)
            .with_player(Pid(1), Arc::new(ScratchPlayer::new(Pid(1), Loc(50))))
            .with_player(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(51))))
            .with_por(true);
        let ctxs = gen.contexts();
        assert_eq!(ctxs.len(), 27, "the full grid is still generated");
        let marked = ctxs.iter().filter(|c| c.is_por_equivalent()).count();
        let expected_canonical =
            por::canonical_index_set(&gen.domain, 3, &gen.independence()).len();
        assert!(marked > 0, "independent players must yield pruning");
        assert_eq!(27 - marked, expected_canonical);

        // POR off, or a sampled grid, never marks.
        assert!(
            !gen.clone()
                .with_por(false)
                .contexts()
                .iter()
                .any(|c| c.is_por_equivalent())
        );
        assert!(
            !gen.with_max_contexts(10)
                .contexts()
                .iter()
                .any(|c| c.is_por_equivalent())
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "pin the family last")]
    fn structural_setter_after_family_pin_is_rejected() {
        let _ = ContextGen::new(vec![Pid(0)])
            .with_family(7)
            .with_schedule_len(2);
    }

    #[test]
    fn non_structural_setters_keep_a_pinned_family() {
        // with_por / with_max_contexts do not reset the family, so they
        // may legally follow a pin.
        let ctxs = ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(1)
            .with_family(99)
            .with_por(false)
            .with_max_contexts(16)
            .contexts();
        assert!(ctxs.iter().all(|c| c.schedule_key().unwrap().family() == 99));
    }

    #[test]
    fn distinct_prefixes_give_distinct_schedules() {
        let gen = ContextGen::new(vec![Pid(0), Pid(1)]).with_schedule_len(1);
        let ctxs = gen.contexts();
        let mut first_targets = Vec::new();
        for env in &ctxs {
            let mut log = Log::new();
            // Focused on both pids so the first sched event decides.
            let focused = PidSet::from_pids([Pid(0), Pid(1)]);
            let got = env.extend_until_focused(&focused, &mut log).unwrap();
            first_targets.push(got);
        }
        first_targets.sort_unstable();
        first_targets.dedup();
        assert_eq!(first_targets.len(), 2);
    }
}
