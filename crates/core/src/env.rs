//! Environment contexts.
//!
//! "Each environment context (denoted as `E`) provides a strategy for its
//! 'environment', i.e., the union of the strategies by the scheduler plus
//! those participants not in `A`" (§2). Given an environment context,
//! execution of a program over `L[A]` is *deterministic* — all
//! nondeterminism lives in the choice of `E`, which verifiers enumerate.
//!
//! [`EnvContext::extend_until_focused`] implements the query process
//! `E[A, l]` of §3.2: "at each query point, the machine repeatedly queries
//! `E` ... and this querying continues until there is a hardware transition
//! event back to `A`".

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::event::EventKind;
use crate::id::{Pid, PidSet};
use crate::log::Log;
use crate::prefix::ScheduleKey;
use crate::strategy::{IdleStrategy, Strategy, StrategyMove};

/// Error produced while querying an environment context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvError {
    /// The scheduler strategy was stuck or emitted a non-scheduling move.
    SchedulerStuck {
        /// Length of the log at the failure.
        log_len: usize,
    },
    /// An environment participant's strategy was stuck.
    PlayerStuck {
        /// The stuck participant.
        pid: Pid,
        /// Length of the log at the failure.
        log_len: usize,
    },
    /// The query fuel ran out before control returned to the focused set —
    /// the scheduler was unfair beyond the assumed bound.
    Unfair {
        /// The fuel that was exhausted.
        fuel: u64,
    },
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::SchedulerStuck { log_len } => {
                write!(f, "scheduler strategy stuck at log length {log_len}")
            }
            EnvError::PlayerStuck { pid, log_len } => {
                write!(f, "environment player {pid} stuck at log length {log_len}")
            }
            EnvError::Unfair { fuel } => write!(
                f,
                "environment did not return control within {fuel} scheduling steps (unfair)"
            ),
        }
    }
}

impl std::error::Error for EnvError {}

/// An environment context `E`: a scheduler strategy plus one strategy per
/// environment participant (Fig. 7: `EC ∈ Id ⇀ Strategy`). Participants
/// without an explicit strategy are treated as [`IdleStrategy`] — "even if
/// a thread `t` is never created, the semantics ... is still well defined"
/// (§7, *Treatment of Parallel Composition*).
///
/// Contexts are cloned once per checked case by the bounded checker; the
/// player map is `Arc`-backed so a clone is two reference-count bumps
/// regardless of how many players the context carries.
#[derive(Clone)]
pub struct EnvContext {
    scheduler: Arc<dyn Strategy>,
    players: Arc<BTreeMap<Pid, Arc<dyn Strategy>>>,
    /// Fuel bound on a single query process; encodes the fairness bound
    /// `m` of the rely conditions (§4.1).
    fuel: u64,
    /// Whether this context is Mazurkiewicz-trace equivalent to another
    /// context with a smaller grid index (see [`crate::por`]); checkers
    /// running with partial-order reduction enabled skip it.
    por_equivalent: bool,
    /// The schedule script identity for prefix-sharing (see
    /// [`crate::prefix`]); set only by [`crate::contexts::ContextGen`].
    /// Contexts without a key — hand-built ones, scripted replay contexts —
    /// structurally bypass the prefix memo.
    schedule_key: Option<Arc<ScheduleKey>>,
}

impl EnvContext {
    /// Default fuel for the query process.
    pub const DEFAULT_FUEL: u64 = 10_000;

    /// Creates a context with the given scheduler and no players.
    pub fn new(scheduler: Arc<dyn Strategy>) -> Self {
        Self {
            scheduler,
            players: Arc::new(BTreeMap::new()),
            fuel: Self::DEFAULT_FUEL,
            por_equivalent: false,
            schedule_key: None,
        }
    }

    /// Attaches the schedule script identity that lets checkers share
    /// lower runs across contexts with common consumed prefixes (see
    /// [`crate::prefix`]). Only [`crate::contexts::ContextGen`] should set
    /// this: the key certifies that the context's scheduler is a
    /// [`crate::strategy::ScriptScheduler`] over exactly this script and
    /// that contexts of one family differ *only* in their scripts.
    pub fn with_schedule_key(mut self, key: ScheduleKey) -> Self {
        self.schedule_key = Some(Arc::new(key));
        self
    }

    /// The schedule script identity, if this context came from a generator
    /// grid.
    pub fn schedule_key(&self) -> Option<&ScheduleKey> {
        self.schedule_key.as_deref()
    }

    /// Adds (or replaces) the strategy of environment participant `pid`.
    pub fn with_player(mut self, pid: Pid, strategy: Arc<dyn Strategy>) -> Self {
        Arc::make_mut(&mut self.players).insert(pid, strategy);
        self
    }

    /// Sets the query-process fuel (fairness bound).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// The query-process fuel (fairness bound) — exposed so the forensics
    /// pipeline can carry it into serialized trace artifacts.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Marks this context as trace-equivalent to a lower-indexed context of
    /// the same grid (set by [`crate::contexts::ContextGen`] when the
    /// partial-order reduction proves the equivalence).
    pub fn mark_por_equivalent(mut self) -> Self {
        self.por_equivalent = true;
        self
    }

    /// Whether a lower-indexed trace-equivalent context exists, so a
    /// checker with [`crate::por::por_enabled`] reduction may skip this one
    /// without changing its verdict.
    pub fn is_por_equivalent(&self) -> bool {
        self.por_equivalent
    }

    /// The scheduler strategy `φ₀`.
    pub fn scheduler(&self) -> &Arc<dyn Strategy> {
        &self.scheduler
    }

    /// The strategy of participant `pid`, or the idle strategy.
    pub fn player(&self, pid: Pid) -> Arc<dyn Strategy> {
        self.players
            .get(&pid)
            .cloned()
            .unwrap_or_else(|| Arc::new(IdleStrategy))
    }

    /// The pids with explicitly registered strategies.
    pub fn player_pids(&self) -> impl Iterator<Item = Pid> + '_ {
        self.players.keys().copied()
    }

    /// The query process `E[A, l]` (§3.2): repeatedly asks the scheduler
    /// for the next participant; if it is outside `focused`, plays that
    /// participant's strategy move and continues; stops when control
    /// transfers to a member of `focused`, returning it.
    ///
    /// All generated events (scheduling events and environment events) are
    /// appended to `log`.
    ///
    /// # Errors
    ///
    /// * [`EnvError::SchedulerStuck`] if the scheduler has no move or emits
    ///   anything but a single scheduling event;
    /// * [`EnvError::PlayerStuck`] if an environment participant is stuck;
    /// * [`EnvError::Unfair`] if the fuel is exhausted before control
    ///   returns to `focused` — i.e. the scheduler violated the fairness
    ///   rely condition.
    pub fn extend_until_focused(&self, focused: &PidSet, log: &mut Log) -> Result<Pid, EnvError> {
        for _ in 0..self.fuel {
            if let Some(p) = self.extend_one(focused, log)? {
                return Ok(p);
            }
        }
        Err(EnvError::Unfair { fuel: self.fuel })
    }

    /// One turn of the query process: asks the scheduler for the next
    /// participant and, when it is outside `focused`, plays that
    /// participant's strategy move. All generated events are appended to
    /// `log`; returns the scheduled pid when control transferred to
    /// `focused` (whose strategy does *not* run), `None` otherwise. Each
    /// turn consumes exactly one schedule slot, which makes the machine
    /// state after it a per-slot cut point for the query-point snapshot
    /// trie (see [`crate::machine::LayerMachine::drive_with_snapshots`]).
    ///
    /// # Errors
    ///
    /// As [`EnvContext::extend_until_focused`], minus the fairness bound
    /// (a single turn cannot be unfair; the caller owns the loop).
    pub fn extend_one(&self, focused: &PidSet, log: &mut Log) -> Result<Option<Pid>, EnvError> {
        let target = match self.scheduler.next_move(log) {
            StrategyMove::Emit(evs) => match evs.as_slice() {
                [e] => {
                    if let EventKind::HwSched(p) = e.kind {
                        log.append(e.clone());
                        p
                    } else {
                        return Err(EnvError::SchedulerStuck { log_len: log.len() });
                    }
                }
                _ => return Err(EnvError::SchedulerStuck { log_len: log.len() }),
            },
            _ => return Err(EnvError::SchedulerStuck { log_len: log.len() }),
        };
        if focused.contains(target) {
            return Ok(Some(target));
        }
        match self.player(target).next_move(log) {
            StrategyMove::Emit(evs) => log.append_all(evs),
            StrategyMove::Finish(_) => {}
            StrategyMove::Stuck => {
                return Err(EnvError::PlayerStuck {
                    pid: target,
                    log_len: log.len(),
                });
            }
        }
        Ok(None)
    }

}

impl fmt::Debug for EnvContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnvContext")
            .field("scheduler", &self.scheduler.name())
            .field(
                "players",
                &self
                    .players
                    .iter()
                    .map(|(p, s)| (p.to_string(), s.name().to_owned()))
                    .collect::<Vec<_>>(),
            )
            .field("fuel", &self.fuel)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::strategy::{FnStrategy, RoundRobinScheduler, ScriptPlayer};

    #[test]
    fn query_process_stops_at_focused_pid() {
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(3)));
        let focused = PidSet::singleton(Pid(2));
        let mut log = Log::new();
        let got = env.extend_until_focused(&focused, &mut log).unwrap();
        assert_eq!(got, Pid(2));
        // Scheduler visited p0 and p1 first (idle moves), then p2.
        let scheds: Vec<_> = log.iter().filter(|e| e.is_sched()).collect();
        assert_eq!(scheds.len(), 3);
        assert_eq!(log.current_pid(), Some(Pid(2)));
    }

    #[test]
    fn environment_players_contribute_events() {
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2))).with_player(
            Pid(0),
            Arc::new(ScriptPlayer::new(
                Pid(0),
                vec![vec![Event::prim(Pid(0), "noise", vec![])]],
            )),
        );
        let focused = PidSet::singleton(Pid(1));
        let mut log = Log::new();
        env.extend_until_focused(&focused, &mut log).unwrap();
        assert_eq!(log.count_by(Pid(0)), 1, "p0 played its scripted event");
    }

    #[test]
    fn unfair_scheduler_exhausts_fuel() {
        // A scheduler that never schedules p1.
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::new(vec![Pid(0)]))).with_fuel(16);
        let focused = PidSet::singleton(Pid(1));
        let mut log = Log::new();
        let err = env.extend_until_focused(&focused, &mut log).unwrap_err();
        assert_eq!(err, EnvError::Unfair { fuel: 16 });
    }

    #[test]
    fn stuck_player_is_reported() {
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)))
            .with_player(Pid(0), Arc::new(FnStrategy::new("stuck", |_| StrategyMove::Stuck)));
        let focused = PidSet::singleton(Pid(1));
        let mut log = Log::new();
        let err = env.extend_until_focused(&focused, &mut log).unwrap_err();
        assert!(matches!(err, EnvError::PlayerStuck { pid: Pid(0), .. }));
    }

    #[test]
    fn bad_scheduler_move_is_reported() {
        let env = EnvContext::new(Arc::new(FnStrategy::new("bad", |_| {
            StrategyMove::Emit(vec![Event::prim(Pid(0), "not-sched", vec![])])
        })));
        let mut log = Log::new();
        let err = env
            .extend_until_focused(&PidSet::singleton(Pid(0)), &mut log)
            .unwrap_err();
        assert!(matches!(err, EnvError::SchedulerStuck { .. }));
    }
}
