//! Shared `CCAL_*` environment-flag parsing.
//!
//! Every process-wide tunable in the toolkit — `CCAL_POR`,
//! `CCAL_PREFIX_SHARE`, `CCAL_PREFIX_DEEP`, `CCAL_BYTECODE`, and the
//! numeric `CCAL_WORKERS` — accepts the same value grammar:
//!
//! * unset — the flag's default applies;
//! * `0` — the flag is off (the differential-debugging escape hatch);
//! * any other non-negative integer — the flag is on;
//! * anything else — a warning is printed to stderr **once per flag name**
//!   and the variable is ignored (the default applies).
//!
//! The grammar used to be copy-pasted per flag (five private
//! `parse_*`/`warn_*_once` pairs across `par`, `por` and `prefix`), which
//! let parsing behavior drift as flags were added. [`bool_flag`] is the
//! single implementation every boolean flag now routes through, and
//! [`warn_ignored`] is the one warn-once path shared with the numeric
//! `CCAL_WORKERS` parser.

use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// Parses a boolean flag value: `Some(false)` for `0`, `Some(true)` for
/// any other non-negative integer, `None` for anything unparseable.
pub fn parse_bool(raw: &str) -> Option<bool> {
    raw.trim().parse::<u64>().ok().map(|n| n != 0)
}

/// Per-name cache of resolved flag values: each flag's environment
/// variable is read and parsed once per process, exactly like the old
/// per-flag `OnceLock`s.
fn resolved() -> &'static Mutex<HashMap<String, bool>> {
    static CACHE: OnceLock<Mutex<HashMap<String, bool>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Reads the boolean `CCAL_*` flag `name`, returning `default` when the
/// variable is unset or unparseable (warning once per name in the latter
/// case). The resolved value is cached for the lifetime of the process.
pub fn bool_flag(name: &str, default: bool) -> bool {
    let mut cache = resolved()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&v) = cache.get(name) {
        return v;
    }
    let v = match std::env::var(name) {
        Ok(raw) => parse_bool(&raw).unwrap_or_else(|| {
            warn_ignored(name, &raw, "0 turns the flag off");
            default
        }),
        Err(_) => default,
    };
    cache.insert(name.to_owned(), v);
    v
}

/// Warns on stderr that an unparseable flag value is ignored — at most
/// once per flag name per process. `hint` spells out what `0` means for
/// this flag (e.g. `"0 means serial"` for `CCAL_WORKERS`).
pub fn warn_ignored(name: &str, raw: &str, hint: &str) {
    static WARNED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    let warned = WARNED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut warned = warned
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if warned.insert(name.to_owned()) {
        eprintln!(
            "ccal: ignoring unparseable {name}={raw:?} (expected a \
             non-negative integer; {hint})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bool_follows_the_shared_grammar() {
        assert_eq!(parse_bool("0"), Some(false));
        assert_eq!(parse_bool(" 0 "), Some(false));
        assert_eq!(parse_bool("1"), Some(true));
        assert_eq!(parse_bool(" 16\n"), Some(true));
        assert_eq!(parse_bool("yes"), None);
        assert_eq!(parse_bool(""), None);
        assert_eq!(parse_bool("-1"), None);
        assert_eq!(parse_bool("1.5"), None);
    }

    // Each test uses a unique variable name: the per-name cache is
    // process-global and tests run concurrently.

    #[test]
    fn unset_flag_returns_the_default() {
        assert!(bool_flag("CCAL_TEST_UNSET_A", true));
        assert!(!bool_flag("CCAL_TEST_UNSET_B", false));
    }

    #[test]
    fn zero_turns_the_flag_off() {
        std::env::set_var("CCAL_TEST_ZERO", "0");
        assert!(!bool_flag("CCAL_TEST_ZERO", true));
    }

    #[test]
    fn nonzero_turns_the_flag_on() {
        std::env::set_var("CCAL_TEST_ONE", "1");
        assert!(bool_flag("CCAL_TEST_ONE", false));
        std::env::set_var("CCAL_TEST_SIXTEEN", " 16 ");
        assert!(bool_flag("CCAL_TEST_SIXTEEN", false));
    }

    #[test]
    fn garbage_is_ignored_and_the_default_applies() {
        std::env::set_var("CCAL_TEST_GARBAGE_ON", "banana");
        assert!(bool_flag("CCAL_TEST_GARBAGE_ON", true));
        std::env::set_var("CCAL_TEST_GARBAGE_OFF", "-3");
        assert!(!bool_flag("CCAL_TEST_GARBAGE_OFF", false));
    }

    #[test]
    fn the_first_read_is_cached() {
        std::env::set_var("CCAL_TEST_CACHED", "0");
        assert!(!bool_flag("CCAL_TEST_CACHED", true));
        // Changing the environment after the first read has no effect —
        // the old per-flag `OnceLock` semantics.
        std::env::set_var("CCAL_TEST_CACHED", "1");
        assert!(!bool_flag("CCAL_TEST_CACHED", true));
    }
}
