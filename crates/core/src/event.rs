//! Observable events and the global log.
//!
//! Shared-primitive calls are the only observable actions in the paper's
//! model: "each shared primitive call (together with its arguments) is
//! recorded as an observable event appended to the end of the global log"
//! (§2). Hardware scheduling decisions are also recorded (§3.1). All shared
//! state is a *function of the log*, reconstructed by replay functions
//! ([`crate::replay`]).
//!
//! The event vocabulary below covers every layer built by the toolkit
//! (spinlocks, shared queues, schedulers, queuing locks, condition
//! variables, IPC) plus a generic [`EventKind::Prim`] escape hatch for
//! client-defined primitives such as `f`, `g` and `foo` of Fig. 3.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::id::{Loc, Pid, QId};
use crate::val::Val;

/// The action recorded by an event, without its author.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A hardware (or software) scheduling transition handing control to
    /// the given participant (§3.1). Recorded by the scheduler strategy
    /// `φ0`, the "judge of the game" (§2).
    HwSched(Pid),
    /// `c.pull(b)`: acquire ownership of shared location `b` (Fig. 6/8).
    Pull(Loc),
    /// `c.push(b, v)`: release ownership of `b`, publishing value `v`
    /// (Fig. 6/8).
    Push(Loc, Val),
    /// `c.FAI_t(b)`: fetch-and-increment the next-ticket field of the
    /// ticket lock at `b` (§2, Fig. 3).
    FaiT(Loc),
    /// `c.get_n(b)`: read the now-serving field of the ticket lock at `b`.
    GetN(Loc),
    /// `c.inc_n(b)`: increment the now-serving field (lock release).
    IncN(Loc),
    /// `c.hold(b)`: the no-op announcing the lock has been taken (§2).
    Hold(Loc),
    /// `c.acq(b)`: the *atomic* lock-acquire event of the lifted interface
    /// `L1` (§2).
    Acq(Loc),
    /// `c.rel(b)`: the atomic lock-release event of `L1`.
    Rel(Loc),
    /// MCS lock: atomically swap the tail pointer of the lock at `b` to the
    /// caller's queue node; the previous tail is recovered by replay.
    McsSwap(Loc),
    /// MCS lock: compare-and-swap the tail from the caller's node to null;
    /// success is recovered by replay.
    McsCasTail(Loc),
    /// MCS lock: link the caller's node as successor of `pred`'s node.
    McsSetNext(Loc, Pid),
    /// MCS lock: read the caller's `locked` flag (spin step).
    McsGetLocked(Loc),
    /// MCS lock: clear the successor's `locked` flag (hand-off).
    McsGrant(Loc, Pid),
    /// Atomic shared-queue enqueue of a value into queue `q` (§4.2).
    EnQ(QId, Val),
    /// Atomic shared-queue dequeue from queue `q` (§4.2); the dequeued
    /// element is recovered by replay.
    DeQ(QId),
    /// `c.yield`: give up the CPU (§5.1).
    Yield,
    /// `c.sleep(i, lk)`: sleep on queue `i` while holding lock `lk`, which
    /// the primitive releases (§5.1).
    Sleep(QId, Loc),
    /// `c.wakeup(i)`: wake the first sleeper of queue `i` (§5.1); the woken
    /// thread (if any) is recovered by replay.
    Wakeup(QId),
    /// Queuing-lock acquire (atomic interface of §5.4).
    AcqQ(Loc),
    /// Queuing-lock release.
    RelQ(Loc),
    /// Condition-variable wait (releases and re-acquires its queuing lock).
    CvWait(QId),
    /// Condition-variable signal.
    CvSignal(QId),
    /// Condition-variable broadcast.
    CvBroadcast(QId),
    /// Synchronous IPC send of a value into channel `q` (§6 lists IPC among
    /// the layers built with the toolkit).
    IpcSend(QId, Val),
    /// Synchronous IPC receive from channel `q`.
    IpcRecv(QId),
    /// A generic named primitive call with its arguments — e.g. `i.f`,
    /// `i.g`, `i.foo` of Fig. 3, or any client-defined atomic object.
    Prim(String, Vec<Val>),
}

/// One shared resource an event may touch. Used by the independence
/// relation of the partial-order reduction ([`crate::por`]): two events
/// can only commute when their footprints are disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Footprint {
    /// A shared memory location.
    Loc(Loc),
    /// A shared queue / channel.
    Queue(QId),
    /// Everything — the event's effect cannot be localized (scheduling
    /// transitions, generic [`EventKind::Prim`] calls, `yield`). A global
    /// footprint conflicts with every footprint, including another global
    /// one.
    Global,
}

impl Footprint {
    /// Whether two footprints touch a common resource. [`Footprint::Global`]
    /// overlaps everything.
    pub fn overlaps(&self, other: &Footprint) -> bool {
        matches!(self, Footprint::Global) || matches!(other, Footprint::Global) || self == other
    }
}

/// How the footprint of a generic [`EventKind::Prim`] event with a given
/// name is derived. Declared by object authors via
/// [`declare_prim_footprint`]; undeclared primitives stay
/// [`PrimFootprint::Global`], the conservative default.
///
/// A declaration is a *soundness claim* about the abstraction the event
/// lives under: the replay functions and simulation relations consuming
/// the event must depend only on the declared resources (and on the
/// per-author event order, which the independence relation always
/// preserves). In exchange, the partial-order reduction's alphabet gets
/// finer and more context pairs become trace-equivalent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimFootprint {
    /// The footprints are exactly the [`Val::Loc`] arguments of the event
    /// — e.g. `ql_take(b)` touches `b`. An event with no location
    /// arguments has an *empty* footprint: it touches no shared resource
    /// and commutes (footprint-wise) with everything, like the pure `f`
    /// and `g` calls of Fig. 3, which the `R₂` abstraction buffers
    /// per-author and erases.
    Args,
    /// A fixed footprint set, independent of the event's arguments.
    Fixed(Vec<Footprint>),
    /// Everything — the effect cannot be localized.
    Global,
}

/// The process-global primitive-footprint registry, plus the bookkeeping
/// needed to detect *time-sensitive* declarations: POR equivalence is
/// stamped on contexts at grid-generation time, so a declaration landing
/// after `name`'s footprint was already consulted cannot retroactively fix
/// the marks on grids generated under the earlier derivation.
#[derive(Default)]
struct PrimFootprintRegistry {
    map: HashMap<String, PrimFootprint>,
    /// Names whose effective derivation has been consulted at least once
    /// (including consultations answered by the undeclared
    /// [`PrimFootprint::Global`] default).
    consulted: std::collections::HashSet<String>,
    /// Names already warned about, so the stderr note fires once per name.
    warned: std::collections::HashSet<String>,
}

fn prim_footprint_registry() -> &'static Mutex<PrimFootprintRegistry> {
    static REG: OnceLock<Mutex<PrimFootprintRegistry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(PrimFootprintRegistry::default()))
}

/// Declares how [`EventKind::Prim`] events named `name` derive their
/// footprint (process-global, like the relation-composition cache:
/// primitive names identify their objects across the toolkit).
/// Conflicting redeclarations widen to [`PrimFootprint::Global`] — two
/// objects disagreeing about a name means neither claim can be trusted.
/// Redeclaring the same derivation is idempotent.
///
/// Declare *before* generating context grids: POR-equivalence marks are
/// stamped at generation time, so a declaration that changes `name`'s
/// effective derivation after it has already been consulted leaves
/// earlier grids carrying marks computed under the old derivation. Such a
/// declaration still takes effect (later grids see it), but a warning is
/// printed to stderr once per name so the initialization-order hazard is
/// visible instead of silently splitting the process into two regimes.
pub fn declare_prim_footprint(name: &str, fp: PrimFootprint) {
    let mut reg = prim_footprint_registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let old = reg
        .map
        .get(name)
        .cloned()
        .unwrap_or(PrimFootprint::Global);
    let new = match reg.map.get(name) {
        Some(existing) if *existing != fp => PrimFootprint::Global,
        _ => fp,
    };
    if new != old && reg.consulted.contains(name) && reg.warned.insert(name.to_owned()) {
        eprintln!(
            "ccal: footprint of primitive `{name}` redeclared after use; context \
             grids generated earlier keep POR-equivalence marks computed under \
             the previous derivation — declare footprints before generating grids"
        );
    }
    reg.map.insert(name.to_owned(), new);
}

/// The declared footprint derivation for primitive `name`
/// ([`PrimFootprint::Global`] when undeclared).
pub fn prim_footprint(name: &str) -> PrimFootprint {
    let mut reg = prim_footprint_registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    reg.consulted.insert(name.to_owned());
    reg.map
        .get(name)
        .cloned()
        .unwrap_or(PrimFootprint::Global)
}

impl EventKind {
    /// Whether this kind is a scheduling transition.
    pub fn is_sched(&self) -> bool {
        matches!(self, EventKind::HwSched(_))
    }

    /// The shared resources this event touches. Conservative: anything
    /// whose effect cannot be pinned to a location or queue reports
    /// [`Footprint::Global`]. Generic [`EventKind::Prim`] events consult
    /// the [`declare_prim_footprint`] registry, so object authors can
    /// localize (or empty) the footprint of their named primitives.
    pub fn footprints(&self) -> Vec<Footprint> {
        use EventKind::*;
        match self {
            Pull(b) | Push(b, _) | FaiT(b) | GetN(b) | IncN(b) | Hold(b) | Acq(b) | Rel(b)
            | McsSwap(b) | McsCasTail(b) | McsSetNext(b, _) | McsGetLocked(b) | McsGrant(b, _)
            | AcqQ(b) | RelQ(b) => vec![Footprint::Loc(*b)],
            EnQ(q, _) | DeQ(q) | Wakeup(q) | CvWait(q) | CvSignal(q) | CvBroadcast(q)
            | IpcSend(q, _) | IpcRecv(q) => vec![Footprint::Queue(*q)],
            Sleep(q, lk) => vec![Footprint::Queue(*q), Footprint::Loc(*lk)],
            HwSched(_) | Yield => vec![Footprint::Global],
            Prim(name, args) => match prim_footprint(name) {
                PrimFootprint::Global => vec![Footprint::Global],
                PrimFootprint::Fixed(fs) => fs,
                PrimFootprint::Args => args
                    .iter()
                    .filter_map(|v| match v {
                        Val::Loc(b) => Some(Footprint::Loc(*b)),
                        _ => None,
                    })
                    .collect(),
            },
        }
    }

    /// Whether the event participates in a lock acquisition/hand-off
    /// protocol. The simulation relations of the toolkit preserve "the
    /// order of lock acquiring" (§2), so lock-ordered events are never
    /// treated as commuting with each other, even across different locks.
    pub fn is_lock_ordered(&self) -> bool {
        use EventKind::*;
        matches!(
            self,
            FaiT(_)
                | GetN(_)
                | IncN(_)
                | Hold(_)
                | Acq(_)
                | Rel(_)
                | McsSwap(_)
                | McsCasTail(_)
                | McsSetNext(..)
                | McsGetLocked(_)
                | McsGrant(..)
                | AcqQ(_)
                | RelQ(_)
                | Yield
                | Sleep(..)
                | Wakeup(_)
                | CvWait(_)
                | CvSignal(_)
                | CvBroadcast(_)
        )
    }

    /// Kind-level independence, ignoring authorship: neither kind is a
    /// scheduling transition, the two are not both lock-ordered, and their
    /// footprints are disjoint. [`independent`] adds the distinct-author
    /// requirement.
    pub fn independent_kinds(a: &EventKind, b: &EventKind) -> bool {
        if a.is_sched() || b.is_sched() {
            return false;
        }
        if a.is_lock_ordered() && b.is_lock_ordered() {
            return false;
        }
        let fa = a.footprints();
        b.footprints().iter().all(|fb| fa.iter().all(|x| !x.overlaps(fb)))
    }
}

/// The independence relation over events (the Mazurkiewicz trace alphabet
/// used by [`crate::por`]): two events commute when they have different
/// authors, neither is a scheduling transition, they are not both
/// lock-ordered, and they touch disjoint shared resources. Adjacent
/// independent events can be swapped in a log without changing any replayed
/// shared state or any footprint-local strategy's behavior.
pub fn independent(a: &Event, b: &Event) -> bool {
    a.pid != b.pid && EventKind::independent_kinds(&a.kind, &b.kind)
}

/// Replay-commutation: a *superset* of [`independent`] used only by the
/// convergence fingerprint's Foata normalization ([`crate::log::Log::conv_hash`]),
/// never by POR itself. Two events replay-commute when swapping them in a
/// log changes no replayed shared state, no per-author projection, and no
/// count any shipped strategy or invariant reads. Beyond footprint
/// disjointness this admits pairs acting on *disjoint fields of one
/// object* — the ticket lock's `FAI_t` (next-ticket field) against
/// `get_n`/`inc_n`/`hold` (now-serving field), and cross-author `get_n`
/// reads against each other — which POR's location-level footprints must
/// conservatively order. Like footprint declarations, each listed pair is
/// a soundness claim about the replay functions and strategies consuming
/// the events; the `CCAL_STATE_DEDUP=0` hatch turns the consumer off.
pub fn replay_commutes(a: &Event, b: &Event) -> bool {
    if a.pid == b.pid {
        return false;
    }
    if EventKind::independent_kinds(&a.kind, &b.kind) {
        return true;
    }
    use EventKind::*;
    match (&a.kind, &b.kind) {
        // Next-ticket field vs now-serving field of the same ticket lock:
        // every replay function counts them separately, and the shipped
        // strategies read "my ticket" (FAI_t order, preserved) and
        // "now serving" (inc_n count, preserved) but never the relative
        // order of the two counters.
        (FaiT(x), GetN(y) | IncN(y) | Hold(y)) | (GetN(x) | IncN(x) | Hold(x), FaiT(y)) => x == y,
        // Two pure reads of the now-serving field: no replay effect, and
        // each author's own read sequence is untouched.
        (GetN(x), GetN(y)) => x == y,
        _ => false,
    }
}

/// An observable event: an [`EventKind`] tagged with the participant that
/// generated it — the paper writes `i.FAI_t`, `c.pull(b)`, etc.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    /// The participant (CPU or thread) that produced the event. For
    /// scheduling events this is the participant *receiving* control.
    pub pid: Pid,
    /// The recorded action.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event authored by `pid`.
    pub fn new(pid: Pid, kind: EventKind) -> Self {
        Self { pid, kind }
    }

    /// Creates the scheduling event transferring control to `target`.
    pub fn sched(target: Pid) -> Self {
        Self::new(target, EventKind::HwSched(target))
    }

    /// Creates a generic named primitive event.
    pub fn prim(pid: Pid, name: &str, args: Vec<Val>) -> Self {
        Self::new(pid, EventKind::Prim(name.to_owned(), args))
    }

    /// Whether this is a scheduling transition.
    pub fn is_sched(&self) -> bool {
        self.kind.is_sched()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use EventKind::*;
        match &self.kind {
            HwSched(p) => write!(f, "⟨sched→{p}⟩"),
            Pull(b) => write!(f, "{}.pull({b})", self.pid),
            Push(b, v) => write!(f, "{}.push({b},{v})", self.pid),
            FaiT(b) => write!(f, "{}.FAI_t({b})", self.pid),
            GetN(b) => write!(f, "{}.get_n({b})", self.pid),
            IncN(b) => write!(f, "{}.inc_n({b})", self.pid),
            Hold(b) => write!(f, "{}.hold({b})", self.pid),
            Acq(b) => write!(f, "{}.acq({b})", self.pid),
            Rel(b) => write!(f, "{}.rel({b})", self.pid),
            McsSwap(b) => write!(f, "{}.mcs_swap({b})", self.pid),
            McsCasTail(b) => write!(f, "{}.mcs_cas({b})", self.pid),
            McsSetNext(b, p) => write!(f, "{}.mcs_set_next({b},{p})", self.pid),
            McsGetLocked(b) => write!(f, "{}.mcs_get_locked({b})", self.pid),
            McsGrant(b, p) => write!(f, "{}.mcs_grant({b},{p})", self.pid),
            EnQ(q, v) => write!(f, "{}.enQ({q},{v})", self.pid),
            DeQ(q) => write!(f, "{}.deQ({q})", self.pid),
            Yield => write!(f, "{}.yield", self.pid),
            Sleep(q, lk) => write!(f, "{}.sleep({q},{lk})", self.pid),
            Wakeup(q) => write!(f, "{}.wakeup({q})", self.pid),
            AcqQ(b) => write!(f, "{}.acq_q({b})", self.pid),
            RelQ(b) => write!(f, "{}.rel_q({b})", self.pid),
            CvWait(q) => write!(f, "{}.cv_wait({q})", self.pid),
            CvSignal(q) => write!(f, "{}.cv_signal({q})", self.pid),
            CvBroadcast(q) => write!(f, "{}.cv_broadcast({q})", self.pid),
            IpcSend(q, v) => write!(f, "{}.send({q},{v})", self.pid),
            IpcRecv(q) => write!(f, "{}.recv({q})", self.pid),
            Prim(name, args) => {
                write!(f, "{}.{name}(", self.pid)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_event_targets_pid() {
        let e = Event::sched(Pid(2));
        assert!(e.is_sched());
        assert_eq!(e.pid, Pid(2));
    }

    #[test]
    fn prim_event_displays_like_paper_notation() {
        let e = Event::prim(Pid(1), "foo", vec![]);
        assert_eq!(e.to_string(), "p1.foo()");
        let e = Event::new(Pid(1), EventKind::FaiT(Loc(0)));
        assert_eq!(e.to_string(), "p1.FAI_t(b0)");
    }

    #[test]
    fn independence_requires_disjoint_footprints_and_distinct_pids() {
        let pull0 = Event::new(Pid(1), EventKind::Pull(Loc(0)));
        let pull1 = Event::new(Pid(2), EventKind::Pull(Loc(1)));
        assert!(independent(&pull0, &pull1), "disjoint locations commute");
        let push0 = Event::new(Pid(2), EventKind::Push(Loc(0), Val::Int(1)));
        assert!(!independent(&pull0, &push0), "same location conflicts");
        let same_pid = Event::new(Pid(1), EventKind::Pull(Loc(1)));
        assert!(!independent(&pull0, &same_pid), "same author never commutes");
    }

    #[test]
    fn lock_ordered_events_never_commute_with_each_other() {
        let a = Event::new(Pid(1), EventKind::Acq(Loc(0)));
        let b = Event::new(Pid(2), EventKind::FaiT(Loc(7)));
        // Different locks, but both participate in lock ordering.
        assert!(!independent(&a, &b));
        // A lock event does commute with a non-lock event elsewhere.
        let q = Event::new(Pid(2), EventKind::EnQ(crate::id::QId(3), Val::Int(5)));
        assert!(independent(&a, &q));
    }

    #[test]
    fn sched_prim_and_yield_conflict_with_everything() {
        let sched = Event::sched(Pid(1));
        let prim = Event::prim(Pid(2), "f", vec![]);
        let pull = Event::new(Pid(3), EventKind::Pull(Loc(9)));
        assert!(!independent(&sched, &pull));
        assert!(!independent(&prim, &pull));
        assert!(Footprint::Global.overlaps(&Footprint::Global));
    }

    #[test]
    fn sleep_touches_both_queue_and_lock() {
        let fs = EventKind::Sleep(QId(1), Loc(2)).footprints();
        assert!(fs.contains(&Footprint::Loc(Loc(2))));
        assert!(fs.contains(&Footprint::Queue(QId(1))));
    }

    #[test]
    fn declared_arg_footprints_localize_prims() {
        // Names are unique to this test: the registry is process-global.
        declare_prim_footprint("test_fp_take", PrimFootprint::Args);
        let take0 = Event::prim(Pid(1), "test_fp_take", vec![Val::Loc(Loc(0))]);
        let pull1 = Event::new(Pid(2), EventKind::Pull(Loc(1)));
        let pull0 = Event::new(Pid(2), EventKind::Pull(Loc(0)));
        assert!(independent(&take0, &pull1), "disjoint locations commute");
        assert!(!independent(&take0, &pull0), "same location conflicts");
        assert_eq!(
            take0.kind.footprints(),
            vec![Footprint::Loc(Loc(0))],
            "non-Loc args contribute nothing"
        );
    }

    #[test]
    fn empty_arg_footprints_commute_with_everything_but_sched() {
        declare_prim_footprint("test_fp_pure", PrimFootprint::Args);
        let pure = Event::prim(Pid(1), "test_fp_pure", vec![]);
        assert!(pure.kind.footprints().is_empty());
        let pull = Event::new(Pid(2), EventKind::Pull(Loc(9)));
        let acq = Event::new(Pid(2), EventKind::Acq(Loc(0)));
        assert!(independent(&pure, &pull));
        assert!(independent(&pure, &acq), "pure prims are not lock-ordered");
        assert!(!independent(&pure, &Event::sched(Pid(2))));
    }

    #[test]
    fn conflicting_declarations_widen_to_global() {
        declare_prim_footprint("test_fp_conflict", PrimFootprint::Args);
        declare_prim_footprint(
            "test_fp_conflict",
            PrimFootprint::Fixed(vec![Footprint::Loc(Loc(3))]),
        );
        assert_eq!(prim_footprint("test_fp_conflict"), PrimFootprint::Global);
        // Idempotent redeclaration does not widen.
        declare_prim_footprint("test_fp_stable", PrimFootprint::Args);
        declare_prim_footprint("test_fp_stable", PrimFootprint::Args);
        assert_eq!(prim_footprint("test_fp_stable"), PrimFootprint::Args);
    }

    #[test]
    fn post_use_declarations_still_take_effect() {
        // Consulting first answers the undeclared Global default and marks
        // the name used; a later declaration warns (once, on stderr — the
        // earlier consultation may have stamped POR marks on a grid) but
        // still lands for everything generated afterwards.
        assert_eq!(prim_footprint("test_fp_late"), PrimFootprint::Global);
        declare_prim_footprint("test_fp_late", PrimFootprint::Args);
        assert_eq!(prim_footprint("test_fp_late"), PrimFootprint::Args);
    }

    #[test]
    fn undeclared_prims_stay_global() {
        assert_eq!(
            prim_footprint("test_fp_never_declared"),
            PrimFootprint::Global
        );
        let e = Event::prim(Pid(0), "test_fp_never_declared", vec![]);
        assert_eq!(e.kind.footprints(), vec![Footprint::Global]);
    }

    #[test]
    fn events_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Event::sched(Pid(0)));
        s.insert(Event::sched(Pid(0)));
        assert_eq!(s.len(), 1);
    }
}
