//! The unified exploration kernel behind every bounded checker.
//!
//! All five bounded checkers — strategy simulation ([`crate::sim`]),
//! liveness, linearizability, race freedom and sequence refinement
//! (`ccal-verifier`) — explore the same shape: a finite grid of
//! `(environment context × sub-case)` cells, each a deterministic function
//! of the schedule prefix the run consumes, folded in index order down to
//! a verdict and an index-least first failure. Before this module each
//! checker carried its own copy of the machinery around that loop:
//! schedule-prefix memoization, query-point snapshot forking, sleep-set
//! partial-order pruning, work-stealing dispatch, forensics capture, and
//! the slot fold. [`Kernel`] owns all of it once:
//!
//! * **Prefix memoization** ([`crate::prefix::PrefixMemo`]): one executed
//!   lower run per distinct consumed schedule prefix
//!   ([`Kernel::run_shared`]).
//! * **Query-point snapshots** ([`crate::prefix::SnapshotTrie`]): forked
//!   mid-run machine states at every environment cut point, resumed for
//!   contexts that diverge later ([`Kernel::resume_deepest`],
//!   [`Kernel::snapshot`]).
//! * **POR pruning**: contexts marked trace-equivalent by the generator
//!   are skipped and counted without invoking the client
//!   ([`Kernel::explore`]).
//! * **Work-stealing dispatch** ([`crate::par::run_cases_ordered`]) in
//!   subtree claim order ([`crate::prefix::subtree_case_order`]), with the
//!   in-order fold that makes parallel runs bit-identical to serial ones.
//! * **Forensics capture** ([`crate::forensics`]): failing cases are
//!   recorded with their grid index, context index, witness log and reason
//!   whenever a capture scope is active.
//!
//! A checker plugs in by choosing a snapshot type `S` (implementing
//! [`crate::prefix::ForkSnapshot`] — [`RunSnap`] for single-machine
//! checkers, [`crate::conc::GameState`] for game-based ones, or a custom
//! enum like the simulation checker's phase-tagged snapshot), a memoized
//! outcome type `T`, and a per-case classification closure returning
//! [`Case`]. New engines (weak-memory exploration, new certified objects,
//! service-mode re-certification) get sharing, pruning, parallelism and
//! capture for free.
//!
//! The `CCAL_KERNEL=0` escape hatch kept the pre-kernel per-checker paths
//! alive while the port was validated differentially
//! (`tests/kernel_differential.rs`); those paths were deleted once the
//! differential passed — see [`kernel_enabled`].

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::conc::{ConcurrentMachine, ConcurrentOutcome, GameState, ThreadScript};
use crate::env::EnvContext;
use crate::id::PidSet;
use crate::layer::{LayerInterface, PrimRun};
use crate::log::Log;
use crate::machine::{LayerMachine, MachineError};
use crate::prefix::{ForkSnapshot, PrefixMemo, ScheduleKey, SnapshotTrie};

/// Whether the unified exploration kernel is in use — always `true`.
///
/// `CCAL_KERNEL=0` was the escape hatch that kept the pre-kernel checker
/// paths alive while the port was validated by
/// `tests/kernel_differential.rs`; those paths were deleted once the
/// differential passed, so the flag no longer selects anything. Setting it
/// to `0` warns once (so stale CI configurations fail loudly instead of
/// silently diverging) and is otherwise ignored.
pub fn kernel_enabled() -> bool {
    if !crate::envflag::bool_flag("CCAL_KERNEL", true) {
        static WARNED: OnceLock<()> = OnceLock::new();
        WARNED.get_or_init(|| {
            eprintln!(
                "ccal: CCAL_KERNEL=0 is obsolete — the pre-kernel checker paths \
                 were removed once the kernel differential passed; the unified \
                 exploration kernel is always used"
            );
        });
    }
    true
}

/// The exploration knobs every checker shares. Mirrors the sharing-related
/// subset of [`crate::sim::SimOptions`]; the verifier checkers build it
/// from their `_tuned` parameters.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Worker threads exploring the case grid (1 = serial).
    pub workers: usize,
    /// Skip contexts marked trace-equivalent by the partial-order
    /// reduction.
    pub por: bool,
    /// Share lower runs across contexts with a common consumed schedule
    /// prefix ([`crate::prefix::PrefixMemo`]).
    pub prefix_share: bool,
    /// Additionally fork mid-run snapshots at every environment query
    /// point ([`crate::prefix::SnapshotTrie`]); effective only when
    /// `prefix_share` is on.
    pub deep_share: bool,
    /// Capacity cap on the query-point snapshot trie (deepest-first
    /// eviction, see [`crate::prefix::SnapshotTrie`]).
    pub snapshot_cap: usize,
    /// Restrict exploration to the half-open flat-index range
    /// `[lo, hi)` of the `ci·ninner+ii` grid. `None` explores the whole
    /// grid. Per-case classification is a deterministic function of the
    /// case index alone, so folding disjoint windows in ascending order
    /// (discarding everything after the first failing window) yields the
    /// same verdict, case accounting and index-least first failure as one
    /// whole-grid exploration — this is what lets the certification
    /// service lease grid chunks to shard processes.
    pub window: Option<(usize, usize)>,
    /// Convergence deduplication: cache suffix outcomes keyed by a
    /// canonical state fingerprint plus the remaining schedule suffix, so
    /// a context converging to an already-explored state completes
    /// without executing another atom step ([`Kernel::converged`]).
    /// Independent of `prefix_share` — it collapses *diamonds* (different
    /// prefixes, same state), not shared prefixes.
    pub state_dedup: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            workers: crate::par::default_workers(),
            por: crate::por::por_enabled(),
            prefix_share: crate::prefix::prefix_share_enabled(),
            deep_share: crate::prefix::prefix_deep_enabled(),
            snapshot_cap: crate::prefix::DEFAULT_SNAPSHOT_CAP,
            window: None,
            state_dedup: crate::prefix::state_dedup_effective(),
        }
    }
}

impl ExploreOptions {
    /// The options the verifier checkers' `_tuned` variants expose:
    /// explicit workers/POR/sharing, default snapshot cap, whole grid,
    /// convergence dedup from the effective process-wide flag.
    pub fn tuned(workers: usize, por: bool, prefix_share: bool, deep_share: bool) -> Self {
        Self {
            workers,
            por,
            prefix_share,
            deep_share,
            snapshot_cap: crate::prefix::DEFAULT_SNAPSHOT_CAP,
            window: None,
            state_dedup: crate::prefix::state_dedup_effective(),
        }
    }
}

/// A failing case, carrying both the checker's error and the forensics
/// payload ([`crate::forensics::FailingCase`] minus the indices, which the
/// kernel fills in from the grid position).
#[derive(Debug)]
pub struct Failed<E> {
    /// The checker-specific error returned to the caller.
    pub error: E,
    /// The concrete lower/implementation log at the failure (the witness).
    pub log: Log,
    /// Why the case failed.
    pub reason: String,
    /// Human-readable case detail (context/args/script indices).
    pub detail: String,
}

/// One explored case's classification, folded in index order by
/// [`Kernel::explore`].
#[derive(Debug)]
pub enum Case<D, E> {
    /// The case passed; `D` is whatever the checker folds over (probe
    /// logs, step counts, `()`).
    Checked(D),
    /// The context was invalid (rely violation / unfair schedule).
    Skipped,
    /// The context was pruned by the partial-order reduction.
    Reduced,
    /// The case failed; exploration short-circuits at the index-least
    /// failure.
    Failed(Box<Failed<E>>),
}

impl<D, E> Case<D, E> {
    /// Builds a failing case with its forensics payload.
    pub fn failed(error: E, log: Log, reason: String, detail: String) -> Self {
        Case::Failed(Box::new(Failed {
            error,
            log,
            reason,
            detail,
        }))
    }
}

/// The fold of an explored grid: the case accounting every checker's
/// verdict carries, the per-case data of the checked cases in index
/// order, and the index-least failure (with everything after it
/// discarded, exactly as the per-checker folds did).
#[derive(Debug)]
pub struct Explored<D, E> {
    /// Cases executed and passed.
    pub cases_checked: usize,
    /// Cases skipped (invalid contexts).
    pub cases_skipped: usize,
    /// Cases pruned by the partial-order reduction.
    pub cases_reduced: usize,
    /// The checked cases' data, in case-index order.
    pub checked: Vec<D>,
    /// The index-least failure, if any.
    pub failure: Option<E>,
}

/// The unified exploration kernel: one [`PrefixMemo`] + [`SnapshotTrie`]
/// pair plus the grid-dispatch loop, parameterized over a fork-able
/// snapshot type `S` and a memoized outcome type `T`. See the module docs
/// for the division of labor between the kernel and its clients.
pub struct Kernel<S, T> {
    memo: std::sync::Arc<PrefixMemo<T>>,
    snapshots: std::sync::Arc<SnapshotTrie<S>>,
    workers: usize,
    por: bool,
    share: bool,
    deep: bool,
    window: Option<(usize, usize)>,
    /// The convergence cache: canonical state fingerprint + remaining
    /// schedule suffix → the suffix's outcome. Per-kernel by default;
    /// caller-owned (warm across invocations) via
    /// [`Kernel::with_state_conv`], sound because the key carries the
    /// schedule family and the content-derived inner index — equal keys
    /// imply the same computation. The value carries `(outcome, donor log
    /// length at the cut, donor total consumed)` so a hit can graft the
    /// donor's suffix log onto the borrower's prefix and memoize at the
    /// donor's full consumed depth.
    conv: Option<std::sync::Arc<BoundedCache<ConvKey, (T, usize, usize)>>>,
    /// Hit/eviction counts of the (possibly shared) convergence cache at
    /// kernel construction, so per-invocation accounting stays exact when
    /// the cache outlives the kernel.
    conv_hits_base: u64,
    conv_evictions_base: u64,
}

/// Convergence-cache key: `(state fingerprint, schedule family, inner
/// index, remaining schedule suffix)`. Equal keys mean: identical
/// machine/game state (up to replay-commuting log reorderings), same
/// computation, same sub-case, and the exact same schedule still to be
/// delivered — under which execution is deterministic, so the suffix
/// outcome is forced.
pub type ConvKey = (u128, u64, usize, Vec<crate::id::Pid>);

impl<S: ForkSnapshot, T: Clone + Send> Kernel<S, T> {
    /// Creates a kernel for one checker invocation, with fresh (cold)
    /// memo and snapshot state.
    pub fn new(opts: &ExploreOptions) -> Self {
        Self::with_state(
            opts,
            std::sync::Arc::new(PrefixMemo::new()),
            std::sync::Arc::new(SnapshotTrie::new(opts.snapshot_cap)),
        )
    }

    /// Creates a kernel over *caller-owned* memo and snapshot state, so a
    /// long-running service can keep them warm across checker invocations.
    /// Soundness requires that every invocation sharing the state checks
    /// the same computation over the same schedule-key family: memo
    /// entries are keyed by `(family, script prefix, inner index)` only,
    /// so two different checks pinned to one family would read each
    /// other's outcomes. The certification service keys families by the
    /// unit's content fingerprint, which makes key collisions imply input
    /// equality.
    pub fn with_state(
        opts: &ExploreOptions,
        memo: std::sync::Arc<PrefixMemo<T>>,
        snapshots: std::sync::Arc<SnapshotTrie<S>>,
    ) -> Self {
        let conv = opts
            .state_dedup
            .then(|| std::sync::Arc::new(BoundedCache::new(opts.snapshot_cap.max(1))));
        Self::with_state_conv(opts, memo, snapshots, conv)
    }

    /// [`Kernel::with_state`] with a *caller-owned* convergence cache as
    /// well (ignored when `state_dedup` is off), so a warm store can serve
    /// convergence hits across invocations. The caller must key sharing by
    /// a semantic family (equal families ⇒ equal computations), exactly as
    /// for the memo and the snapshot trie.
    pub fn with_state_conv(
        opts: &ExploreOptions,
        memo: std::sync::Arc<PrefixMemo<T>>,
        snapshots: std::sync::Arc<SnapshotTrie<S>>,
        conv: Option<std::sync::Arc<BoundedCache<ConvKey, (T, usize, usize)>>>,
    ) -> Self {
        let _ = kernel_enabled();
        let share = opts.prefix_share;
        let conv = opts.state_dedup.then(|| conv).flatten();
        Self {
            memo,
            snapshots,
            workers: opts.workers,
            por: opts.por,
            share,
            deep: share && opts.deep_share,
            window: opts.window,
            conv_hits_base: conv.as_ref().map_or(0, |c| c.hits()),
            conv_evictions_base: conv.as_ref().map_or(0, |c| c.evictions()),
            conv,
        }
    }

    /// Whether whole-outcome prefix sharing is on.
    pub fn share(&self) -> bool {
        self.share
    }

    /// Whether query-point snapshot sharing is on (implies [`share`]).
    ///
    /// [`share`]: Kernel::share
    pub fn deep(&self) -> bool {
        self.deep
    }

    /// The context's schedule key, gated on prefix sharing: `None` when
    /// sharing is off or the context is hand-built (keyless).
    pub fn share_key<'e>(&self, env: &'e EnvContext) -> Option<&'e ScheduleKey> {
        if self.share {
            env.schedule_key()
        } else {
            None
        }
    }

    /// The context's schedule key, gated on deep (snapshot) sharing.
    pub fn deep_key<'e>(&self, env: &'e EnvContext) -> Option<&'e ScheduleKey> {
        if self.deep {
            env.schedule_key()
        } else {
            None
        }
    }

    /// Looks up the memoized outcome for any consumed prefix of `key`'s
    /// script, recording a shared (memo-answered) run on a hit.
    pub fn cached(&self, key: &ScheduleKey, inner: usize) -> Option<T> {
        let hit = self.memo.lookup(key, inner);
        if hit.is_some() {
            crate::prefix::record_shared();
        }
        hit
    }

    /// Memoizes an executed run's outcome at its consumed prefix depth.
    pub fn memoize(&self, key: &ScheduleKey, inner: usize, consumed: usize, outcome: T) {
        self.memo.insert(key, inner, consumed, outcome);
    }

    /// The standard lower-run composition every checker uses: answer from
    /// the memo when the context's consumed prefix is cached (recording a
    /// shared run), otherwise execute via `exec` — which returns the
    /// outcome plus the consumed schedule-prefix length — and memoize.
    /// With sharing off (or a keyless context) this is just `exec`.
    pub fn run_shared(&self, env: &EnvContext, inner: usize, exec: impl FnOnce() -> (T, usize)) -> T {
        match self.share_key(env) {
            Some(k) => {
                if let Some(hit) = self.cached(k, inner) {
                    return hit;
                }
                let (outcome, consumed) = exec();
                self.memoize(k, inner, consumed, outcome.clone());
                outcome
            }
            None => exec().0,
        }
    }

    /// Forks the deepest stored snapshot applying to `key`, recording a
    /// deep (snapshot-resumed) run on a hit. Checkers whose snapshot type
    /// distinguishes phases with different accounting (the simulation
    /// checker) should use [`Kernel::lookup_snapshot`] and record
    /// themselves.
    pub fn resume_deepest(&self, key: &ScheduleKey, inner: usize) -> Option<(usize, S)> {
        let hit = self.snapshots.lookup_deepest(key, inner);
        if hit.is_some() {
            crate::prefix::record_deep();
        }
        hit
    }

    /// [`Kernel::resume_deepest`] without the accounting.
    pub fn lookup_snapshot(&self, key: &ScheduleKey, inner: usize) -> Option<(usize, S)> {
        self.snapshots.lookup_deepest(key, inner)
    }

    /// Stores a query-point snapshot at the consumed prefix depth (first
    /// insert wins; `make` only runs when the cut point is vacant).
    pub fn snapshot(
        &self,
        key: &ScheduleKey,
        inner: usize,
        consumed: usize,
        make: impl FnOnce() -> Option<S>,
    ) {
        self.snapshots.insert_with(key, inner, consumed, make);
    }

    /// The context's schedule key, gated on convergence dedup: `None` when
    /// dedup is off or the context is hand-built (keyless). Deliberately
    /// *not* gated on `prefix_share` — convergence dedup collapses
    /// diamonds, which exist whether or not prefixes are shared.
    pub fn conv_key<'e>(&self, env: &'e EnvContext) -> Option<&'e ScheduleKey> {
        if self.conv.is_some() {
            env.schedule_key()
        } else {
            None
        }
    }

    /// Probes the convergence cache at a cut point: `fp` is the canonical
    /// fingerprint of the execution state after consuming `consumed`
    /// schedule slots of `key`'s script. On a hit, returns the cached
    /// `(outcome, donor log length at this cut, donor total consumed)` and
    /// records a converged run; on a miss (or when the cut lies past the
    /// scripted part of the schedule — round-robin tails are keyless
    /// suffixes), returns `None`.
    pub fn converged(
        &self,
        key: &ScheduleKey,
        inner: usize,
        consumed: usize,
        fp: crate::fingerprint::ContentHash,
    ) -> Option<(T, usize, usize)> {
        let conv = self.conv.as_ref()?;
        let suffix = key.script().get(consumed..)?;
        let hit = conv.get(&(fp.0, key.family(), inner, suffix.to_vec()))?;
        crate::prefix::record_converged();
        Some(hit)
    }

    /// Records a completed run's outcome for a cut it passed through:
    /// `consumed`/`cut_log_len` locate the cut (where `fp` was computed),
    /// `total_consumed` is the run's final consumed schedule depth. The
    /// entry's eviction depth is the cut's consumed depth, so deepest-first
    /// eviction drops near-complete suffixes (cheap to re-run) before the
    /// widely-reusable shallow ones.
    pub fn converge_record(
        &self,
        key: &ScheduleKey,
        inner: usize,
        consumed: usize,
        fp: crate::fingerprint::ContentHash,
        cut_log_len: usize,
        total_consumed: usize,
        outcome: T,
    ) {
        if let Some(conv) = &self.conv {
            if let Some(suffix) = key.script().get(consumed..) {
                conv.insert(
                    (fp.0, key.family(), inner, suffix.to_vec()),
                    consumed,
                    (outcome, cut_log_len, total_consumed),
                );
            }
        }
    }

    /// Lookups answered by this kernel's convergence cache *during this
    /// invocation* (0 when dedup is off) — a warm cache's prior hits are
    /// excluded via the construction-time baseline.
    pub fn conv_hits(&self) -> u64 {
        self.conv
            .as_ref()
            .map_or(0, |c| c.hits() - self.conv_hits_base)
    }

    /// The exploration loop: dispatches the `(context × sub-case)` grid
    /// onto the work-stealing queue (in subtree claim order when sharing
    /// is on and several workers race), prunes POR-equivalent contexts,
    /// records failing cases into an active forensics capture scope, and
    /// folds the slots in index order — so the verdict, the accounting and
    /// the index-least first failure are bit-identical to a serial,
    /// unshared exploration.
    ///
    /// `run` is called with `(context index, sub-case index)`; the flat
    /// grid index is `ci * ninner + inner`. `checker` names the client in
    /// forensics captures.
    pub fn explore<D, E>(
        &self,
        checker: &'static str,
        contexts: &[EnvContext],
        ninner: usize,
        run: impl Fn(usize, usize) -> Case<D, E> + Sync,
    ) -> Explored<D, E>
    where
        D: Send,
        E: Send,
    {
        let total = contexts.len() * ninner;
        // The window restricts dispatch to `[lo, hi)` of the flat index
        // space; indices keep their whole-grid values so case details,
        // forensics indices and POR classification are identical to a
        // whole-grid run.
        let (lo, hi) = match self.window {
            Some((a, b)) => (a.min(total), b.min(total).max(a.min(total))),
            None => (0, total),
        };
        let span = hi - lo;
        let run_case = |widx: usize| -> Case<D, E> {
            let idx = lo + widx;
            let (ci, inner) = (idx / ninner, idx % ninner);
            let env = &contexts[ci];
            if self.por && env.is_por_equivalent() {
                // A lower-indexed trace-equivalent context covers this case.
                return Case::Reduced;
            }
            let outcome = run(ci, inner);
            if crate::forensics::capturing() {
                if let Case::Failed(f) = &outcome {
                    crate::forensics::record(crate::forensics::FailingCase {
                        checker,
                        case_index: idx,
                        ctx_index: ci,
                        detail: f.detail.clone(),
                        log: f.log.clone(),
                        reason: f.reason.clone(),
                    });
                }
            }
            outcome
        };
        // With sharing on and several workers, claim the grid in
        // digit-reversed (subtree) order so each worker's chunk shares
        // long schedule prefixes — the memo then hits within a chunk
        // instead of racing across chunks. Subtree order is computed over
        // the whole grid, so it only applies to whole-grid explorations;
        // a window run claims in plain index order.
        let order = if self.share && self.workers > 1 && (lo, hi) == (0, total) {
            let keys: Vec<Option<&ScheduleKey>> =
                contexts.iter().map(EnvContext::schedule_key).collect();
            crate::prefix::subtree_case_order(&keys, ninner)
        } else {
            None
        };
        let slots = crate::par::run_cases_ordered(span, self.workers, order.as_deref(), run_case, |c| {
            matches!(c, Case::Failed(_))
        });
        let mut out = Explored {
            cases_checked: 0,
            cases_skipped: 0,
            cases_reduced: 0,
            checked: Vec::new(),
            failure: None,
        };
        for slot in slots {
            match slot {
                None => break,
                Some(Case::Skipped) => out.cases_skipped += 1,
                Some(Case::Reduced) => out.cases_reduced += 1,
                Some(Case::Checked(d)) => {
                    out.checked.push(d);
                    out.cases_checked += 1;
                }
                Some(Case::Failed(f)) => {
                    out.failure = Some(f.error);
                    break;
                }
            }
        }
        out
    }
}

impl<S, T> Drop for Kernel<S, T> {
    fn drop(&mut self) {
        // Surface the per-invocation convergence-cache evictions into the
        // process-wide counter the benches and differential tests read —
        // deltas against the construction-time baseline, so a warm cache
        // shared across invocations is never double-counted.
        if let Some(conv) = &self.conv {
            let n = conv.evictions() - self.conv_evictions_base;
            if n > 0 {
                crate::prefix::record_conv_evictions(n);
            }
        }
    }
}

/// The memoized outcome of a traced concurrent (game) run — what the
/// linearizability and race-freedom checkers fold over.
pub type GameRun = (Result<ConcurrentOutcome, MachineError>, Log);

impl Kernel<GameState, GameRun> {
    /// The shared lower half of the game-based checkers: one traced
    /// concurrent run per distinct consumed schedule prefix, snapshotting
    /// the whole [`GameState`] before every scheduler decision and forking
    /// the deepest prefix-agreeing ancestor for contexts that diverge
    /// later. Work accounting counts only the executed suffix.
    pub fn run_game(
        &self,
        iface: &LayerInterface,
        focused: &PidSet,
        programs: &BTreeMap<crate::id::Pid, ThreadScript>,
        env: &EnvContext,
        fuel: u64,
    ) -> GameRun {
        self.run_shared(env, 0, || {
            let key = self.deep_key(env);
            let conv_key = self.conv_key(env);
            let machine = ConcurrentMachine::new(iface.clone(), focused.clone(), env.clone())
                .with_fuel(fuel);
            if key.is_none() && conv_key.is_none() {
                let (res, log) = machine.run_traced(programs);
                crate::prefix::record_steps(log.len() as u64);
                let consumed = log.iter().filter(|e| e.is_sched()).count();
                return ((res, log), consumed);
            }
            // Fork the deepest snapshotted ancestor when deep sharing has
            // one, and replay (counting) only the remaining turns.
            let (start, pre) = match key.and_then(|k| self.resume_deepest(k, 0)) {
                Some((_, st)) => {
                    let pre = st.log_len() as u64;
                    (st, pre)
                }
                None => (machine.init_state(programs), 0),
            };
            // Each cut point stores a snapshot (deep sharing), then probes
            // the convergence cache; a hit stashes the donor entry and
            // aborts the game at the cut.
            let mut conv_hit: Option<(GameRun, usize, usize)> = None;
            let mut probes: Vec<(crate::fingerprint::ContentHash, usize, usize)> = Vec::new();
            let ctl = machine.run_traced_from_ctl(start, &mut |st| {
                if let Some(k) = key {
                    self.snapshot(k, 0, st.sched_consumed(), || st.fork());
                }
                if let Some(k) = conv_key {
                    let consumed = st.sched_consumed();
                    if let Some(fp) = st.conv_fingerprint() {
                        if let Some(hit) = self.converged(k, 0, consumed, fp) {
                            conv_hit = Some(hit);
                            return true;
                        }
                        probes.push((fp, consumed, st.log_len()));
                    }
                }
                false
            });
            match ctl {
                Ok((res, log)) => {
                    crate::prefix::record_steps(log.len() as u64 - pre);
                    let consumed = log.iter().filter(|e| e.is_sched()).count();
                    let outcome = (res, log);
                    // Seed the convergence cache at every cut this run
                    // passed through without a hit.
                    if let Some(k) = conv_key {
                        for (fp, cut_consumed, cut_len) in probes {
                            self.converge_record(
                                k,
                                0,
                                cut_consumed,
                                fp,
                                cut_len,
                                consumed,
                                outcome.clone(),
                            );
                        }
                    }
                    (outcome, consumed)
                }
                Err(st) => {
                    // Converged: re-graft the donor's suffix log onto this
                    // context's prefix so the evidence is byte-identical to
                    // an executed run, reuse the donor's verdict, and count
                    // only the prefix actually executed here.
                    let ((donor_res, donor_log), donor_cut, donor_consumed) =
                        conv_hit.expect("an aborted game run implies a convergence hit");
                    let cut_len = st.log_len() as u64;
                    let mut log = st.into_log();
                    log.append_all(donor_log.suffix_from(donor_cut).cloned());
                    crate::prefix::record_steps(cut_len - pre);
                    let res = donor_res.map(|out| ConcurrentOutcome {
                        log: log.clone(),
                        abs: out.abs,
                        rets: out.rets,
                        turns: out.turns,
                    });
                    ((res, log), donor_consumed)
                }
            }
        })
    }
}

/// A mid-call machine snapshot: the machine plus a fork of the in-flight
/// primitive run, with checker-specific `extra` state (the liveness
/// checker needs none; the sequence-refinement checker carries the script
/// position and the completed return values). Forking forks the machine
/// (Arc/COW-backed) and the run ([`PrimRun::fork_run`], `None` when the
/// run does not support forking — the lookup then falls back shallower).
pub struct RunSnap<X> {
    /// The machine at the query point.
    pub machine: LayerMachine,
    /// The in-flight primitive run, paused at an environment query.
    pub run: Box<dyn PrimRun>,
    /// Checker-specific resumption state.
    pub extra: X,
}

impl<X: Clone + Send> ForkSnapshot for RunSnap<X> {
    fn fork(&self) -> Option<Self> {
        Some(RunSnap {
            machine: self.machine.fork(),
            run: self.run.fork_run()?,
            extra: self.extra.clone(),
        })
    }
}

/// A bounded memo table with **deepest-first eviction**: entries carry a
/// depth (for the simulation checker's upper-run cache, the length of the
/// replayed abstract event sequence), and when an insert would exceed the
/// cap the deepest entries — the most specific, least reusable ones — are
/// dropped first, *including the incoming entry itself* when it is the
/// deepest. Shallow entries, which many later cases re-derive, survive
/// squeezes instead of being thrown away by a whole-table clear. Eviction
/// never changes verdicts: a miss re-runs a deterministic computation.
///
/// Ties on depth evict the newest entry first (first insert wins), so a
/// serial run's hit/evict sequence is deterministic. Evictions are batched
/// (about an eighth of the cap per scan, at least one) to amortize the
/// victim scan on saturated tables.
pub struct BoundedCache<K, V> {
    map: Mutex<CacheStore<K, V>>,
    cap: usize,
    hits: AtomicU64,
    evictions: AtomicU64,
}

struct CacheStore<K, V> {
    entries: HashMap<K, (usize, u64, V)>,
    next_seq: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> BoundedCache<K, V> {
    /// Creates an empty cache holding at most `cap` entries (clamped to at
    /// least 1).
    pub fn new(cap: usize) -> Self {
        Self {
            map: Mutex::new(CacheStore {
                entries: HashMap::new(),
                next_seq: 0,
            }),
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a cached value, counting a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let store = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let hit = store.entries.get(key).map(|(_, _, v)| v.clone());
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Inserts `value` at `depth` (first insert wins). When the table is
    /// full, the deepest entries are evicted first; an incoming entry at
    /// least as deep as every resident is rejected instead (counted as an
    /// eviction).
    pub fn insert(&self, key: K, depth: usize, value: V) {
        let mut store = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if store.entries.contains_key(&key) {
            return;
        }
        if store.entries.len() >= self.cap {
            // The sequence number the incoming entry would be stored
            // under — strictly newer than every resident's.
            let incoming_seq = store.next_seq + 1;
            let mut cand: Vec<(usize, u64, Option<K>)> = store
                .entries
                .iter()
                .map(|(k, (d, s, _))| (*d, *s, Some(k.clone())))
                .collect();
            cand.push((depth, incoming_seq, None));
            // Deepest first; newest first among equal depths.
            cand.sort_by_key(|c| std::cmp::Reverse((c.0, c.1)));
            let batch = (self.cap / 8).max(1);
            for (_, _, victim) in cand.into_iter().take(batch) {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                match victim {
                    Some(k) => {
                        store.entries.remove(&k);
                    }
                    // The incoming entry is the victim: drop it and stop
                    // evicting residents — the table no longer overflows.
                    None => return,
                }
            }
        }
        store.next_seq += 1;
        let seq = store.next_seq;
        store.entries.insert(key, (depth, seq, value));
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entries
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

}

impl<K, V> BoundedCache<K, V> {
    /// Lookups answered from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Entries dropped (or incoming inserts rejected) by the deepest-first
    /// eviction since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

impl<K, V> std::fmt::Debug for BoundedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedCache")
            .field("cap", &self.cap)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("evictions", &self.evictions.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contexts::ContextGen;
    use crate::id::Pid;

    #[test]
    fn kernel_is_always_enabled_and_the_hatch_is_recognized() {
        assert!(kernel_enabled());
    }

    #[test]
    fn bounded_cache_hits_and_caps() {
        let cache: BoundedCache<&'static str, i32> = BoundedCache::new(2);
        cache.insert("a", 1, 10);
        cache.insert("b", 2, 20);
        assert_eq!(cache.get(&"a"), Some(10));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.get(&"missing"), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn bounded_cache_evicts_deepest_first_and_rejects_deeper_incoming() {
        let cache: BoundedCache<&'static str, i32> = BoundedCache::new(1);
        cache.insert("shallow", 1, 10);
        // Deeper incoming entry is rejected; the shallow resident survives
        // the squeeze (a full clear would have dropped it).
        cache.insert("deep", 5, 50);
        assert_eq!(cache.get(&"shallow"), Some(10));
        assert_eq!(cache.get(&"deep"), None);
        assert_eq!(cache.evictions(), 1);
        // A *shallower* incoming entry displaces the deeper resident.
        let cache2: BoundedCache<&'static str, i32> = BoundedCache::new(1);
        cache2.insert("deep", 5, 50);
        cache2.insert("shallow", 1, 10);
        assert_eq!(cache2.get(&"shallow"), Some(10));
        assert_eq!(cache2.get(&"deep"), None);
        assert_eq!(cache2.evictions(), 1);
    }

    #[test]
    fn bounded_cache_first_insert_wins() {
        let cache: BoundedCache<&'static str, i32> = BoundedCache::new(4);
        cache.insert("k", 1, 1);
        cache.insert("k", 1, 2);
        assert_eq!(cache.get(&"k"), Some(1));
    }

    #[test]
    fn bounded_cache_counters_under_concurrent_insert() {
        // 8 threads × 64 ops against an uncapped table: every distinct key
        // lands exactly once (first insert wins), re-inserts are no-ops,
        // and the hit counter equals the number of successful lookups —
        // the counters the convergence benches report must stay exact
        // under contention, not merely monotone.
        let cache: std::sync::Arc<BoundedCache<(usize, usize), usize>> =
            std::sync::Arc::new(BoundedCache::new(10_000));
        let nthreads = 8;
        let per = 64;
        std::thread::scope(|s| {
            for t in 0..nthreads {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..per {
                        // Half the keys are shared across threads (racing
                        // first-insert), half are thread-private.
                        let key = if i % 2 == 0 { (0, i) } else { (t, i) };
                        cache.insert(key, i, i);
                        assert_eq!(cache.get(&key), Some(i));
                    }
                });
            }
        });
        // Shared keys: one entry per even i. Private keys: one per (t, odd i).
        let expected_len = per / 2 + nthreads * (per / 2);
        assert_eq!(cache.len(), expected_len);
        assert_eq!(cache.hits(), (nthreads * per) as u64);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn bounded_cache_eviction_batch_is_deepest_first_newest_breaking_ties() {
        // Cap 16 → batch = 16/8 = 2 victims per squeeze. Fill with depths
        // 0..16, then insert at depth 3: the two deepest residents (15, 14)
        // are evicted, the incoming shallow entry lands, and everything
        // shallower survives.
        let cache: BoundedCache<usize, usize> = BoundedCache::new(16);
        for d in 0..16 {
            cache.insert(d, d, d);
        }
        cache.insert(100, 3, 100);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.get(&15), None);
        assert_eq!(cache.get(&14), None);
        assert_eq!(cache.get(&13), Some(13));
        assert_eq!(cache.get(&100), Some(100));
        assert_eq!(cache.len(), 15);
        // Ties on depth evict the newest entry first: two residents at the
        // same depth, the older one survives the squeeze.
        let cache2: BoundedCache<&'static str, i32> = BoundedCache::new(8);
        cache2.insert("old", 7, 1);
        cache2.insert("new", 7, 2);
        for d in 0..6 {
            cache2.insert(["a", "b", "c", "d", "e", "f"][d], d, 0);
        }
        cache2.insert("incoming", 0, 9);
        assert_eq!(cache2.evictions(), 1);
        assert_eq!(cache2.get(&"new"), None);
        assert_eq!(cache2.get(&"old"), Some(1));
        assert_eq!(cache2.get(&"incoming"), Some(9));
    }

    #[test]
    fn bounded_cache_never_serves_across_share_families() {
        // Under semantic sharing keys two computations may interleave
        // their entries in one cache, keyed apart only by the family (and
        // inner) components of the key. A lookup keyed to one family must
        // never be answered by the other's entry, even when every other
        // key component — state fingerprint, inner index, schedule
        // suffix — collides exactly.
        let cache: BoundedCache<ConvKey, &'static str> = BoundedCache::new(64);
        let fam_a = 11_u64;
        let fam_b = 22_u64;
        let suffix = vec![crate::id::Pid(0), crate::id::Pid(1)];
        cache.insert((0xfeed, fam_a, 7, suffix.clone()), 1, "a");
        assert_eq!(cache.get(&(0xfeed, fam_b, 7, suffix.clone())), None);
        assert_eq!(cache.get(&(0xfeed, fam_a, 8, suffix.clone())), None);
        assert_eq!(cache.get(&(0xfeed, fam_a, 7, suffix.clone())), Some("a"));
        cache.insert((0xfeed, fam_b, 7, suffix.clone()), 1, "b");
        assert_eq!(cache.get(&(0xfeed, fam_a, 7, suffix.clone())), Some("a"));
        assert_eq!(cache.get(&(0xfeed, fam_b, 7, suffix)), Some("b"));
    }

    #[test]
    fn bounded_cache_concurrent_two_family_inserts_stay_isolated() {
        // Two "share families" hammer one uncapped cache concurrently with
        // deliberately colliding fingerprint/inner/suffix components: every
        // entry must land under its own family, every lookup must be
        // answered only by its own family's value, and the counters must
        // stay exact under contention.
        let cache: std::sync::Arc<BoundedCache<(u128, u64, usize), u64>> =
            std::sync::Arc::new(BoundedCache::new(10_000));
        let per = 128_usize;
        std::thread::scope(|s| {
            for fam in [1_u64, 2_u64] {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..per {
                        cache.insert((i as u128, fam, i), i, fam * 1000 + i as u64);
                        assert_eq!(
                            cache.get(&(i as u128, fam, i)),
                            Some(fam * 1000 + i as u64)
                        );
                    }
                });
            }
        });
        assert_eq!(cache.len(), 2 * per);
        assert_eq!(cache.hits(), 2 * per as u64);
        assert_eq!(cache.evictions(), 0);
        for i in 0..per {
            assert_eq!(cache.get(&(i as u128, 1, i)), Some(1000 + i as u64));
            assert_eq!(cache.get(&(i as u128, 2, i)), Some(2000 + i as u64));
        }
    }

    #[test]
    fn bounded_cache_eviction_under_shared_families_is_depth_only() {
        // When a full cache holds entries from two families, the
        // deepest-first eviction picks victims by depth alone — it must
        // not prefer (or spare) either family — and the surviving entries
        // still answer only their own family's lookups.
        let cache: BoundedCache<(u64, usize), &'static str> = BoundedCache::new(8);
        for i in 0..4 {
            cache.insert((1, i), i, "fam1");
            cache.insert((2, i), i + 4, "fam2");
        }
        // Full at 8; an incoming shallow entry squeezes out the deepest
        // batch (8/8 = 1 victim): family 2's depth-7 entry.
        cache.insert((1, 100), 0, "fam1-new");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(&(2, 3)), None);
        assert_eq!(cache.get(&(1, 3)), Some("fam1"));
        assert_eq!(cache.get(&(2, 2)), Some("fam2"));
        assert_eq!(cache.get(&(1, 100)), Some("fam1-new"));
    }

    #[derive(Clone)]
    struct NoSnap;
    impl ForkSnapshot for NoSnap {
        fn fork(&self) -> Option<Self> {
            Some(NoSnap)
        }
    }

    fn grid(len: usize) -> Vec<EnvContext> {
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(len)
            .contexts()
    }

    #[test]
    fn explore_folds_in_index_order_and_short_circuits() {
        let contexts = grid(2);
        let opts = ExploreOptions::tuned(1, false, false, false);
        let kernel: Kernel<NoSnap, ()> = Kernel::new(&opts);
        let explored = kernel.explore("test", &contexts, 1, |ci, _| {
            if ci == 2 {
                Case::failed(format!("boom at {ci}"), Log::new(), "boom".into(), format!("context #{ci}"))
            } else {
                Case::Checked(ci)
            }
        });
        assert_eq!(explored.cases_checked, 2);
        assert_eq!(explored.checked, vec![0, 1]);
        assert_eq!(explored.failure.as_deref(), Some("boom at 2"));
    }

    #[test]
    fn explore_is_bit_identical_across_workers() {
        let contexts = grid(3);
        let run = |ci: usize, _inner: usize| -> Case<usize, String> {
            if ci == 5 {
                Case::failed("fail".to_owned(), Log::new(), "r".into(), "d".into())
            } else {
                Case::Checked(ci)
            }
        };
        let serial = Kernel::<NoSnap, ()>::new(&ExploreOptions::tuned(1, false, true, false))
            .explore("test", &contexts, 1, run);
        for workers in [2, 4] {
            let par = Kernel::<NoSnap, ()>::new(&ExploreOptions::tuned(workers, false, true, false))
                .explore("test", &contexts, 1, run);
            assert_eq!(serial.cases_checked, par.cases_checked);
            assert_eq!(serial.checked, par.checked);
            assert_eq!(serial.failure, par.failure);
        }
    }

    #[test]
    fn run_shared_memoizes_per_consumed_prefix() {
        let contexts = grid(2);
        let opts = ExploreOptions::tuned(1, false, true, false);
        let kernel: Kernel<NoSnap, u32> = Kernel::new(&opts);
        let mut executions = 0_u32;
        for env in &contexts {
            // Every run "consumes" one slot, so contexts sharing slot 0
            // share the outcome: 2 executions over a 4-context grid.
            let _ = kernel.run_shared(env, 0, || {
                executions += 1;
                (executions, 1)
            });
        }
        assert_eq!(executions, 2);
    }
}
