//! Content-addressed fingerprints for certification inputs.
//!
//! A certification verdict is a pure function of (module source, layer
//! interfaces, declared primitive footprints, simulation options, context
//! grid parameters). The certification service keys its certificate store
//! by a [`ContentHash`] over exactly those inputs, so a byte-identical
//! request is answered from the store with **zero** exploration steps, and
//! editing one layer of a stack dirties only the units whose inputs
//! actually changed.
//!
//! The hash is a streaming FNV-1a over a 128-bit state with explicit
//! domain separation: every field is framed as `tag • length • payload`,
//! so `("ab", "c")` and `("a", "bc")` — or a field moving between
//! sections — cannot collide structurally. This generalizes the
//! options-fingerprint the forensics artifacts already carry
//! (`ccal-forensics`' `ReplayOptions`), which keys *replay compatibility*;
//! a [`ContentHash`] keys *certificate identity*.

use std::fmt;

use crate::event::PrimFootprint;
use crate::layer::LayerInterface;
use crate::val::Val;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content hash, rendered as 32 lowercase hex digits. Used as
/// the certificate store key and as the deterministic schedule-key family
/// for warm cross-request prefix sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// The low 64 bits — used where a `u64` identity is needed (e.g.
    /// pinning a [`crate::prefix::ScheduleKey`] family to a unit).
    pub fn low64(&self) -> u64 {
        self.0 as u64
    }

    /// Parses the 32-hex-digit rendering produced by `Display`.
    pub fn parse(s: &str) -> Option<ContentHash> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(ContentHash)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Streaming content hasher with domain separation. Feed fields through
/// the typed methods (each frames its payload with a tag and a length);
/// [`ContentHasher::finish`] yields the [`ContentHash`].
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u128,
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentHasher {
    /// A fresh hasher at the FNV-1a 128 offset basis.
    pub fn new() -> Self {
        ContentHasher {
            state: FNV128_OFFSET,
        }
    }

    fn raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    fn frame(&mut self, tag: &str, payload_len: usize) {
        self.raw(tag.as_bytes());
        self.raw(&[0xff]);
        self.raw(&(payload_len as u64).to_le_bytes());
    }

    /// A section marker: separates structurally distinct regions (e.g.
    /// "module" vs "options") without a payload.
    pub fn section(&mut self, tag: &str) {
        self.frame(tag, 0);
        self.raw(&[0xfe]);
    }

    /// A tagged byte string.
    pub fn bytes(&mut self, tag: &str, payload: &[u8]) {
        self.frame(tag, payload.len());
        self.raw(payload);
    }

    /// A tagged UTF-8 string (module sources, primitive names, ...).
    pub fn str(&mut self, tag: &str, s: &str) {
        self.bytes(tag, s.as_bytes());
    }

    /// A tagged unsigned integer.
    pub fn u64(&mut self, tag: &str, v: u64) {
        self.frame(tag, 8);
        self.raw(&v.to_le_bytes());
    }

    /// A tagged signed integer.
    pub fn i64(&mut self, tag: &str, v: i64) {
        self.frame(tag, 8);
        self.raw(&v.to_le_bytes());
    }

    /// A tagged `usize` (hashed as 64-bit, so 32/64-bit hosts agree).
    pub fn usize(&mut self, tag: &str, v: usize) {
        self.u64(tag, v as u64);
    }

    /// A tagged boolean.
    pub fn bool(&mut self, tag: &str, v: bool) {
        self.frame(tag, 1);
        self.raw(&[u8::from(v)]);
    }

    /// A tagged layer-level value (setup arguments and the like).
    pub fn val(&mut self, tag: &str, v: &Val) {
        match v {
            Val::Undef => self.str(tag, "undef"),
            Val::Unit => self.str(tag, "unit"),
            Val::Int(i) => {
                self.section("int");
                self.i64(tag, *i);
            }
            Val::Bool(b) => {
                self.section("bool");
                self.bool(tag, *b);
            }
            Val::Loc(l) => {
                self.section("loc");
                self.u64(tag, u64::from(l.0));
            }
            Val::Str(s) => {
                self.section("str");
                self.str(tag, s);
            }
            Val::List(items) => {
                self.frame(tag, items.len());
                for (i, item) in items.iter().enumerate() {
                    self.val(&format!("{tag}[{i}]"), item);
                }
            }
        }
    }

    /// A tagged observable event. Hashed through its canonical `Debug`
    /// rendering, which spells out the author, the kind, and every
    /// argument — two events hash equal exactly when they are equal.
    pub fn event(&mut self, tag: &str, e: &crate::event::Event) {
        self.str(tag, &format!("{e:?}"));
    }

    /// A layer interface: its name, its primitive names in canonical
    /// (sorted) order, and each primitive's *declared footprint
    /// derivation* from the process-global registry — the POR input that
    /// changes which context grids are explored. Interfaces with the same
    /// name but different primitives (or footprints) hash differently.
    pub fn interface(&mut self, tag: &str, iface: &LayerInterface) {
        self.section(tag);
        self.str("iface.name", &iface.name);
        let mut names = iface.prim_names();
        names.sort_unstable();
        self.usize("iface.nprims", names.len());
        for name in names {
            self.str("prim", name);
            self.prim_footprint("prim.fp", &crate::event::prim_footprint(name));
        }
    }

    /// A declared footprint derivation.
    pub fn prim_footprint(&mut self, tag: &str, fp: &PrimFootprint) {
        match fp {
            PrimFootprint::Args => self.str(tag, "args"),
            PrimFootprint::Global => self.str(tag, "global"),
            PrimFootprint::Fixed(fps) => {
                self.frame(tag, fps.len());
                for f in fps {
                    match f {
                        crate::event::Footprint::Loc(l) => self.u64("fp.loc", u64::from(l.0)),
                        crate::event::Footprint::Queue(q) => self.u64("fp.queue", u64::from(q.0)),
                        crate::event::Footprint::Global => self.section("fp.global"),
                    }
                }
            }
        }
    }

    /// Finalizes the hash.
    pub fn finish(&self) -> ContentHash {
        ContentHash(self.state)
    }
}

/// A **semantic sharing key**: the content identity of one lower-machine
/// exploration *family*. Two checks with equal `ShareKey`s explore the
/// same lower machine (same sources, interfaces and footprints) for the
/// same participant over the same context-grid structure under the same
/// exploration-relevant options — so their `PrefixMemo` / `SnapshotTrie` /
/// convergence-cache entries describe the same deterministic computations
/// and may safely live in one warm store, keyed apart only by the
/// per-computation inner index (setup history + called primitive +
/// arguments, see `crate::sim`).
///
/// Deliberately *excluded*: the unit and stack names, the checked
/// primitive and its arguments, the setup calls, the upper interface and
/// the relation (all of which vary across the units of one stack and are
/// carried by the inner index or the upper-cache signature instead), and
/// pure dispatch knobs (`workers`, `window`, `warm`) that cannot change
/// what any shared entry means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShareKey(pub ContentHash);

impl ShareKey {
    /// The schedule-key family this sharing key pins
    /// ([`crate::prefix::ScheduleKey::family`]).
    pub fn family(&self) -> u64 {
        self.0.low64()
    }
}

impl fmt::Display for ShareKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Computes the [`ShareKey`] for one lower-machine exploration family.
///
/// `sources` are the ClightX module sources backing the lower machine (in
/// a fixed caller order; empty for spec-only machines) — they carry the
/// primitive *bodies*, which [`ContentHasher::interface`] deliberately
/// does not, so two machines differing only in one primitive body get
/// distinct keys. `describe_ctx` must hash the full structure of the
/// context grid the check explores (players, rounds, schedule length,
/// POR) — everything that determines which `ScheduleKey` scripts exist
/// and what the partial-order reduction prunes.
pub fn share_key(
    sources: &[(&str, &str)],
    lower: &LayerInterface,
    pid: crate::id::Pid,
    describe_ctx: impl FnOnce(&mut ContentHasher),
    opts: &crate::sim::SimOptions,
) -> ShareKey {
    let mut h = ContentHasher::new();
    h.section("ccal.share-key.v1");
    h.usize("nsources", sources.len());
    for (name, src) in sources {
        h.str("source.name", name);
        h.str("source.text", src);
    }
    h.interface("lower", lower);
    h.u64("pid", u64::from(pid.0));
    h.section("contexts");
    describe_ctx(&mut h);
    h.section("sim_options");
    h.u64("fuel", opts.fuel);
    h.bool("compare_rets", opts.compare_rets);
    h.bool("dedup", opts.dedup);
    h.bool("prefix_share", opts.prefix_share);
    h.bool("deep_share", opts.deep_share);
    h.bool("bytecode", opts.bytecode);
    h.bool("state_dedup", opts.state_dedup);
    h.usize("snapshot_cap", opts.snapshot_cap);
    h.usize("upper_cache_cap", opts.upper_cache_cap);
    ShareKey(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl FnOnce(&mut ContentHasher)) -> ContentHash {
        let mut h = ContentHasher::new();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        let a = hash_of(|h| {
            h.str("x", "ab");
            h.str("y", "c");
        });
        let b = hash_of(|h| {
            h.str("x", "a");
            h.str("y", "bc");
        });
        assert_ne!(a, b);
    }

    #[test]
    fn tags_separate_domains() {
        let a = hash_of(|h| h.str("source", "v"));
        let b = hash_of(|h| h.str("options", "v"));
        assert_ne!(a, b);
    }

    #[test]
    fn display_round_trips() {
        let h = hash_of(|h| h.str("s", "hello"));
        let rendered = h.to_string();
        assert_eq!(rendered.len(), 32);
        assert_eq!(ContentHash::parse(&rendered), Some(h));
        assert_eq!(ContentHash::parse("zz"), None);
        assert_eq!(ContentHash::parse(&rendered[..31]), None);
    }

    #[test]
    fn vals_hash_by_structure() {
        let int = hash_of(|h| h.val("v", &Val::Int(1)));
        let boolean = hash_of(|h| h.val("v", &Val::Bool(true)));
        assert_ne!(int, boolean);
        let nested = hash_of(|h| h.val("v", &Val::List(vec![Val::Int(1), Val::Int(2)])));
        let flat = hash_of(|h| {
            h.val("v", &Val::Int(1));
            h.val("v", &Val::Int(2));
        });
        assert_ne!(nested, flat);
    }

    #[test]
    fn deterministic_across_hashers() {
        let one = hash_of(|h| {
            h.section("m");
            h.str("src", "int f() { return 1; }");
            h.bool("por", true);
        });
        let two = hash_of(|h| {
            h.section("m");
            h.str("src", "int f() { return 1; }");
            h.bool("por", true);
        });
        assert_eq!(one, two);
    }
}
