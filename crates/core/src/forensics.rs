//! Failure-forensics hooks: first-failure capture and shrink accounting.
//!
//! The paper's obligations fail with a *witness* — an event log that an
//! adversarial environment context can force (§2.3). The bounded checkers
//! report that witness as a human-readable message, which is enough to read
//! but not enough to *reproduce*: the `ccal-forensics` crate re-derives a
//! scripted environment context from the failing log, shrinks it to a
//! 1-minimal counterexample, and replays it deterministically. This module
//! holds the core-side half of that pipeline:
//!
//! * a process-global **capture scope**: while a [`CaptureScope`] is alive,
//!   every checker records its failing cases (grid index, context index,
//!   the concrete machine log at the failure, and the reason) via
//!   [`record`]. Outside a scope, [`record`] is a single relaxed atomic
//!   load — ordinary verification runs pay nothing.
//! * [`ShrinkNote`] — the shrink-accounting record (original vs. minimized
//!   steps, oracle iterations) that [`crate::calculus::Certificate`] and
//!   the verifier's report rendering carry alongside ordinary obligations.
//!
//! The capture scope is exclusive: scopes serialize on a process-global
//! lock so that concurrently running checks (e.g. parallel tests) cannot
//! interleave their captures. The checkers themselves may still run their
//! case grids on many workers inside one scope; captures are indexed by
//! grid case index and sorted on [`CaptureScope::take`], so the
//! *index-least* capture is the same first failure the checker reported.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::log::Log;

/// One captured failing case: everything the forensics pipeline needs to
/// re-derive and replay the adversarial environment context.
#[derive(Debug, Clone)]
pub struct FailingCase {
    /// The checker that failed: `"sim"`, `"live"`, `"linz"`, `"race"` or
    /// `"seqref"`.
    pub checker: &'static str,
    /// The flat case-grid index of the failure (ties captures to the
    /// checker's deterministic index-least first failure).
    pub case_index: usize,
    /// The environment-context index within the checked context family.
    pub ctx_index: usize,
    /// Human-readable case detail (context/args/script indices).
    pub detail: String,
    /// The concrete (lower/implementation) machine log at the failure,
    /// *including* scheduling events — the witness the forensics crate
    /// reifies into a scripted context.
    pub log: Log,
    /// Why the case failed, exactly as the checker reported it.
    pub reason: String,
}

fn active() -> &'static AtomicBool {
    static ACTIVE: AtomicBool = AtomicBool::new(false);
    &ACTIVE
}

fn captured() -> &'static Mutex<Vec<FailingCase>> {
    static CAPTURED: OnceLock<Mutex<Vec<FailingCase>>> = OnceLock::new();
    CAPTURED.get_or_init(|| Mutex::new(Vec::new()))
}

fn gate() -> &'static Mutex<()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
}

/// Whether a capture scope is currently active. Checkers guard the (log
/// clone) cost of building a [`FailingCase`] behind this.
pub fn capturing() -> bool {
    active().load(Ordering::Relaxed)
}

/// Records a failing case into the active capture scope. A no-op when no
/// scope is active.
pub fn record(case: FailingCase) {
    if !capturing() {
        return;
    }
    captured()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(case);
}

/// An exclusive failure-capture scope. While alive, checker failures are
/// recorded process-wide; dropping (or [`CaptureScope::take`]) ends the
/// scope and clears the buffer.
pub struct CaptureScope {
    _gate: MutexGuard<'static, ()>,
}

impl CaptureScope {
    /// Opens a capture scope, waiting for any concurrently active scope to
    /// finish first.
    pub fn begin() -> Self {
        let guard = gate().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        captured()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        active().store(true, Ordering::Relaxed);
        Self { _gate: guard }
    }

    /// Ends the scope and returns every captured failing case, sorted by
    /// grid case index (the first element, if any, is the checker's
    /// deterministic first failure).
    pub fn take(self) -> Vec<FailingCase> {
        let mut cases = std::mem::take(
            &mut *captured()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        cases.sort_by_key(|c| c.case_index);
        cases
        // `self` drops here, releasing the gate and clearing `active`.
    }
}

impl Drop for CaptureScope {
    fn drop(&mut self) {
        active().store(false, Ordering::Relaxed);
        captured()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

/// Shrink accounting for one minimized counterexample, carried by
/// [`crate::calculus::Certificate`] and rendered by the verifier's report:
/// how large the original witness was, how small delta debugging got it,
/// and how many oracle runs that took.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShrinkNote {
    /// The checker whose failure was shrunk.
    pub checker: String,
    /// The object / fixture under check.
    pub object: String,
    /// Steps (schedule slots + scripted environment events) in the
    /// original reified witness.
    pub original_steps: usize,
    /// Steps in the 1-minimal witness.
    pub minimized_steps: usize,
    /// Oracle invocations the delta-debugging loop spent.
    pub iterations: usize,
    /// File name of the emitted trace artifact, if one was written.
    pub artifact: String,
}

impl fmt::Display for ShrinkNote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shrunk {}/{}: {} → {} steps in {} oracle runs",
            self.checker, self.object, self.original_steps, self.minimized_steps, self.iterations
        )?;
        if !self.artifact.is_empty() {
            write!(f, " ({})", self.artifact)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::id::Pid;

    fn case(i: usize) -> FailingCase {
        FailingCase {
            checker: "sim",
            case_index: i,
            ctx_index: i,
            detail: format!("context #{i}"),
            log: Log::from_events([Event::sched(Pid(0))]),
            reason: "boom".to_owned(),
        }
    }

    #[test]
    fn records_only_inside_a_scope_and_sorts_by_index() {
        record(case(9)); // no scope: dropped
        let scope = CaptureScope::begin();
        assert!(capturing());
        record(case(5));
        record(case(2));
        record(case(7));
        let got = scope.take();
        assert!(!capturing());
        assert_eq!(
            got.iter().map(|c| c.case_index).collect::<Vec<_>>(),
            vec![2, 5, 7]
        );
        // A later scope starts empty.
        let scope = CaptureScope::begin();
        assert!(scope.take().is_empty());
    }

    #[test]
    fn dropping_a_scope_clears_and_deactivates() {
        {
            let _scope = CaptureScope::begin();
            record(case(1));
        }
        assert!(!capturing());
        let scope = CaptureScope::begin();
        record(case(3));
        assert_eq!(scope.take().len(), 1);
    }

    #[test]
    fn shrink_note_renders_accounting() {
        let note = ShrinkNote {
            checker: "live".into(),
            object: "impatient-waiter".into(),
            original_steps: 14,
            minimized_steps: 3,
            iterations: 27,
            artifact: "live-impatient-waiter-1a2b.json".into(),
        };
        let s = note.to_string();
        assert!(s.contains("14 → 3 steps"));
        assert!(s.contains("27 oracle runs"));
        assert!(s.contains("live-impatient-waiter-1a2b.json"));
    }
}
