//! Participant, location and queue identifiers.
//!
//! The paper ranges over a domain `D` of thread/CPU IDs (§2). A *participant*
//! is either a CPU (in the multicore layers of §3–§4) or a thread (in the
//! multithreaded layers of §5); both are identified by a [`Pid`]. Memory
//! locations `b` (§3.1) are identified by [`Loc`], and the scheduler's
//! queues (ready/pending/sleeping, §5.1) by [`QId`].

use std::collections::BTreeSet;
use std::fmt;

/// A participant identifier: a CPU ID `c` or a thread ID `t` in the paper's
/// domain `D` (§2). Which one it denotes is determined by the layer stack in
/// which it is used; the game-semantic model treats both uniformly.
///
/// # Examples
///
/// ```
/// use ccal_core::id::Pid;
/// let cpu0 = Pid(0);
/// assert_eq!(cpu0.to_string(), "p0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for Pid {
    fn from(raw: u32) -> Self {
        Pid(raw)
    }
}

/// A shared- or private-memory location `b` (§3.1).
///
/// In the machine substrate a location resolves to a (block, offset) pair;
/// at the layer-interface level locations are opaque names for shared
/// objects (a lock word, a queue header, ...), exactly as in the paper's
/// events `c.pull(b)`, `c.push(b, v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Loc(pub u32);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<u32> for Loc {
    fn from(raw: u32) -> Self {
        Loc(raw)
    }
}

/// Identifier of a scheduler queue (ready / pending / sleeping queue, §5.1)
/// or of any other indexed shared object such as a shared thread queue
/// (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QId(pub u32);

impl fmt::Display for QId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for QId {
    fn from(raw: u32) -> Self {
        QId(raw)
    }
}

/// A focused participant set `A ⊆ D` (§2): the subset of threads/CPUs whose
/// execution a layer machine `L[A]` captures. Participants outside the set
/// belong to the environment context.
///
/// # Examples
///
/// ```
/// use ccal_core::id::{Pid, PidSet};
/// let a = PidSet::from_pids([Pid(1), Pid(2)]);
/// let b = PidSet::from_pids([Pid(3)]);
/// assert!(a.is_disjoint(&b));
/// let d = a.union(&b);
/// assert_eq!(d.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PidSet {
    inner: BTreeSet<Pid>,
}

impl PidSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a singleton focused set `{i}`, written `L[i]` in the paper.
    pub fn singleton(pid: Pid) -> Self {
        let mut inner = BTreeSet::new();
        inner.insert(pid);
        Self { inner }
    }

    /// Creates a set from any collection of participant ids.
    pub fn from_pids<I: IntoIterator<Item = Pid>>(pids: I) -> Self {
        Self {
            inner: pids.into_iter().collect(),
        }
    }

    /// The full domain `D = {0, 1, ..., n-1}` of `n` participants.
    pub fn domain(n: u32) -> Self {
        Self::from_pids((0..n).map(Pid))
    }

    /// Inserts a participant; returns `true` if newly added.
    pub fn insert(&mut self, pid: Pid) -> bool {
        self.inner.insert(pid)
    }

    /// Whether the set contains `pid`.
    pub fn contains(&self, pid: Pid) -> bool {
        self.inner.contains(&pid)
    }

    /// Number of focused participants.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Set union, used by the parallel composition rule `Pcomp` to form
    /// `L[A ∪ B]` (Fig. 9).
    pub fn union(&self, other: &Self) -> Self {
        Self {
            inner: self.inner.union(&other.inner).copied().collect(),
        }
    }

    /// Whether the two focused sets are disjoint — the `A ⊥ B` premise of
    /// the `Compat` rule (Fig. 9).
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.inner.is_disjoint(&other.inner)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.inner.is_subset(&other.inner)
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Pid> + '_ {
        self.inner.iter().copied()
    }
}

impl fmt::Display for PidSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.inner.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Pid> for PidSet {
    fn from_iter<I: IntoIterator<Item = Pid>>(iter: I) -> Self {
        Self::from_pids(iter)
    }
}

impl Extend<Pid> for PidSet {
    fn extend<I: IntoIterator<Item = Pid>>(&mut self, iter: I) {
        self.inner.extend(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_contains_only_its_pid() {
        let s = PidSet::singleton(Pid(3));
        assert!(s.contains(Pid(3)));
        assert!(!s.contains(Pid(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn domain_enumerates_all_pids() {
        let d = PidSet::domain(4);
        assert_eq!(d.len(), 4);
        for i in 0..4 {
            assert!(d.contains(Pid(i)));
        }
    }

    #[test]
    fn union_and_disjointness() {
        let a = PidSet::from_pids([Pid(0), Pid(1)]);
        let b = PidSet::from_pids([Pid(2)]);
        assert!(a.is_disjoint(&b));
        let u = a.union(&b);
        assert_eq!(u, PidSet::domain(3));
        assert!(!u.is_disjoint(&a));
    }

    #[test]
    fn subset_relation() {
        let a = PidSet::from_pids([Pid(0)]);
        let d = PidSet::domain(2);
        assert!(a.is_subset(&d));
        assert!(!d.is_subset(&a));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Pid(7).to_string(), "p7");
        assert_eq!(Loc(1).to_string(), "b1");
        assert_eq!(QId(2).to_string(), "q2");
        assert_eq!(PidSet::domain(2).to_string(), "{p0,p1}");
    }

    #[test]
    fn from_iterator_collects() {
        let s: PidSet = (0..3).map(Pid).collect();
        assert_eq!(s, PidSet::domain(3));
    }
}
