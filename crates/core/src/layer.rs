//! Concurrent layer interfaces.
//!
//! "A concurrent layer interface `L[A]` \[is\] defined as a tuple `(L, R, G)`"
//! (§3.2): a collection of primitives `L`, a rely condition `R` specifying
//! the valid environment contexts, and a guarantee condition `G` that the
//! log must satisfy after each local step. The layer machine based on
//! `L[A]` is the base machine extended with the abstract state and
//! primitives of `L`.
//!
//! # Primitives as resumable strategies
//!
//! A primitive's semantics `σ_f` is, in general, a *strategy*: it may query
//! the environment context at query points, emit events, and eventually
//! return a value (§2's `φ′_acq` queries `E` on every spin iteration). We
//! represent an invocation as a [`PrimRun`] — a resumable state machine
//! whose [`PrimRun::resume`] either requests an environment query
//! ([`PrimStep::Query`]) or completes ([`PrimStep::Done`]). This makes one
//! representation serve both the sequential CPU-local machines and the
//! multi-participant game of the parallel composition rule: a driver
//! interleaves any number of in-flight runs at their query points.
//!
//! Atomic primitives (one event, return value computed by replay) are the
//! common case; build them with [`PrimSpec::atomic`] or
//! [`PrimSpec::atomic_unqueried`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::abs::AbsState;
use crate::event::{Event, EventKind};
use crate::id::Pid;
use crate::log::Log;
use crate::machine::MachineError;
use crate::rely::RelyGuarantee;
use crate::val::Val;

/// Whether the machine is in the *critical state* for a participant: "it
/// then enters a so-called critical state ... to prevent losing the control
/// until the lock is released. Thus, there is no need to ask `E` in critical
/// state" (§2). The predicate is computed from the log (by replay), keeping
/// the machine state a function of the log.
pub type CriticalFn = dyn Fn(Pid, &Log) -> bool + Send + Sync;

/// The visible machine state a primitive invocation operates on: the
/// caller's id, the abstract state `a`, the global log `l`, and the
/// interface itself (so that module code can invoke underlay primitives).
pub struct PrimCtx<'a> {
    /// The participant executing the primitive.
    pub pid: Pid,
    /// The layer's abstract state.
    pub abs: &'a mut AbsState,
    /// The global log.
    pub log: &'a mut Log,
    /// The interface this computation runs over (its *underlay* when the
    /// computation is module code).
    pub iface: &'a LayerInterface,
}

impl PrimCtx<'_> {
    /// Appends an event authored by the calling participant — the paper's
    /// `!i.e` move.
    pub fn emit(&mut self, kind: EventKind) {
        self.log.append(Event::new(self.pid, kind));
    }

    /// Instantiates a run of primitive `name` of the ambient interface,
    /// for use by module code calling its underlay.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownPrim`] if the interface has no such
    /// primitive.
    pub fn start_call(&self, name: &str, args: Vec<Val>) -> Result<Box<dyn PrimRun>, MachineError> {
        let spec = self.iface.prim(name)?;
        Ok(spec.instantiate(self.pid, args))
    }
}

impl fmt::Debug for PrimCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PrimCtx")
            .field("pid", &self.pid)
            .field("log_len", &self.log.len())
            .field("iface", &self.iface.name)
            .finish()
    }
}

/// The outcome of resuming a primitive run.
#[derive(Debug)]
pub enum PrimStep {
    /// The run has reached a query point: the driver must deliver
    /// environment events (§3.2's `E[A, l]`) before resuming. Drivers
    /// skip the actual query when the participant is in the critical
    /// state (§2).
    Query,
    /// The run completed, returning a value.
    Done(Val),
}

/// A resumable primitive (or module-function) invocation.
///
/// Implementations hold whatever internal state the computation needs (a
/// program counter, an interpreter continuation, a pending sub-call); all
/// *shared* state must be read from the log via replay, never cached across
/// query points.
pub trait PrimRun: Send {
    /// Advances the run until its next query point or completion.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`]; in particular [`MachineError::Stuck`] when the
    /// invocation is undefined at the current state — the paper's partial
    /// specification "gets stuck" (Fig. 6).
    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError>;

    /// Forks the run at its current internal state, producing an
    /// independent copy that resumes identically. This is what lets the
    /// query-point snapshot trie ([`crate::prefix::SnapshotTrie`]) capture
    /// a machine *mid-primitive*: at a query point the run's private state
    /// plus the machine state determine the rest of the execution, so a
    /// forked pair diverges only through the events their environments
    /// append.
    ///
    /// The default returns `None` (not forkable); snapshotting drivers
    /// then simply skip the cut point, which is always sound. Implement it
    /// (typically `Some(Box::new(self.clone()))`) for runs whose state is
    /// cheaply clonable.
    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        None
    }

    /// Feeds a canonical digest of the run's *private resumption state*
    /// (program counter, registers, pending sub-call, ...) into `h` for
    /// the convergence fingerprint, returning `true` on success. The
    /// default returns `false` — "not fingerprintable" — and the
    /// convergence cache then simply skips the cut point, which is always
    /// sound. Two runs that digest equal must resume identically given
    /// identical machine state and environment events.
    fn state_fp(&self, _h: &mut crate::fingerprint::ContentHasher) -> bool {
        false
    }
}

/// A [`PrimRun`] that is already finished: resuming returns the stored
/// value. Used by [`SubCall::fork`] to stand in for a completed callee —
/// the original run is never resumed again once `done` is set, so the stub
/// is observationally equivalent.
struct CompletedRun(Val);

impl PrimRun for CompletedRun {
    fn resume(&mut self, _ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        Ok(PrimStep::Done(self.0.clone()))
    }

    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(CompletedRun(self.0.clone())))
    }

    fn state_fp(&self, h: &mut crate::fingerprint::ContentHasher) -> bool {
        h.section("run.completed");
        h.val("run.value", &self.0);
        true
    }
}

/// Helper for module code that calls a primitive of its underlay: drives a
/// nested [`PrimRun`], bubbling its query points to the caller.
///
/// ```ignore
/// // inside some PrimRun::resume
/// if let Some(v) = self.sub.step(ctx)? { /* call finished with v */ }
/// else { return Ok(PrimStep::Query); }
/// ```
pub struct SubCall {
    run: Box<dyn PrimRun>,
    done: Option<Val>,
}

impl SubCall {
    /// Starts a sub-call of `name` on the ambient interface of `ctx`.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownPrim`] if the primitive does not exist.
    pub fn start(ctx: &PrimCtx<'_>, name: &str, args: Vec<Val>) -> Result<Self, MachineError> {
        Ok(Self {
            run: ctx.start_call(name, args)?,
            done: None,
        })
    }

    /// Resumes the sub-call one step. Returns `Some(v)` when it has
    /// completed with value `v` (idempotently thereafter), `None` when it
    /// hit a query point — in which case the caller must itself return
    /// [`PrimStep::Query`] and call `step` again after resumption.
    ///
    /// # Errors
    ///
    /// Propagates errors from the callee.
    pub fn step(&mut self, ctx: &mut PrimCtx<'_>) -> Result<Option<Val>, MachineError> {
        if let Some(v) = &self.done {
            return Ok(Some(v.clone()));
        }
        match self.run.resume(ctx)? {
            PrimStep::Query => Ok(None),
            PrimStep::Done(v) => {
                self.done = Some(v.clone());
                Ok(Some(v))
            }
        }
    }

    /// Forks the sub-call for a query-point snapshot. A completed call
    /// forks into a stub replaying the finished value (the real run is
    /// never resumed after completion); an in-flight call forks its inner
    /// run via [`PrimRun::fork_run`], returning `None` when the callee
    /// does not support forking.
    pub fn fork(&self) -> Option<SubCall> {
        if let Some(v) = &self.done {
            return Some(SubCall {
                run: Box::new(CompletedRun(v.clone())),
                done: Some(v.clone()),
            });
        }
        Some(SubCall {
            run: self.run.fork_run()?,
            done: None,
        })
    }

    /// Feeds the sub-call's state into a convergence fingerprint
    /// ([`PrimRun::state_fp`]): the finished value for a completed call,
    /// the inner run's digest for an in-flight one.
    pub fn state_fp(&self, h: &mut crate::fingerprint::ContentHasher) -> bool {
        h.section("subcall");
        match &self.done {
            Some(v) => {
                h.bool("subcall.done", true);
                h.val("subcall.value", v);
                true
            }
            None => {
                h.bool("subcall.done", false);
                self.run.state_fp(h)
            }
        }
    }
}

impl fmt::Debug for SubCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubCall").field("done", &self.done).finish()
    }
}

type PrimBody = dyn Fn(&mut PrimCtx<'_>, &[Val]) -> Result<Val, MachineError> + Send + Sync;
type PrimFactory = dyn Fn(Pid, Vec<Val>) -> Box<dyn PrimRun> + Send + Sync;

/// The specification of one layer primitive: its name, whether it is
/// *shared* (observable — it generates events and is preceded by a query
/// point, §3.1) and a factory creating a [`PrimRun`] per invocation.
#[derive(Clone)]
pub struct PrimSpec {
    name: String,
    shared: bool,
    factory: Arc<PrimFactory>,
}

#[derive(Clone)]
struct AtomicRun {
    queried: bool,
    needs_query: bool,
    args: Vec<Val>,
    body: Arc<PrimBody>,
}

impl PrimRun for AtomicRun {
    fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
        if self.needs_query && !self.queried {
            self.queried = true;
            return Ok(PrimStep::Query);
        }
        let ret = (self.body)(ctx, &self.args)?;
        Ok(PrimStep::Done(ret))
    }

    fn fork_run(&self) -> Option<Box<dyn PrimRun>> {
        Some(Box::new(self.clone()))
    }

    fn state_fp(&self, h: &mut crate::fingerprint::ContentHasher) -> bool {
        h.section("run.atomic");
        h.bool("run.queried", self.queried);
        h.bool("run.needs_query", self.needs_query);
        h.usize("run.nargs", self.args.len());
        for (i, a) in self.args.iter().enumerate() {
            h.val(&format!("run.arg[{i}]"), a);
        }
        // The body is identified by the Arc allocation it was installed
        // under: within one checker invocation the interface (and thus
        // every body Arc) stays alive, so distinct live bodies never share
        // an address and the same primitive always reports the same one.
        h.usize("run.body", Arc::as_ptr(&self.body).cast::<()>() as usize);
        true
    }
}

impl PrimSpec {
    /// A shared atomic primitive: queries the environment once (the query
    /// point "just before executing shared primitives", §3.2), then runs
    /// `body` in a single step. `body` typically emits one event and
    /// computes its return value with a replay function.
    pub fn atomic<F>(name: &str, body: F) -> Self
    where
        F: Fn(&mut PrimCtx<'_>, &[Val]) -> Result<Val, MachineError> + Send + Sync + 'static,
    {
        Self::from_body(name, true, true, body)
    }

    /// A shared atomic primitive *without* a preceding query point — like
    /// `σ_push` ("do not query E", Fig. 8) and `inc_n`, which execute in
    /// the critical state.
    pub fn atomic_unqueried<F>(name: &str, body: F) -> Self
    where
        F: Fn(&mut PrimCtx<'_>, &[Val]) -> Result<Val, MachineError> + Send + Sync + 'static,
    {
        Self::from_body(name, true, false, body)
    }

    /// A private (thread-/CPU-local) primitive: unobservable, no events,
    /// no query point (§3.1: private primitive calls are "silent").
    pub fn private<F>(name: &str, body: F) -> Self
    where
        F: Fn(&mut PrimCtx<'_>, &[Val]) -> Result<Val, MachineError> + Send + Sync + 'static,
    {
        Self::from_body(name, false, false, body)
    }

    fn from_body<F>(name: &str, shared: bool, needs_query: bool, body: F) -> Self
    where
        F: Fn(&mut PrimCtx<'_>, &[Val]) -> Result<Val, MachineError> + Send + Sync + 'static,
    {
        let body: Arc<PrimBody> = Arc::new(body);
        Self {
            name: name.to_owned(),
            shared,
            factory: Arc::new(move |_pid, args| {
                Box::new(AtomicRun {
                    queried: false,
                    needs_query,
                    args,
                    body: body.clone(),
                })
            }),
        }
    }

    /// A primitive with a custom resumable implementation — used for
    /// multi-step strategies such as the spinning `φ′_acq` (§2) and for
    /// module code installed as overlay primitives.
    pub fn strategy<F>(name: &str, shared: bool, factory: F) -> Self
    where
        F: Fn(Pid, Vec<Val>) -> Box<dyn PrimRun> + Send + Sync + 'static,
    {
        Self {
            name: name.to_owned(),
            shared,
            factory: Arc::new(factory),
        }
    }

    /// The primitive's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the primitive is shared (observable).
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// Creates a fresh run of this primitive for participant `pid` with
    /// the given arguments.
    pub fn instantiate(&self, pid: Pid, args: Vec<Val>) -> Box<dyn PrimRun> {
        (self.factory)(pid, args)
    }
}

impl fmt::Debug for PrimSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PrimSpec")
            .field("name", &self.name)
            .field("shared", &self.shared)
            .finish()
    }
}

/// A concurrent layer interface `L` (to be focused as `L[A]` by a machine):
/// primitives, rely/guarantee conditions, the critical-state predicate and
/// the initial abstract state.
///
/// The primitive table is `Arc`-backed: the bounded checker clones the
/// interface once per checked case, so that clone must stay a handful of
/// reference-count bumps even for wide interfaces.
#[derive(Clone)]
pub struct LayerInterface {
    /// The interface's name (e.g. `"L0"`, `"L_lock"`).
    pub name: String,
    prims: Arc<BTreeMap<String, PrimSpec>>,
    /// Rely and guarantee conditions (§3.2).
    pub conditions: RelyGuarantee,
    critical: Arc<CriticalFn>,
    /// Initial abstract state of machines over this interface.
    pub init_abs: AbsState,
}

impl LayerInterface {
    /// Starts building an interface.
    pub fn builder(name: &str) -> LayerInterfaceBuilder {
        LayerInterfaceBuilder {
            name: name.to_owned(),
            prims: BTreeMap::new(),
            conditions: RelyGuarantee::none(),
            critical: Arc::new(|_, _| false),
            init_abs: AbsState::new(),
        }
    }

    /// Looks up a primitive.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownPrim`] if absent.
    pub fn prim(&self, name: &str) -> Result<&PrimSpec, MachineError> {
        self.prims.get(name).ok_or_else(|| MachineError::UnknownPrim {
            prim: name.to_owned(),
            iface: self.name.clone(),
        })
    }

    /// Whether the interface provides primitive `name`.
    pub fn has_prim(&self, name: &str) -> bool {
        self.prims.contains_key(name)
    }

    /// Names of all primitives, sorted.
    pub fn prim_names(&self) -> Vec<&str> {
        self.prims.keys().map(String::as_str).collect()
    }

    /// The critical-state predicate.
    pub fn is_critical(&self, pid: Pid, log: &Log) -> bool {
        (self.critical)(pid, log)
    }

    /// Returns a copy of this interface with different rely/guarantee
    /// conditions — used by the `Compat`/`Pcomp` rules (Fig. 9), which
    /// re-equip the composed interface `L[A ∪ B]` with merged conditions.
    pub fn with_conditions(&self, conditions: crate::rely::RelyGuarantee) -> LayerInterface {
        let mut out = self.clone();
        out.conditions = conditions;
        out
    }

    /// The union `L₁ ⊕ L₂` of two interfaces' primitive collections
    /// (Fig. 9, `Hcomp`): primitives are merged; rely/guarantee and
    /// critical predicates are conjoined; initial abstract states merged.
    ///
    /// # Errors
    ///
    /// [`MachineError::DuplicatePrim`] if both define a primitive of the
    /// same name.
    pub fn join(&self, other: &LayerInterface) -> Result<LayerInterface, MachineError> {
        let mut prims = (*self.prims).clone();
        for (k, v) in other.prims.iter() {
            if prims.insert(k.clone(), v.clone()).is_some() {
                return Err(MachineError::DuplicatePrim {
                    prim: k.clone(),
                    iface: format!("{} ⊕ {}", self.name, other.name),
                });
            }
        }
        let c1 = self.critical.clone();
        let c2 = other.critical.clone();
        Ok(LayerInterface {
            name: format!("{} ⊕ {}", self.name, other.name),
            prims: Arc::new(prims),
            conditions: RelyGuarantee::new(
                self.conditions.rely.and(&other.conditions.rely),
                self.conditions.guarantee.and(&other.conditions.guarantee),
            ),
            critical: Arc::new(move |p, l| c1(p, l) || c2(p, l)),
            init_abs: self.init_abs.clone().merged_with(&other.init_abs),
        })
    }
}

impl fmt::Debug for LayerInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LayerInterface")
            .field("name", &self.name)
            .field("prims", &self.prim_names())
            .finish()
    }
}

/// Builder for [`LayerInterface`].
pub struct LayerInterfaceBuilder {
    name: String,
    prims: BTreeMap<String, PrimSpec>,
    conditions: RelyGuarantee,
    critical: Arc<CriticalFn>,
    init_abs: AbsState,
}

impl LayerInterfaceBuilder {
    /// Adds a primitive. Later additions with the same name replace
    /// earlier ones.
    pub fn prim(mut self, spec: PrimSpec) -> Self {
        self.prims.insert(spec.name().to_owned(), spec);
        self
    }

    /// Sets the rely/guarantee conditions.
    pub fn conditions(mut self, conditions: RelyGuarantee) -> Self {
        self.conditions = conditions;
        self
    }

    /// Sets the critical-state predicate.
    pub fn critical<F>(mut self, f: F) -> Self
    where
        F: Fn(Pid, &Log) -> bool + Send + Sync + 'static,
    {
        self.critical = Arc::new(f);
        self
    }

    /// Sets the initial abstract state.
    pub fn init_abs(mut self, abs: AbsState) -> Self {
        self.init_abs = abs;
        self
    }

    /// Finishes the interface.
    pub fn build(self) -> LayerInterface {
        LayerInterface {
            name: self.name,
            prims: Arc::new(self.prims),
            conditions: self.conditions,
            critical: self.critical,
            init_abs: self.init_abs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Loc;

    fn counter_iface() -> LayerInterface {
        LayerInterface::builder("L-counter")
            .prim(PrimSpec::atomic("tick", |ctx, _args| {
                ctx.emit(EventKind::Prim("tick".into(), vec![]));
                let n = ctx
                    .log
                    .iter()
                    .filter(|e| matches!(&e.kind, EventKind::Prim(p, _) if p == "tick"))
                    .count();
                Ok(Val::Int(n as i64))
            }))
            .build()
    }

    #[test]
    fn builder_and_lookup() {
        let iface = counter_iface();
        assert!(iface.has_prim("tick"));
        assert!(iface.prim("tock").is_err());
        assert_eq!(iface.prim_names(), vec!["tick"]);
    }

    #[test]
    fn atomic_prim_queries_then_executes() {
        let iface = counter_iface();
        let mut abs = AbsState::new();
        let mut log = Log::new();
        let mut run = iface.prim("tick").unwrap().instantiate(Pid(0), vec![]);
        let mut ctx = PrimCtx {
            pid: Pid(0),
            abs: &mut abs,
            log: &mut log,
            iface: &iface,
        };
        // First resume hits the query point.
        assert!(matches!(run.resume(&mut ctx).unwrap(), PrimStep::Query));
        // Second resume performs the call.
        match run.resume(&mut ctx).unwrap() {
            PrimStep::Done(v) => assert_eq!(v, Val::Int(1)),
            other => panic!("unexpected step {other:?}"),
        }
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn unqueried_prim_executes_immediately() {
        let iface = LayerInterface::builder("L")
            .prim(PrimSpec::atomic_unqueried("push", |ctx, args| {
                let b = args[0].as_loc()?;
                ctx.emit(EventKind::Push(b, Val::Int(0)));
                Ok(Val::Unit)
            }))
            .build();
        let mut abs = AbsState::new();
        let mut log = Log::new();
        let mut run = iface
            .prim("push")
            .unwrap()
            .instantiate(Pid(1), vec![Val::Loc(Loc(0))]);
        let mut ctx = PrimCtx {
            pid: Pid(1),
            abs: &mut abs,
            log: &mut log,
            iface: &iface,
        };
        assert!(matches!(run.resume(&mut ctx).unwrap(), PrimStep::Done(_)));
    }

    #[test]
    fn join_merges_prims_and_rejects_duplicates() {
        let a = counter_iface();
        let b = LayerInterface::builder("L2")
            .prim(PrimSpec::private("noop", |_, _| Ok(Val::Unit)))
            .build();
        let joined = a.join(&b).unwrap();
        assert!(joined.has_prim("tick") && joined.has_prim("noop"));
        assert!(a.join(&counter_iface()).is_err());
    }

    #[test]
    fn subcall_bubbles_queries() {
        let iface = counter_iface();
        let mut abs = AbsState::new();
        let mut log = Log::new();
        let mut ctx = PrimCtx {
            pid: Pid(0),
            abs: &mut abs,
            log: &mut log,
            iface: &iface,
        };
        let mut sub = SubCall::start(&ctx, "tick", vec![]).unwrap();
        assert_eq!(sub.step(&mut ctx).unwrap(), None, "query point bubbles");
        assert_eq!(sub.step(&mut ctx).unwrap(), Some(Val::Int(1)));
        // Idempotent after completion.
        assert_eq!(sub.step(&mut ctx).unwrap(), Some(Val::Int(1)));
    }
}
