//! # ccal-core — Certified Concurrent Abstraction Layers (the calculus)
//!
//! A Rust reproduction of the core of **CCAL**, the toolkit of *"Certified
//! Concurrent Abstraction Layers"* (Gu et al., PLDI 2018): the
//! game-theoretical, strategy-based compositional semantic model for
//! shared-memory concurrency, and the concurrent layer calculus used to
//! specify, verify and compose certified concurrent abstraction layers.
//!
//! ## The model in one paragraph
//!
//! All shared state is a single global [`log::Log`] of observable
//! [`event::Event`]s; shared state is reconstructed from the log by
//! [`replay`] functions. Each participant (CPU or thread, [`id::Pid`])
//! plays a [`strategy::Strategy`] — a deterministic partial function from
//! logs to moves. A layer interface [`layer::LayerInterface`] packages
//! primitives (executable, resumable strategies), a rely condition on
//! environment contexts and a guarantee condition on the log
//! ([`rely::RelyGuarantee`]). Execution of a focused participant set over
//! an interface is a *game* against an [`env::EnvContext`]
//! ([`machine::LayerMachine`] for one participant,
//! [`conc::ConcurrentMachine`] for many). Refinement between layers is
//! strategy simulation ([`sim`], Def. 2.1), checked exhaustively over
//! bounded families of environment contexts ([`contexts::ContextGen`]).
//! The layer calculus ([`calculus`], Fig. 9) composes checked layers
//! vertically, horizontally and in parallel, and [`refine`] provides the
//! executable soundness theorem (Thm 2.2).
//!
//! ## Where the rest of the system lives
//!
//! * `ccal-machine` — the multicore machine model `Mx86` with the
//!   push/pull memory model (§3.1) and multicore linking (Thm 3.1);
//! * `ccal-clightx` — the C-like layered source language;
//! * `ccal-compcertx` — the thread-safe compiler with translation
//!   validation and the algebraic memory model (§5.5, Fig. 12);
//! * `ccal-objects` — the certified objects of §4–§5 (ticket/MCS locks,
//!   shared queues, schedulers, queuing locks, condition variables, IPC);
//! * `ccal-verifier` — linearizability, liveness and race checkers.
//!
//! ## Example: certify a one-function layer
//!
//! ```
//! use ccal_core::prelude::*;
//!
//! // Underlay L0 with an atomic primitive `step`.
//! let l0 = LayerInterface::builder("L0")
//!     .prim(PrimSpec::atomic("step", |ctx, _args| {
//!         ctx.emit(EventKind::Prim("step".into(), vec![]));
//!         Ok(Val::Unit)
//!     }))
//!     .build();
//! // Overlay L1 re-exporting `step` (pass-through implementation).
//! let l1 = LayerInterface::builder("L1")
//!     .prim(PrimSpec::atomic("step", |ctx, _args| {
//!         ctx.emit(EventKind::Prim("step".into(), vec![]));
//!         Ok(Val::Unit)
//!     }))
//!     .build();
//! let contexts = ContextGen::new(vec![Pid(0), Pid(1)]).with_schedule_len(2).contexts();
//! let layer = check_fun(
//!     &l0,
//!     &Module::new("M"),
//!     &l1,
//!     &SimRelation::identity(),
//!     Pid(0),
//!     &CheckOptions::new(contexts),
//! )?;
//! assert!(layer.certificate.total_cases() > 0);
//! # Ok::<(), ccal_core::calculus::LayerError>(())
//! ```

#![warn(missing_docs)]

pub mod abs;
pub mod calculus;
pub mod conc;
pub mod contexts;
pub mod env;
pub mod envflag;
pub mod event;
pub mod explore;
pub mod fingerprint;
pub mod forensics;
pub mod id;
pub mod layer;
pub mod log;
pub mod machine;
pub mod module;
pub mod par;
pub mod por;
pub mod prefix;
pub mod refine;
pub mod rely;
pub mod replay;
pub mod sim;
pub mod strategy;
pub mod val;

/// Convenience re-exports of the types used by nearly every client.
pub mod prelude {
    pub use crate::abs::AbsState;
    pub use crate::calculus::{
        check_fun, check_iface_refinement, empty, hcomp, pcomp, vcomp, weaken, Certificate,
        CertifiedLayer, CheckOptions, IfaceRefinement, LayerError, Obligation, Rule,
    };
    pub use crate::conc::{ConcurrentMachine, ConcurrentOutcome, ThreadScript};
    pub use crate::contexts::ContextGen;
    pub use crate::env::EnvContext;
    pub use crate::event::{
        declare_prim_footprint, prim_footprint, Event, EventKind, Footprint, PrimFootprint,
    };
    pub use crate::explore::{Case, ExploreOptions, Explored, Kernel, RunSnap};
    pub use crate::forensics::{CaptureScope, FailingCase, ShrinkNote};
    pub use crate::id::{Loc, Pid, PidSet, QId};
    pub use crate::layer::{LayerInterface, PrimCtx, PrimRun, PrimSpec, PrimStep, SubCall};
    pub use crate::log::Log;
    pub use crate::machine::{LayerMachine, MachineError};
    pub use crate::module::{Lang, Module, ModuleFn};
    pub use crate::por::{por_enabled, PidIndependence};
    pub use crate::prefix::{prefix_share_enabled, PrefixMemo, ScheduleKey};
    pub use crate::refine::{behaviors, check_contextual_refinement, ClientProgram};
    pub use crate::rely::{Conditions, Invariant, ProbeSuite, RelyGuarantee};
    pub use crate::replay::{
        deq_result, my_ticket, replay_atomic_lock, replay_atomic_queue, replay_shared,
        replay_ticket, Ownership, ReplayError, SharedCell, TicketState,
    };
    pub use crate::sim::{
        check_prim_refinement, replay_env, replay_env_set, SimFailure, SimOptions, SimRelation,
    };
    pub use crate::strategy::{
        is_fair_schedule, FnStrategy, IdleStrategy, RoundRobinScheduler, ScratchPlayer,
        ScriptPlayer, ScriptScheduler, Strategy, StrategyMove,
    };
    pub use crate::val::Val;
}
