//! The (sequential-like) layer machine for a focused participant.
//!
//! "Consider the case where the focused thread set is a singleton `{i}`.
//! Since the environmental executions (including the interleavings) are all
//! encapsulated into the environment context, `L[i]` is actually a
//! sequential-like (or local) interface parameterized over `E`. Before each
//! move of a client program `P` over this local interface, the layer
//! machine first repeatedly asks `E` for environmental events until the
//! control is transferred to `i`. It then makes the move based on received
//! events" (§2).
//!
//! [`LayerMachine`] is that machine: it drives [`PrimRun`]s, delivering
//! environment events at query points (unless the participant is in the
//! critical state), checking the rely condition on received events and the
//! guarantee condition on every local step.

use std::fmt;

use crate::abs::{AbsError, AbsState};
use crate::env::{EnvContext, EnvError};
use crate::id::{Pid, PidSet};
use crate::layer::{LayerInterface, PrimCtx, PrimRun, PrimStep};
use crate::log::Log;
use crate::replay::ReplayError;
use crate::val::{Val, ValError};

/// Errors of layer-machine execution. `Stuck` is the semantic "the machine
/// gets stuck" of the paper — e.g. a data race under the push/pull model;
/// the others are verification-infrastructure failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A primitive was called that the interface does not provide.
    UnknownPrim {
        /// The missing primitive.
        prim: String,
        /// The interface queried.
        iface: String,
    },
    /// Two joined interfaces or linked modules both define this name.
    DuplicatePrim {
        /// The colliding name.
        prim: String,
        /// The interface/module being formed.
        iface: String,
    },
    /// The machine is stuck: an undefined transition was attempted.
    Stuck(String),
    /// A replay function got stuck (data race / protocol violation).
    Replay(ReplayError),
    /// Abstract-state access failed.
    Abs(AbsError),
    /// Dynamic value typing failed.
    Val(ValError),
    /// Querying the environment context failed.
    Env(EnvError),
    /// The environment produced events violating the rely condition; the
    /// context is invalid and verifiers treat the run as vacuous.
    RelyViolated {
        /// Name of the violated invariant.
        invariant: String,
        /// Observer participant.
        pid: Pid,
    },
    /// A local step violated the layer's guarantee condition — a real
    /// verification failure.
    GuaranteeViolated {
        /// Name of the violated invariant.
        invariant: String,
        /// The participant whose step violated it.
        pid: Pid,
        /// Log length at the violation.
        log_len: usize,
    },
    /// The step budget was exhausted (possible divergence or liveness
    /// failure).
    OutOfFuel {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl MachineError {
    /// Whether the error indicates an *invalid environment context* (rely
    /// violation or unfair scheduling) rather than a defect of the code
    /// under test. Verifiers skip such contexts: the paper only quantifies
    /// over valid environment contexts (§3.2).
    pub fn is_invalid_context(&self) -> bool {
        matches!(
            self,
            MachineError::RelyViolated { .. } | MachineError::Env(EnvError::Unfair { .. })
        )
    }
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::UnknownPrim { prim, iface } => {
                write!(f, "interface {iface} has no primitive `{prim}`")
            }
            MachineError::DuplicatePrim { prim, iface } => {
                write!(f, "duplicate primitive `{prim}` while forming {iface}")
            }
            MachineError::Stuck(msg) => write!(f, "machine stuck: {msg}"),
            MachineError::Replay(e) => write!(f, "{e}"),
            MachineError::Abs(e) => write!(f, "{e}"),
            MachineError::Val(e) => write!(f, "{e}"),
            MachineError::Env(e) => write!(f, "{e}"),
            MachineError::RelyViolated { invariant, pid } => {
                write!(f, "rely condition `{invariant}` violated (observer {pid})")
            }
            MachineError::GuaranteeViolated {
                invariant,
                pid,
                log_len,
            } => write!(
                f,
                "guarantee `{invariant}` violated by {pid} at log length {log_len}"
            ),
            MachineError::OutOfFuel { budget } => {
                write!(f, "machine ran out of fuel (budget {budget})")
            }
        }
    }
}

impl std::error::Error for MachineError {}

impl From<ReplayError> for MachineError {
    fn from(e: ReplayError) -> Self {
        MachineError::Replay(e)
    }
}

impl From<AbsError> for MachineError {
    fn from(e: AbsError) -> Self {
        MachineError::Abs(e)
    }
}

impl From<ValError> for MachineError {
    fn from(e: ValError) -> Self {
        MachineError::Val(e)
    }
}

impl From<EnvError> for MachineError {
    fn from(e: EnvError) -> Self {
        MachineError::Env(e)
    }
}

/// The layer machine for one focused participant over an interface `L[i]`,
/// parameterized by an environment context `E`.
///
/// Cloning is cheap — every heavy field is `Arc`/COW-backed — which is what
/// makes [`LayerMachine::fork`] a viable snapshot primitive for the
/// prefix-sharing exploration ([`crate::prefix`]).
#[derive(Clone)]
pub struct LayerMachine {
    iface: LayerInterface,
    /// The focused participant `i`.
    pub pid: Pid,
    focused: PidSet,
    env: EnvContext,
    /// The abstract state `a`.
    pub abs: AbsState,
    /// The global log `l`.
    pub log: Log,
    fuel: u64,
    budget: u64,
}

impl LayerMachine {
    /// Default step budget per machine.
    pub const DEFAULT_FUEL: u64 = 100_000;

    /// Creates a machine for participant `pid` over `iface`, with
    /// environment context `env`. The abstract state starts from the
    /// interface's `init_abs`, the log starts empty.
    pub fn new(iface: LayerInterface, pid: Pid, env: EnvContext) -> Self {
        let abs = iface.init_abs.clone();
        Self {
            iface,
            pid,
            focused: PidSet::singleton(pid),
            env,
            abs,
            log: Log::new(),
            fuel: Self::DEFAULT_FUEL,
            budget: Self::DEFAULT_FUEL,
        }
    }

    /// Overrides the step budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self.budget = fuel;
        self
    }

    /// Starts the machine from a given log (e.g. a non-empty initial log
    /// for simulation checking).
    pub fn with_initial_log(mut self, log: Log) -> Self {
        self.log = log;
        self
    }

    /// The machine's interface.
    pub fn iface(&self) -> &LayerInterface {
        &self.iface
    }

    /// The machine's environment context.
    pub fn env(&self) -> &EnvContext {
        &self.env
    }

    /// Whether the machine is currently in the critical state (§2).
    pub fn in_critical(&self) -> bool {
        self.iface.is_critical(self.pid, &self.log)
    }

    /// Snapshots the machine at a call boundary: a cheap O(alive-handles)
    /// clone of the Arc/COW-backed state (interface, environment, abstract
    /// state, log, remaining fuel). Runs continued from the fork and from
    /// the original diverge only through the events their environments
    /// append — the mechanism behind sharing a common schedule prefix
    /// across grid contexts ([`crate::prefix`]).
    ///
    /// On its own, forking captures the machine *between* primitive calls:
    /// an in-flight [`PrimRun`] lives on the [`LayerMachine::drive`] stack,
    /// outside the machine state. To snapshot mid-primitive, pair the fork
    /// with [`crate::layer::PrimRun::fork_run`] on the in-flight run at a
    /// query point — see [`LayerMachine::drive_with_snapshots`].
    pub fn fork(&self) -> Self {
        self.clone()
    }

    /// [`LayerMachine::fork`] under a different environment context. The
    /// caller asserts that `env` agrees with the snapshot's context on the
    /// schedule prefix already consumed in the log — then the continued run
    /// is exactly the run the new context would have produced from scratch,
    /// because strategies are pure functions of the log.
    pub fn fork_with_env(&self, env: EnvContext) -> Self {
        let mut m = self.clone();
        m.env = env;
        m
    }

    /// Machine steps executed so far (fuel consumed out of the budget) —
    /// the work proxy the prefix-sharing accounting records per executed
    /// lower run.
    pub fn steps_taken(&self) -> u64 {
        self.budget - self.fuel
    }

    /// Consumes one unit of fuel.
    ///
    /// # Errors
    ///
    /// [`MachineError::OutOfFuel`] when the budget is exhausted.
    fn consume_fuel(&mut self) -> Result<(), MachineError> {
        if self.fuel == 0 {
            return Err(MachineError::OutOfFuel { budget: self.budget });
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Delivers environment events at a query point: queries `E` until
    /// control returns to the focused participant, then checks the rely
    /// condition on the extended log. A machine in the critical state does
    /// not query (§2).
    ///
    /// # Errors
    ///
    /// [`MachineError::Env`] if the context is stuck/unfair,
    /// [`MachineError::RelyViolated`] if the received events violate the
    /// rely condition.
    pub fn deliver_env(&mut self) -> Result<(), MachineError> {
        if self.in_critical() {
            return Ok(());
        }
        self.env.extend_until_focused(&self.focused, &mut self.log)?;
        if let Some(inv) = self
            .iface
            .conditions
            .rely
            .first_violation(self.pid, &self.log)
        {
            return Err(MachineError::RelyViolated {
                invariant: inv.name().to_owned(),
                pid: self.pid,
            });
        }
        Ok(())
    }

    /// Calls primitive `name` with `args`, driving its run to completion:
    /// the machine's query points deliver environment events, and the
    /// guarantee condition is checked after every local step.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] arising from the primitive, the environment, or
    /// a guarantee violation.
    pub fn call_prim(&mut self, name: &str, args: &[Val]) -> Result<Val, MachineError> {
        let run = self.iface.prim(name)?.instantiate(self.pid, args.to_vec());
        self.drive(run)
    }

    /// Drives an arbitrary [`PrimRun`] (primitive invocation or module
    /// function body) to completion on this machine.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`]; see [`LayerMachine::call_prim`].
    pub fn drive(&mut self, mut run: Box<dyn PrimRun>) -> Result<Val, MachineError> {
        loop {
            self.consume_fuel()?;
            let step = {
                let mut ctx = PrimCtx {
                    pid: self.pid,
                    abs: &mut self.abs,
                    log: &mut self.log,
                    iface: &self.iface,
                };
                run.resume(&mut ctx)?
            };
            self.check_guarantee()?;
            match step {
                PrimStep::Query => self.deliver_env()?,
                PrimStep::Done(v) => return Ok(v),
            }
        }
    }

    /// Like [`LayerMachine::call_prim`], additionally invoking `hook` at
    /// every query point reached outside the critical state — *before*
    /// environment events are delivered — and again after every delivered
    /// environment turn. These are the cut points of the query-point
    /// snapshot trie ([`crate::prefix::SnapshotTrie`]): the machine state
    /// plus a [`PrimRun::fork_run`] of the in-flight run fully determine
    /// the rest of the execution, and the schedule prefix consumed so far
    /// is exactly the sched events in the log. Per-turn hooks matter
    /// because one delivery can consume several schedule slots: without
    /// them, contexts diverging *inside* a delivery would share no cut
    /// point deeper than the query that started it.
    ///
    /// # Errors
    ///
    /// As [`LayerMachine::call_prim`].
    pub fn call_prim_with_snapshots(
        &mut self,
        name: &str,
        args: &[Val],
        hook: &mut dyn FnMut(&Self, &dyn PrimRun),
    ) -> Result<Val, MachineError> {
        let run = self.iface.prim(name)?.instantiate(self.pid, args.to_vec());
        self.drive_with_snapshots(run, hook)
    }

    /// [`LayerMachine::call_prim_with_snapshots`] with an *abort-capable*
    /// hook: returning `true` from the hook stops the drive at that cut
    /// point, yielding `Ok(None)` with the machine left exactly at the
    /// cut (log, abstract state, and fuel as of the hook call). This is
    /// how the convergence cache ([`crate::explore::Kernel`]) completes a
    /// run whose remaining suffix it has already explored: probe at each
    /// cut, abort on a hit, graft the cached suffix onto the machine's
    /// log. A hook that never returns `true` makes this behave exactly
    /// like [`LayerMachine::call_prim_with_snapshots`].
    ///
    /// # Errors
    ///
    /// As [`LayerMachine::call_prim`].
    pub fn call_prim_ctl(
        &mut self,
        name: &str,
        args: &[Val],
        hook: &mut dyn FnMut(&Self, &dyn PrimRun) -> bool,
    ) -> Result<Option<Val>, MachineError> {
        let run = self.iface.prim(name)?.instantiate(self.pid, args.to_vec());
        self.drive_ctl(run, hook)
    }

    /// [`LayerMachine::drive`] with a snapshot hook at non-critical query
    /// points and after each delivered environment turn (critical-state
    /// queries skip environment delivery entirely, so no snapshot is lost
    /// by skipping the hook there too).
    ///
    /// # Errors
    ///
    /// As [`LayerMachine::drive`].
    pub fn drive_with_snapshots(
        &mut self,
        run: Box<dyn PrimRun>,
        hook: &mut dyn FnMut(&Self, &dyn PrimRun),
    ) -> Result<Val, MachineError> {
        match self.drive_ctl(run, &mut |m, r| {
            hook(m, r);
            false
        })? {
            Some(v) => Ok(v),
            None => unreachable!("a never-aborting hook cannot abort the drive"),
        }
    }

    /// The abort-capable core of [`LayerMachine::drive_with_snapshots`];
    /// see [`LayerMachine::call_prim_ctl`] for the abort contract.
    ///
    /// # Errors
    ///
    /// As [`LayerMachine::drive`].
    pub fn drive_ctl(
        &mut self,
        mut run: Box<dyn PrimRun>,
        hook: &mut dyn FnMut(&Self, &dyn PrimRun) -> bool,
    ) -> Result<Option<Val>, MachineError> {
        loop {
            self.consume_fuel()?;
            let step = {
                let mut ctx = PrimCtx {
                    pid: self.pid,
                    abs: &mut self.abs,
                    log: &mut self.log,
                    iface: &self.iface,
                };
                run.resume(&mut ctx)?
            };
            self.check_guarantee()?;
            match step {
                PrimStep::Query => {
                    if self.in_critical() {
                        self.deliver_env()?;
                    } else {
                        if hook(self, run.as_ref()) {
                            return Ok(None);
                        }
                        if !self.deliver_env_ctl(run.as_ref(), hook)? {
                            return Ok(None);
                        }
                    }
                }
                PrimStep::Done(v) => return Ok(Some(v)),
            }
        }
    }

    /// [`LayerMachine::deliver_env`] invoking `hook` after every delivered
    /// environment turn except the final control transfer (whose machine
    /// state the *next* query point's hook captures, after the local steps
    /// in between). Each turn consumes one schedule slot, so these are the
    /// per-slot interior cut points between two query points: the machine
    /// state after a turn is fully log-determined, and a fork resumed via
    /// [`LayerMachine::resume_query`] re-enters the delivery loop with the
    /// scheduler continuing from the recorded scheduling events.
    ///
    /// A resumed delivery restarts the per-delivery fairness budget at the
    /// cut point, so a fresh run and a resumed run can disagree about an
    /// [`EnvError::Unfair`] verdict in principle — but only contexts built
    /// by [`crate::contexts::ContextGen`] carry the schedule key that
    /// snapshot sharing requires, and their script-then-round-robin
    /// schedulers return control within one domain round, far inside any
    /// fairness budget.
    ///
    /// # Errors
    ///
    /// As [`LayerMachine::deliver_env`].
    fn deliver_env_ctl(
        &mut self,
        run: &dyn PrimRun,
        hook: &mut dyn FnMut(&Self, &dyn PrimRun) -> bool,
    ) -> Result<bool, MachineError> {
        self.deliver_env_each_turn_ctl(&mut |m| hook(m, run))
    }

    /// The run-free core of [`LayerMachine::deliver_env_with_snapshots`]:
    /// delivers environment events like [`LayerMachine::deliver_env`],
    /// invoking `hook` after every delivered turn. Public for callers that
    /// flush trailing environment events with no in-flight run — the cut
    /// points there carry the already-computed return value instead of a
    /// [`PrimRun`] fork.
    ///
    /// # Errors
    ///
    /// As [`LayerMachine::deliver_env`].
    pub fn deliver_env_each_turn(
        &mut self,
        hook: &mut dyn FnMut(&Self),
    ) -> Result<(), MachineError> {
        let completed = self.deliver_env_each_turn_ctl(&mut |m| {
            hook(m);
            false
        })?;
        debug_assert!(completed, "a never-aborting hook cannot abort delivery");
        Ok(())
    }

    /// The abort-capable core of [`LayerMachine::deliver_env_each_turn`]:
    /// a hook returning `true` stops delivery at that per-turn cut point
    /// and yields `Ok(false)`, with the machine left at the cut; `Ok(true)`
    /// means delivery completed normally.
    ///
    /// # Errors
    ///
    /// As [`LayerMachine::deliver_env`].
    pub fn deliver_env_each_turn_ctl(
        &mut self,
        hook: &mut dyn FnMut(&Self) -> bool,
    ) -> Result<bool, MachineError> {
        if self.in_critical() {
            return Ok(true);
        }
        let mut returned = false;
        for _ in 0..self.env.fuel() {
            if self.env.extend_one(&self.focused, &mut self.log)?.is_some() {
                returned = true;
                break;
            }
            if hook(self) {
                return Ok(false);
            }
        }
        if !returned {
            return Err(MachineError::Env(EnvError::Unfair {
                fuel: self.env.fuel(),
            }));
        }
        if let Some(inv) = self
            .iface
            .conditions
            .rely
            .first_violation(self.pid, &self.log)
        {
            return Err(MachineError::RelyViolated {
                invariant: inv.name().to_owned(),
                pid: self.pid,
            });
        }
        Ok(true)
    }

    /// Continues a run captured at a query point by the
    /// [`LayerMachine::drive_with_snapshots`] hook: delivers the pending
    /// environment events (the snapshot was taken just *before* delivery),
    /// then drives the run to completion with the same hook. Fuel
    /// sequencing matches a fresh execution exactly.
    ///
    /// # Errors
    ///
    /// As [`LayerMachine::drive`].
    pub fn resume_query(
        &mut self,
        run: Box<dyn PrimRun>,
        hook: &mut dyn FnMut(&Self, &dyn PrimRun),
    ) -> Result<Val, MachineError> {
        match self.resume_query_ctl(run, &mut |m, r| {
            hook(m, r);
            false
        })? {
            Some(v) => Ok(v),
            None => unreachable!("a never-aborting hook cannot abort the resume"),
        }
    }

    /// Abort-capable [`LayerMachine::resume_query`]; see
    /// [`LayerMachine::call_prim_ctl`] for the abort contract.
    ///
    /// # Errors
    ///
    /// As [`LayerMachine::drive`].
    pub fn resume_query_ctl(
        &mut self,
        run: Box<dyn PrimRun>,
        hook: &mut dyn FnMut(&Self, &dyn PrimRun) -> bool,
    ) -> Result<Option<Val>, MachineError> {
        if !self.deliver_env_ctl(run.as_ref(), hook)? {
            return Ok(None);
        }
        self.drive_ctl(run, hook)
    }

    /// A canonical [`ContentHash`] of everything that determines this
    /// machine's remaining execution at a query-point cut, given its
    /// environment context and remaining schedule: focused pid, fuel
    /// spent and budget, the abstract state, the log's convergence digest
    /// ([`Log::conv_hash`]), and the in-flight run's private state. `None`
    /// when the run does not support fingerprinting
    /// ([`crate::layer::PrimRun::state_fp`]) — the convergence cache then
    /// skips this cut, which is always sound. The environment context is
    /// deliberately excluded: the cache key pairs this fingerprint with
    /// the schedule family and remaining suffix, which determine the
    /// environment completely.
    pub fn conv_fingerprint(&self, run: &dyn PrimRun) -> Option<crate::fingerprint::ContentHash> {
        let mut h = crate::fingerprint::ContentHasher::new();
        h.section("ccal.conv.machine.v1");
        h.u64("machine.pid", u64::from(self.pid.0));
        h.u64("machine.steps", self.steps_taken());
        h.u64("machine.budget", self.budget);
        h.section("machine.abs");
        h.usize("abs.len", self.abs.len());
        for (name, v) in self.abs.iter() {
            h.str("abs.field", name);
            h.val("abs.val", v);
        }
        self.log.conv_hash(&mut h);
        run.state_fp(&mut h).then(|| h.finish())
    }

    /// Checks the guarantee condition on the current log.
    ///
    /// # Errors
    ///
    /// [`MachineError::GuaranteeViolated`] naming the failed invariant.
    pub fn check_guarantee(&self) -> Result<(), MachineError> {
        if let Some(inv) = self
            .iface
            .conditions
            .guarantee
            .first_violation(self.pid, &self.log)
        {
            return Err(MachineError::GuaranteeViolated {
                invariant: inv.name().to_owned(),
                pid: self.pid,
                log_len: self.log.len(),
            });
        }
        Ok(())
    }
}

impl fmt::Debug for LayerMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LayerMachine")
            .field("iface", &self.iface.name)
            .field("pid", &self.pid)
            .field("log_len", &self.log.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::layer::PrimSpec;
    use crate::rely::{Conditions, Invariant, RelyGuarantee};
    use crate::strategy::RoundRobinScheduler;
    use std::sync::Arc;

    fn tick_iface(conditions: RelyGuarantee) -> LayerInterface {
        LayerInterface::builder("L-tick")
            .prim(PrimSpec::atomic("tick", |ctx, _| {
                ctx.emit(EventKind::Prim("tick".into(), vec![]));
                Ok(Val::Unit)
            }))
            .conditions(conditions)
            .build()
    }

    fn env2() -> EnvContext {
        EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)))
    }

    #[test]
    fn call_prim_queries_env_then_executes() {
        let mut m = LayerMachine::new(tick_iface(RelyGuarantee::none()), Pid(1), env2());
        m.call_prim("tick", &[]).unwrap();
        // The log contains environment scheduling events followed by ours.
        assert!(m.log.iter().any(|e| e.is_sched()));
        assert_eq!(m.log.count_by(Pid(1)), 1);
        assert_eq!(m.log.current_pid(), Some(Pid(1)));
    }

    #[test]
    fn guarantee_violation_is_detected() {
        let conditions = RelyGuarantee::new(
            Conditions::none(),
            Conditions::none().with(Invariant::new("at-most-one-tick", |pid, log| {
                log.count_by(pid) <= 1
            })),
        );
        let mut m = LayerMachine::new(tick_iface(conditions), Pid(1), env2());
        m.call_prim("tick", &[]).unwrap();
        let err = m.call_prim("tick", &[]).unwrap_err();
        assert!(matches!(err, MachineError::GuaranteeViolated { .. }));
    }

    #[test]
    fn rely_violation_marks_context_invalid() {
        use crate::strategy::ScriptPlayer;
        let conditions = RelyGuarantee::new(
            Conditions::none().with(Invariant::new("env-silent", |pid, log: &Log| {
                log.iter().all(|e| e.pid == pid || e.is_sched())
            })),
            Conditions::none(),
        );
        let noisy = ScriptPlayer::new(
            Pid(0),
            vec![vec![crate::event::Event::prim(Pid(0), "noise", vec![])]],
        );
        let env = env2().with_player(Pid(0), Arc::new(noisy));
        let mut m = LayerMachine::new(tick_iface(conditions), Pid(1), env);
        let err = m.call_prim("tick", &[]).unwrap_err();
        assert!(matches!(err, MachineError::RelyViolated { .. }));
        assert!(err.is_invalid_context());
    }

    #[test]
    fn fuel_exhaustion_reports_budget() {
        struct Diverge;
        impl PrimRun for Diverge {
            fn resume(&mut self, _: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
                Ok(PrimStep::Query)
            }
        }
        let iface = LayerInterface::builder("L")
            .prim(PrimSpec::strategy("spin", true, |_, _| Box::new(Diverge)))
            .build();
        let mut m = LayerMachine::new(iface, Pid(0), env2()).with_fuel(10);
        let err = m.call_prim("spin", &[]).unwrap_err();
        assert_eq!(err, MachineError::OutOfFuel { budget: 10 });
    }

    #[test]
    fn critical_state_skips_env_queries() {
        // Critical whenever the participant has emitted an odd number of
        // events; the second tick must not receive new env events.
        let iface = LayerInterface::builder("L")
            .prim(PrimSpec::atomic("tick", |ctx, _| {
                ctx.emit(EventKind::Prim("tick".into(), vec![]));
                Ok(Val::Unit)
            }))
            .critical(|pid, log| log.count_by(pid) % 2 == 1)
            .build();
        let mut m = LayerMachine::new(iface, Pid(1), env2());
        m.call_prim("tick", &[]).unwrap();
        let len_after_first = m.log.len();
        m.call_prim("tick", &[]).unwrap();
        // Only our own event was appended — no scheduling events in between.
        assert_eq!(m.log.len(), len_after_first + 1);
    }

    #[test]
    fn unknown_prim_is_an_error() {
        let mut m = LayerMachine::new(tick_iface(RelyGuarantee::none()), Pid(0), env2());
        assert!(matches!(
            m.call_prim("nope", &[]),
            Err(MachineError::UnknownPrim { .. })
        ));
    }
}
