//! Program modules and module linking.
//!
//! "The implementation `M` is a program module written in assembly (or C)"
//! (§2). A [`Module`] is a named collection of function implementations;
//! each function is represented as a [`PrimSpec`] whose [`PrimRun`] runs
//! the function body *over the module's underlay* — a ClightX interpreter
//! run, an assembly interpreter run, or a native Rust strategy.
//!
//! `⊕` is the linking operator over modules ([`Module::link`], §2), and
//! [`Module::install`] builds the machine on which `P ⊕ M` executes: the
//! underlay interface extended with the module's functions as callable
//! code.
//!
//! [`PrimRun`]: crate::layer::PrimRun

use std::collections::BTreeMap;
use std::fmt;

use crate::layer::{LayerInterface, PrimSpec};
use crate::machine::MachineError;

/// The source language a module function was written in (Fig. 2 shows C
/// and assembly layers side by side; native functions are Rust-level
/// strategies used for specs and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lang {
    /// ClightX (the C-like layered language, §5.5).
    C,
    /// The toy x86-like layered assembly.
    Asm,
    /// A native Rust implementation.
    Native,
}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lang::C => write!(f, "C"),
            Lang::Asm => write!(f, "asm"),
            Lang::Native => write!(f, "native"),
        }
    }
}

/// One module function: a language tag plus its executable body.
#[derive(Debug, Clone)]
pub struct ModuleFn {
    /// Source language of the body.
    pub lang: Lang,
    /// The executable body, runnable over the module's underlay.
    pub spec: PrimSpec,
}

/// A program module `M`: a finite map from function names to bodies.
///
/// # Examples
///
/// ```
/// use ccal_core::module::{Lang, Module};
/// use ccal_core::layer::PrimSpec;
/// use ccal_core::val::Val;
///
/// let m1 = Module::new("M1")
///     .with_fn(Lang::Native, PrimSpec::private("id", |_, args| {
///         Ok(args.first().cloned().unwrap_or(Val::Unit))
///     }));
/// let m2 = Module::new("M2");
/// let linked = m1.link(&m2)?;
/// assert!(linked.contains("id"));
/// # Ok::<(), ccal_core::machine::MachineError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// The module's name (for diagnostics; linking concatenates names).
    pub name: String,
    fns: BTreeMap<String, ModuleFn>,
}

impl Module {
    /// Creates an empty module — the `∅` of the layer calculus (Fig. 9).
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            fns: BTreeMap::new(),
        }
    }

    /// Adds a function; the function's name is the spec's name.
    pub fn with_fn(mut self, lang: Lang, spec: PrimSpec) -> Self {
        self.fns
            .insert(spec.name().to_owned(), ModuleFn { lang, spec });
        self
    }

    /// Whether the module implements `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }

    /// The function named `name`, if implemented.
    pub fn get(&self, name: &str) -> Option<&ModuleFn> {
        self.fns.get(name)
    }

    /// Function names, sorted.
    pub fn fn_names(&self) -> Vec<&str> {
        self.fns.keys().map(String::as_str).collect()
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether the module is empty.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// The linking operator `M ⊕ N` (§2).
    ///
    /// # Errors
    ///
    /// [`MachineError::DuplicatePrim`] if both modules implement the same
    /// function.
    pub fn link(&self, other: &Module) -> Result<Module, MachineError> {
        let mut fns = self.fns.clone();
        for (k, v) in &other.fns {
            if fns.insert(k.clone(), v.clone()).is_some() {
                return Err(MachineError::DuplicatePrim {
                    prim: k.clone(),
                    iface: format!("{} ⊕ {}", self.name, other.name),
                });
            }
        }
        Ok(Module {
            name: format!("{} ⊕ {}", self.name, other.name),
            fns,
        })
    }

    /// Builds the machine interface on which `P ⊕ M` runs over `underlay`:
    /// the underlay extended with this module's functions as callable
    /// code. Module functions resolve their own calls against the
    /// *extended* interface, so intra-module calls (e.g. `foo` calling
    /// `acq` when `M1 ⊕ M2` is installed over `L0`, Fig. 3) work, and so
    /// do calls to underlay primitives.
    ///
    /// # Errors
    ///
    /// [`MachineError::DuplicatePrim`] if a function name collides with an
    /// underlay primitive.
    pub fn install(&self, underlay: &LayerInterface) -> Result<LayerInterface, MachineError> {
        let mut builder = LayerInterface::builder(&format!("{}+{}", underlay.name, self.name));
        let as_iface = {
            let mut b = LayerInterface::builder(&self.name);
            for f in self.fns.values() {
                b = b.prim(f.spec.clone());
            }
            b.build()
        };
        let joined = underlay.join(&as_iface)?;
        builder = builder
            .conditions(underlay.conditions.clone())
            .init_abs(underlay.init_abs.clone());
        for name in joined.prim_names() {
            builder = builder.prim(joined.prim(name)?.clone());
        }
        let u = underlay.clone();
        Ok(builder
            .critical(move |pid, log| u.is_critical(pid, log))
            .build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvContext;
    use crate::event::EventKind;
    use crate::id::Pid;
    use crate::machine::LayerMachine;
    use crate::strategy::RoundRobinScheduler;
    use crate::val::Val;
    use std::sync::Arc;

    fn base() -> LayerInterface {
        LayerInterface::builder("L0")
            .prim(PrimSpec::atomic("ping", |ctx, _| {
                ctx.emit(EventKind::Prim("ping".into(), vec![]));
                Ok(Val::Unit)
            }))
            .build()
    }

    #[test]
    fn link_merges_and_rejects_duplicates() {
        let a = Module::new("A").with_fn(Lang::Native, PrimSpec::private("f", |_, _| Ok(Val::Unit)));
        let b = Module::new("B").with_fn(Lang::Native, PrimSpec::private("g", |_, _| Ok(Val::Unit)));
        let ab = a.link(&b).unwrap();
        assert_eq!(ab.fn_names(), vec!["f", "g"]);
        assert!(ab.link(&a).is_err());
    }

    #[test]
    fn installed_module_fn_can_call_underlay_prims() {
        use crate::layer::{PrimRun, PrimStep, SubCall};

        struct CallsPing {
            sub: Option<SubCall>,
        }
        impl PrimRun for CallsPing {
            fn resume(
                &mut self,
                ctx: &mut crate::layer::PrimCtx<'_>,
            ) -> Result<PrimStep, MachineError> {
                if self.sub.is_none() {
                    self.sub = Some(SubCall::start(ctx, "ping", vec![])?);
                }
                match self.sub.as_mut().unwrap().step(ctx)? {
                    Some(_) => Ok(PrimStep::Done(Val::Int(7))),
                    None => Ok(PrimStep::Query),
                }
            }
        }
        let m = Module::new("M").with_fn(
            Lang::Native,
            PrimSpec::strategy("wrapper", true, |_, _| Box::new(CallsPing { sub: None })),
        );
        let extended = m.install(&base()).unwrap();
        let env = EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)));
        let mut machine = LayerMachine::new(extended, Pid(1), env);
        let ret = machine.call_prim("wrapper", &[]).unwrap();
        assert_eq!(ret, Val::Int(7));
        assert_eq!(machine.log.count_by(Pid(1)), 1, "ping event recorded");
    }

    #[test]
    fn install_rejects_name_collisions() {
        let m = Module::new("M").with_fn(Lang::Native, PrimSpec::private("ping", |_, _| Ok(Val::Unit)));
        assert!(m.install(&base()).is_err());
    }

    #[test]
    fn empty_module_installs_as_identity() {
        let m = Module::new("∅");
        let extended = m.install(&base()).unwrap();
        assert_eq!(extended.prim_names(), vec!["ping"]);
    }
}
