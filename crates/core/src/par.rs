//! Parallel case-grid exploration for the bounded checkers.
//!
//! Every bounded check in the toolkit — simulation, liveness,
//! linearizability, race freedom, sequence refinement — enumerates a
//! finite grid of independent cases (environment context × argument
//! vector) and folds the per-case outcomes in case order, stopping at the
//! first failure. [`run_cases`] parallelizes exactly that shape: a shared
//! atomic work queue hands case indices to `std::thread::scope` workers,
//! a terminal outcome (a failure) short-circuits the remaining work, and
//! the caller folds the returned slots **in index order** — which makes
//! the parallel run bit-identical to the serial one (same evidence, same
//! first failure) for any deterministic per-case function.
//!
//! # Determinism contract
//!
//! For a pure `run` function, `run_cases` guarantees that every index
//! smaller than the smallest terminal index is `Some`: indices are handed
//! out in order, workers only abandon an index strictly greater than an
//! already-discovered terminal index, and the terminal minimum only ever
//! decreases to indices that really are terminal. Indices past the first
//! terminal outcome may or may not be present; an in-order fold never
//! reads them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count, controlled by the `CCAL_WORKERS` environment
/// variable:
///
/// * unset — the machine's available parallelism (1 if unknown);
/// * a positive integer `n` — exactly `n` workers;
/// * `0` — explicitly serial (one worker on the calling thread), the knob
///   for bit-for-bit reference runs and debugging;
/// * anything else — a warning is printed to stderr once per process and
///   the variable is ignored (available parallelism is used).
pub fn default_workers() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    match std::env::var("CCAL_WORKERS") {
        Ok(v) => parse_workers(&v).unwrap_or_else(|| {
            warn_bad_workers_once(&v);
            fallback()
        }),
        Err(_) => fallback(),
    }
}

/// Parses a `CCAL_WORKERS` value: `Some(1)` for `0` (serial), `Some(n)`
/// for a positive integer, `None` for anything unparseable.
fn parse_workers(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Some(1),
        Ok(n) => Some(n),
        Err(_) => None,
    }
}

fn warn_bad_workers_once(raw: &str) {
    static WARNED: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    WARNED.get_or_init(|| {
        eprintln!(
            "ccal: ignoring unparseable CCAL_WORKERS={raw:?} (expected a \
             non-negative integer; 0 means serial)"
        );
    });
}

/// Runs `run(0..total)` across `workers` threads, short-circuiting past
/// the smallest index whose outcome satisfies `is_terminal`.
///
/// Returns one slot per index. Slot `i` is `Some` for every `i` up to and
/// including the smallest terminal index (and for every `i` when no
/// outcome is terminal); later slots may be `None` (skipped work). With
/// `workers <= 1` the grid is explored serially on the calling thread —
/// the reference behavior the parallel path reproduces.
pub fn run_cases<T, R, S>(total: usize, workers: usize, run: R, is_terminal: S) -> Vec<Option<T>>
where
    T: Send,
    R: Fn(usize) -> T + Sync,
    S: Fn(&T) -> bool + Sync,
{
    let workers = workers.clamp(1, total.max(1));
    if workers <= 1 {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(total);
        for i in 0..total {
            let outcome = run(i);
            let terminal = is_terminal(&outcome);
            slots.push(Some(outcome));
            if terminal {
                break;
            }
        }
        slots.resize_with(total, || None);
        return slots;
    }
    let next = AtomicUsize::new(0);
    let min_terminal = AtomicUsize::new(usize::MAX);
    let slots: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total || i > min_terminal.load(Ordering::Relaxed) {
                    break;
                }
                let outcome = run(i);
                if is_terminal(&outcome) {
                    min_terminal.fetch_min(i, Ordering::Relaxed);
                }
                *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                    Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold_first_failure(slots: Vec<Option<i32>>) -> (Vec<i32>, Option<i32>) {
        let mut seen = Vec::new();
        for slot in slots {
            match slot {
                Some(v) if v < 0 => return (seen, Some(v)),
                Some(v) => seen.push(v),
                None => break,
            }
        }
        (seen, None)
    }

    #[test]
    fn parallel_fold_matches_serial() {
        let run = |i: usize| i as i32 * 3;
        let serial = fold_first_failure(run_cases(100, 1, run, |v| *v < 0));
        let parallel = fold_first_failure(run_cases(100, 4, run, |v| *v < 0));
        assert_eq!(serial, parallel);
        assert_eq!(serial.0.len(), 100);
    }

    #[test]
    fn first_terminal_index_is_deterministic() {
        // Cases 17, 40 and 77 "fail"; the fold must always report 17.
        let run = |i: usize| {
            if matches!(i, 17 | 40 | 77) {
                -(i as i32)
            } else {
                i as i32
            }
        };
        for workers in [1, 2, 4, 8] {
            let slots = run_cases(100, workers, run, |v| *v < 0);
            // Everything before the first failure was computed.
            assert!(slots[..17].iter().all(Option::is_some), "workers={workers}");
            let (seen, failure) = fold_first_failure(slots);
            assert_eq!(failure, Some(-17), "workers={workers}");
            assert_eq!(seen, (0..17).collect::<Vec<i32>>());
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(run_cases(0, 4, |i| i, |_| false).is_empty());
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn zero_workers_means_serial() {
        assert_eq!(parse_workers("0"), Some(1));
        assert_eq!(parse_workers(" 0 "), Some(1));
    }

    #[test]
    fn positive_workers_parse_and_garbage_is_rejected() {
        assert_eq!(parse_workers("7"), Some(7));
        assert_eq!(parse_workers(" 12\n"), Some(12));
        assert_eq!(parse_workers("many"), None);
        assert_eq!(parse_workers("-3"), None);
        assert_eq!(parse_workers("1.5"), None);
        assert_eq!(parse_workers(""), None);
    }
}
