//! Parallel case-grid exploration for the bounded checkers.
//!
//! Every bounded check in the toolkit — simulation, liveness,
//! linearizability, race freedom, sequence refinement — enumerates a
//! finite grid of independent cases (environment context × argument
//! vector) and folds the per-case outcomes in case order, stopping at the
//! first failure. [`run_cases`] parallelizes exactly that shape: a shared
//! atomic work queue hands case indices to `std::thread::scope` workers,
//! a terminal outcome (a failure) short-circuits the remaining work, and
//! the caller folds the returned slots **in index order** — which makes
//! the parallel run bit-identical to the serial one (same evidence, same
//! first failure) for any deterministic per-case function.
//!
//! # Determinism contract
//!
//! For a pure `run` function, `run_cases` guarantees that every index
//! smaller than the smallest terminal index is `Some`: indices are handed
//! out in order (in contiguous chunks of [`CHUNK`]), workers only abandon
//! an index strictly greater than an already-discovered terminal index,
//! and the terminal minimum only ever decreases to indices that really
//! are terminal. Abandoning is monotone: once a worker sees an index past
//! the terminal minimum, every index it could still claim is larger (its
//! remaining chunk items are larger, and chunk starts only grow), so it
//! stops outright. Indices past the first terminal outcome may or may not
//! be present; an in-order fold never reads them. This is what makes the
//! first failure reported by every checker the **index-least** failing
//! case regardless of worker count — the invariant the failure-forensics
//! pipeline relies on for stable shrink inputs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count, controlled by the `CCAL_WORKERS` environment
/// variable:
///
/// * unset — the machine's available parallelism (1 if unknown);
/// * a positive integer `n` — exactly `n` workers;
/// * `0` — explicitly serial (one worker on the calling thread), the knob
///   for bit-for-bit reference runs and debugging;
/// * anything else — a warning is printed to stderr once per process and
///   the variable is ignored (available parallelism is used).
pub fn default_workers() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    match std::env::var("CCAL_WORKERS") {
        Ok(v) => parse_workers(&v).unwrap_or_else(|| {
            crate::envflag::warn_ignored("CCAL_WORKERS", &v, "0 means serial");
            fallback()
        }),
        Err(_) => fallback(),
    }
}

/// Parses a `CCAL_WORKERS` value: `Some(1)` for `0` (serial), `Some(n)`
/// for a positive integer, `None` for anything unparseable. The boolean
/// flags share this grammar via [`crate::envflag::bool_flag`]; workers is
/// the one numeric flag, so only the warn-once path is shared.
fn parse_workers(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Some(1),
        Ok(n) => Some(n),
        Err(_) => None,
    }
}

/// Case indices handed out per `fetch_add` on the shared work queue.
/// Sub-microsecond cases (tiny machines on tiny grids) were bottlenecked
/// on queue contention when every case was claimed individually; chunked
/// handout amortizes the atomic traffic 16× while keeping the claim order
/// contiguous and ascending, which the determinism contract needs.
pub const CHUNK: usize = 16;

/// Runs `run(0..total)` across `workers` threads, short-circuiting past
/// the smallest index whose outcome satisfies `is_terminal`.
///
/// Returns one slot per index. Slot `i` is `Some` for every `i` up to and
/// including the smallest terminal index (and for every `i` when no
/// outcome is terminal); later slots may be `None` (skipped work). With
/// `workers <= 1` the grid is explored serially on the calling thread —
/// the reference behavior the parallel path reproduces.
pub fn run_cases<T, R, S>(total: usize, workers: usize, run: R, is_terminal: S) -> Vec<Option<T>>
where
    T: Send,
    R: Fn(usize) -> T + Sync,
    S: Fn(&T) -> bool + Sync,
{
    run_cases_ordered(total, workers, None, run, is_terminal)
}

/// [`run_cases`] with an optional *claim-order permutation* for the
/// parallel path: when `order` is `Some`, the `j`-th claimed queue position
/// computes case `order[j]` instead of case `j`. The prefix-sharing
/// exploration passes the digit-reversed subtree order
/// ([`crate::prefix::subtree_case_order`]) so that a claimed chunk is a
/// subtree of the schedule-prefix trie rather than a stripe across all
/// subtrees.
///
/// The serial path ignores `order` and always explores in ascending index
/// order — bit-identical work set to the reference run, including which
/// cases past a failure are never computed.
///
/// Determinism contract: unchanged. Claimed *indices* are no longer
/// monotone under a permutation, so a worker that sees an index past the
/// terminal minimum skips that one index (`continue`) instead of
/// abandoning the queue — the skipped index is strictly greater than the
/// final terminal minimum, every position is still claimed by someone, and
/// therefore every index up to the smallest terminal index is `Some`.
///
/// # Panics
///
/// Panics if `order` is provided with a length other than `total` (indices
/// out of range panic on slot access). It must be a permutation of
/// `0..total` for the contract to hold.
pub fn run_cases_ordered<T, R, S>(
    total: usize,
    workers: usize,
    order: Option<&[usize]>,
    run: R,
    is_terminal: S,
) -> Vec<Option<T>>
where
    T: Send,
    R: Fn(usize) -> T + Sync,
    S: Fn(&T) -> bool + Sync,
{
    if let Some(order) = order {
        assert_eq!(order.len(), total, "claim order must cover the grid");
    }
    let workers = workers.clamp(1, total.max(1));
    if workers <= 1 {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(total);
        for i in 0..total {
            let outcome = run(i);
            let terminal = is_terminal(&outcome);
            slots.push(Some(outcome));
            if terminal {
                break;
            }
        }
        slots.resize_with(total, || None);
        return slots;
    }
    let next = AtomicUsize::new(0);
    let min_terminal = AtomicUsize::new(usize::MAX);
    let slots: Vec<Mutex<Option<T>>> = (0..total).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| 'claim: loop {
                let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                if start >= total {
                    break;
                }
                for j in start..(start + CHUNK).min(total) {
                    let i = order.map_or(j, |o| o[j]);
                    if i > min_terminal.load(Ordering::Relaxed) {
                        if order.is_some() {
                            // Permuted indices are not monotone: skip just
                            // this one (it is larger than the final
                            // terminal minimum) and keep claiming.
                            continue;
                        }
                        // Unpermuted, an index past the terminal minimum
                        // abandons the whole worker: every index it could
                        // still claim is even larger (chunk items ascend
                        // and chunk starts only grow), so nothing below
                        // the final terminal minimum is ever skipped.
                        break 'claim;
                    }
                    let outcome = run(i);
                    if is_terminal(&outcome) {
                        min_terminal.fetch_min(i, Ordering::Relaxed);
                    }
                    *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                        Some(outcome);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold_first_failure(slots: Vec<Option<i32>>) -> (Vec<i32>, Option<i32>) {
        let mut seen = Vec::new();
        for slot in slots {
            match slot {
                Some(v) if v < 0 => return (seen, Some(v)),
                Some(v) => seen.push(v),
                None => break,
            }
        }
        (seen, None)
    }

    #[test]
    fn parallel_fold_matches_serial() {
        let run = |i: usize| i as i32 * 3;
        let serial = fold_first_failure(run_cases(100, 1, run, |v| *v < 0));
        let parallel = fold_first_failure(run_cases(100, 4, run, |v| *v < 0));
        assert_eq!(serial, parallel);
        assert_eq!(serial.0.len(), 100);
    }

    #[test]
    fn first_terminal_index_is_deterministic() {
        // Cases 17, 40 and 77 "fail"; the fold must always report 17.
        let run = |i: usize| {
            if matches!(i, 17 | 40 | 77) {
                -(i as i32)
            } else {
                i as i32
            }
        };
        for workers in [1, 2, 4, 8] {
            let slots = run_cases(100, workers, run, |v| *v < 0);
            // Everything before the first failure was computed.
            assert!(slots[..17].iter().all(Option::is_some), "workers={workers}");
            let (seen, failure) = fold_first_failure(slots);
            assert_eq!(failure, Some(-17), "workers={workers}");
            assert_eq!(seen, (0..17).collect::<Vec<i32>>());
        }
    }

    #[test]
    fn failures_straddling_chunk_boundaries_still_select_the_least_index() {
        // Failures inside the first chunk (14), right at a boundary (16),
        // and deep in later chunks (33, 77): whichever worker computes
        // what, index 14 must win, and everything below it must be Some.
        let run = |i: usize| {
            if matches!(i, 14 | 16 | 33 | 77) {
                -(i as i32)
            } else {
                i as i32
            }
        };
        for workers in [2, 3, 4, 8] {
            let slots = run_cases(100, workers, run, |v| *v < 0);
            assert!(slots[..14].iter().all(Option::is_some), "workers={workers}");
            let (seen, failure) = fold_first_failure(slots);
            assert_eq!(failure, Some(-14), "workers={workers}");
            assert_eq!(seen, (0..14).collect::<Vec<i32>>());
        }
    }

    #[test]
    fn non_chunk_multiple_totals_compute_every_case() {
        // total not a multiple of CHUNK, no failures: every slot is Some
        // and the fold sees all of them.
        for total in [1, CHUNK - 1, CHUNK + 1, 3 * CHUNK + 5] {
            let slots = run_cases(total, 4, |i| i as i32, |_| false);
            assert_eq!(slots.len(), total);
            assert!(slots.iter().all(Option::is_some), "total={total}");
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(run_cases(0, 4, |i| i, |_| false).is_empty());
    }

    #[test]
    fn permuted_claim_order_keeps_the_first_failure_invariant() {
        // Reverse claim order: the failure-rich tail is computed first,
        // yet the fold must still find the index-least failure with
        // everything below it present.
        let run = |i: usize| {
            if matches!(i, 23 | 61 | 88) {
                -(i as i32)
            } else {
                i as i32
            }
        };
        let order: Vec<usize> = (0..100).rev().collect();
        for workers in [2, 4, 8] {
            let slots = run_cases_ordered(100, workers, Some(&order), run, |v| *v < 0);
            assert!(slots[..23].iter().all(Option::is_some), "workers={workers}");
            let (seen, failure) = fold_first_failure(slots);
            assert_eq!(failure, Some(-23), "workers={workers}");
            assert_eq!(seen, (0..23).collect::<Vec<i32>>());
        }
    }

    #[test]
    fn permuted_order_without_failures_computes_every_case() {
        let order: Vec<usize> = (0..50).map(|j| (j * 7) % 50).collect();
        let slots = run_cases_ordered(50, 4, Some(&order), |i| i, |_| false);
        assert_eq!(slots.len(), 50);
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(*s, Some(i));
        }
    }

    #[test]
    fn serial_path_ignores_the_permutation() {
        // Serial exploration stays in index order: cases after the first
        // failure are never computed, no matter the claim order.
        let order: Vec<usize> = (0..10).rev().collect();
        let slots = run_cases_ordered(
            10,
            1,
            Some(&order),
            |i| if i == 3 { -1 } else { i as i32 },
            |v| *v < 0,
        );
        assert!(slots[..4].iter().all(Option::is_some));
        assert!(slots[4..].iter().all(Option::is_none));
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn zero_workers_means_serial() {
        assert_eq!(parse_workers("0"), Some(1));
        assert_eq!(parse_workers(" 0 "), Some(1));
    }

    #[test]
    fn positive_workers_parse_and_garbage_is_rejected() {
        assert_eq!(parse_workers("7"), Some(7));
        assert_eq!(parse_workers(" 12\n"), Some(12));
        assert_eq!(parse_workers("many"), None);
        assert_eq!(parse_workers("-3"), None);
        assert_eq!(parse_workers("1.5"), None);
        assert_eq!(parse_workers(""), None);
    }
}
