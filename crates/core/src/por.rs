//! Sleep-set partial-order reduction over schedule-prefix grids.
//!
//! The bounded checkers quantify over environment contexts by enumerating
//! every schedule prefix of a fixed length over the scheduler domain — a
//! `|D|^len` grid ([`crate::contexts::ContextGen`]). Many of those prefixes
//! are *Mazurkiewicz-trace equivalent*: when two environment players only
//! ever emit [`crate::event::independent`] events, scheduling `p` before
//! `q` or `q` before `p` in adjacent slots yields logs that differ only by
//! commuting independent events, and every replay-based verdict agrees on
//! them. This module enumerates exactly one representative prefix per
//! trace — the one with the **smallest grid index** — using the classic
//! sleep-set algorithm (Godefroid), so the checkers can skip the rest.
//!
//! # Independence
//!
//! Independence is lifted from events to players: two pids commute iff both
//! declare an alphabet via [`Strategy::may_emit`] and every cross pair of
//! declared kinds is [`EventKind::independent_kinds`]. A player without a
//! declared alphabet — including the focused pid, which runs the primitive
//! under test rather than a registered environment strategy — is opaque and
//! conflicts with everyone, so the reduction degrades gracefully to the
//! full grid rather than risking unsoundness.
//!
//! # Soundness contract
//!
//! Pruning is sound for strategies that are deterministic functions of the
//! log and *footprint-local* (see the [`Strategy::may_emit`] contract):
//! swapping adjacent turns of independent players then produces
//! [`crate::log::Log::trace_equivalent`] logs, on which every replay
//! function computes the same object state and every checker the same
//! verdict. The differential suites (`tests/por_differential.rs`) check
//! this end to end against the unreduced grid.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::event::EventKind;
use crate::id::Pid;
use crate::strategy::Strategy;

/// Whether partial-order reduction is enabled for this process.
///
/// Controlled by the `CCAL_POR` environment variable with the shared
/// `CCAL_*` grammar ([`crate::envflag`]): unset or any non-zero integer —
/// the reduction is on (the default); `0` — the reduction is off (the
/// escape hatch for differential debugging); garbage warns once and is
/// ignored. The variable is read once and cached for the lifetime of the
/// process.
pub fn por_enabled() -> bool {
    crate::envflag::bool_flag("CCAL_POR", true)
}

/// The independence relation lifted from events to scheduler-domain pids.
///
/// Built once per grid from the players' declared alphabets; symmetric and
/// irreflexive by construction.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeMap;
/// use std::sync::Arc;
/// use ccal_core::id::{Loc, Pid};
/// use ccal_core::por::PidIndependence;
/// use ccal_core::strategy::{ScratchPlayer, Strategy};
///
/// let mut players: BTreeMap<Pid, Arc<dyn Strategy>> = BTreeMap::new();
/// players.insert(Pid(1), Arc::new(ScratchPlayer::new(Pid(1), Loc(7))));
/// players.insert(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(8))));
/// let ind = PidIndependence::from_players(&[Pid(0), Pid(1), Pid(2)], &players);
/// assert!(ind.independent(Pid(1), Pid(2)), "disjoint scratch locations");
/// assert!(!ind.independent(Pid(0), Pid(1)), "Pid(0) has no strategy: opaque");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PidIndependence {
    pairs: BTreeSet<(Pid, Pid)>,
}

impl PidIndependence {
    /// The empty (fully dependent) relation: nothing commutes, nothing is
    /// pruned.
    pub fn trivial() -> Self {
        Self::default()
    }

    /// Builds the relation for a scheduler `domain` from the environment
    /// `players` registered for (a subset of) its pids. A pid with no
    /// registered player, or whose player declines to declare an alphabet
    /// ([`Strategy::may_emit`] returning `None`), is treated as dependent
    /// with every other pid.
    pub fn from_players(domain: &[Pid], players: &BTreeMap<Pid, Arc<dyn Strategy>>) -> Self {
        let alphabets: BTreeMap<Pid, Option<Vec<EventKind>>> = domain
            .iter()
            .map(|p| (*p, players.get(p).and_then(|s| s.may_emit())))
            .collect();
        let mut pairs = BTreeSet::new();
        for (i, &p) in domain.iter().enumerate() {
            for &q in &domain[i + 1..] {
                if p == q {
                    continue;
                }
                let (Some(Some(a)), Some(Some(b))) = (alphabets.get(&p), alphabets.get(&q))
                else {
                    continue;
                };
                let commute = a
                    .iter()
                    .all(|ka| b.iter().all(|kb| EventKind::independent_kinds(ka, kb)));
                if commute {
                    pairs.insert((p.min(q), p.max(q)));
                }
            }
        }
        Self { pairs }
    }

    /// Declares `p` and `q` independent (for hand-built relations in tests
    /// and tools). No-op when `p == q`.
    pub fn declare(&mut self, p: Pid, q: Pid) {
        if p != q {
            self.pairs.insert((p.min(q), p.max(q)));
        }
    }

    /// Whether all events of `p` commute with all events of `q`.
    pub fn independent(&self, p: Pid, q: Pid) -> bool {
        p != q && self.pairs.contains(&(p.min(q), p.max(q)))
    }

    /// Whether the relation is empty — in which case every schedule prefix
    /// is its own trace representative and the reduction cannot prune.
    pub fn is_trivial(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of independent pid pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }
}

/// Enumerates one representative schedule prefix per Mazurkiewicz trace:
/// for each equivalence class of length-`len` words over `domain` (adjacent
/// letters of independent pids commute), the member with the smallest
/// [`crate::contexts::ContextGen`] grid index. Returned in ascending index
/// order.
///
/// Uses sleep sets: a depth-first walk over schedule digits where each
/// branch records, in its *sleep set*, the earlier siblings it commutes
/// with — any word that would merely re-order an already-explored trace is
/// cut without being visited. With the trivial relation this is exactly the
/// full `|domain|^len` grid.
pub fn canonical_prefixes(domain: &[Pid], len: usize, ind: &PidIndependence) -> Vec<Vec<Pid>> {
    let mut out = Vec::new();
    let mut word = Vec::with_capacity(len);
    explore(domain, len, ind, &mut word, &BTreeSet::new(), &mut out);
    // The DFS fixes the most significant digit first so that the chosen
    // representative is the index-least member of its class (the grid
    // encodes slot 0 as the least significant digit); un-reverse into
    // schedule order.
    for w in &mut out {
        w.reverse();
    }
    out
}

fn explore(
    domain: &[Pid],
    len: usize,
    ind: &PidIndependence,
    word: &mut Vec<Pid>,
    sleep: &BTreeSet<Pid>,
    out: &mut Vec<Vec<Pid>>,
) {
    if word.len() == len {
        out.push(word.clone());
        return;
    }
    let mut asleep = sleep.clone();
    for &p in domain {
        if asleep.contains(&p) {
            continue;
        }
        // The child only keeps sleepers that commute with the chosen move;
        // a dependent move "wakes" them.
        let child: BTreeSet<Pid> = asleep
            .iter()
            .copied()
            .filter(|&x| ind.independent(x, p))
            .collect();
        word.push(p);
        explore(domain, len, ind, word, &child, out);
        word.pop();
        // Later siblings need not re-explore traces reachable through `p`.
        asleep.insert(p);
    }
}

/// The set of grid indices (in [`crate::contexts::ContextGen`]'s
/// least-significant-digit-first encoding) of the canonical prefixes of
/// [`canonical_prefixes`].
pub fn canonical_index_set(domain: &[Pid], len: usize, ind: &PidIndependence) -> BTreeSet<usize> {
    let pos: BTreeMap<Pid, usize> = domain.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let n = domain.len();
    canonical_prefixes(domain, len, ind)
        .into_iter()
        .map(|w| {
            let mut idx = 0usize;
            let mut weight = 1usize;
            for p in w {
                idx += pos[&p] * weight;
                weight *= n;
            }
            idx
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(pairs: &[(u32, u32)]) -> PidIndependence {
        let mut ind = PidIndependence::trivial();
        for &(p, q) in pairs {
            ind.declare(Pid(p), Pid(q));
        }
        ind
    }

    fn index_of(domain: &[Pid], word: &[Pid]) -> usize {
        let n = domain.len();
        let mut idx = 0;
        let mut weight = 1;
        for p in word {
            idx += domain.iter().position(|d| d == p).unwrap() * weight;
            weight *= n;
        }
        idx
    }

    /// All length-`len` words over `domain`, grouped into Mazurkiewicz
    /// classes by BFS over adjacent independent swaps.
    fn trace_classes(domain: &[Pid], len: usize, ind: &PidIndependence) -> Vec<BTreeSet<Vec<Pid>>> {
        let mut all = vec![Vec::new()];
        for _ in 0..len {
            all = all
                .into_iter()
                .flat_map(|w: Vec<Pid>| {
                    domain.iter().map(move |&p| {
                        let mut w2 = w.clone();
                        w2.push(p);
                        w2
                    })
                })
                .collect();
        }
        let mut seen: BTreeSet<Vec<Pid>> = BTreeSet::new();
        let mut classes = Vec::new();
        for w in all {
            if seen.contains(&w) {
                continue;
            }
            let mut class = BTreeSet::new();
            let mut frontier = vec![w];
            while let Some(v) = frontier.pop() {
                if !class.insert(v.clone()) {
                    continue;
                }
                for i in 0..v.len().saturating_sub(1) {
                    if ind.independent(v[i], v[i + 1]) {
                        let mut s = v.clone();
                        s.swap(i, i + 1);
                        frontier.push(s);
                    }
                }
            }
            seen.extend(class.iter().cloned());
            classes.push(class);
        }
        classes
    }

    // The CCAL_POR value grammar is the shared one — its unset/0/1/garbage
    // behavior is covered by `crate::envflag::tests`.

    #[test]
    fn two_independent_letters_give_three_of_four_words() {
        let domain = [Pid(0), Pid(1)];
        let ind = rel(&[(0, 1)]);
        let reps = canonical_prefixes(&domain, 2, &ind);
        // Classes: {00}, {01, 10}, {11}; index-least of the middle class is
        // "10" (slot 0 = Pid(1), slot 1 = Pid(0)) with index 1.
        assert_eq!(reps.len(), 3);
        assert_eq!(
            canonical_index_set(&domain, 2, &ind),
            BTreeSet::from([0, 1, 3])
        );
    }

    #[test]
    fn trivial_relation_keeps_the_full_grid() {
        let domain = [Pid(0), Pid(1), Pid(2)];
        let ind = PidIndependence::trivial();
        assert!(ind.is_trivial());
        assert_eq!(canonical_prefixes(&domain, 3, &ind).len(), 27);
        assert_eq!(canonical_index_set(&domain, 3, &ind).len(), 27);
    }

    #[test]
    fn all_independent_letters_collapse_to_multisets() {
        // With everything commuting, a trace is exactly a multiset of
        // letters: C(len + n - 1, n - 1) classes.
        let domain = [Pid(0), Pid(1), Pid(2)];
        let ind = rel(&[(0, 1), (0, 2), (1, 2)]);
        // len 4 over 3 fully independent letters: C(6, 2) = 15.
        assert_eq!(canonical_prefixes(&domain, 4, &ind).len(), 15);
    }

    #[test]
    fn canonical_set_matches_brute_force_classes() {
        let domain = [Pid(0), Pid(1), Pid(2)];
        for pairs in [
            &[][..],
            &[(0, 1)][..],
            &[(1, 2)][..],
            &[(0, 1), (1, 2)][..],
            &[(0, 1), (0, 2), (1, 2)][..],
        ] {
            let ind = rel(pairs);
            for len in 1..=4 {
                let classes = trace_classes(&domain, len, &ind);
                let expected: BTreeSet<usize> = classes
                    .iter()
                    .map(|class| {
                        class
                            .iter()
                            .map(|w| index_of(&domain, w))
                            .min()
                            .unwrap()
                    })
                    .collect();
                let got = canonical_index_set(&domain, len, &ind);
                assert_eq!(
                    got, expected,
                    "pairs {pairs:?} len {len}: sleep-set reps must be the \
                     index-least member of each trace class"
                );
            }
        }
    }

    #[test]
    fn independence_is_symmetric_and_irreflexive() {
        let ind = rel(&[(3, 5)]);
        assert!(ind.independent(Pid(3), Pid(5)));
        assert!(ind.independent(Pid(5), Pid(3)));
        assert!(!ind.independent(Pid(3), Pid(3)));
        assert_eq!(ind.pair_count(), 1);
        let mut refl = PidIndependence::trivial();
        refl.declare(Pid(2), Pid(2));
        assert!(refl.is_trivial(), "self-pairs are ignored");
    }

    #[test]
    fn from_players_uses_declared_alphabets() {
        use crate::id::Loc;
        use crate::strategy::{IdleStrategy, ScratchPlayer};

        let domain = [Pid(0), Pid(1), Pid(2), Pid(3)];
        let mut players: BTreeMap<Pid, Arc<dyn Strategy>> = BTreeMap::new();
        players.insert(Pid(1), Arc::new(ScratchPlayer::new(Pid(1), Loc(10))));
        players.insert(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(11))));
        players.insert(Pid(3), Arc::new(IdleStrategy));
        let ind = PidIndependence::from_players(&domain, &players);
        assert!(ind.independent(Pid(1), Pid(2)), "disjoint locations");
        assert!(ind.independent(Pid(1), Pid(3)), "idle is empty-alphabet");
        assert!(ind.independent(Pid(2), Pid(3)));
        assert!(
            !ind.independent(Pid(0), Pid(1)),
            "the focused pid has no registered player and stays opaque"
        );

        // Same location ⇒ dependent.
        let mut clash: BTreeMap<Pid, Arc<dyn Strategy>> = BTreeMap::new();
        clash.insert(Pid(1), Arc::new(ScratchPlayer::new(Pid(1), Loc(9))));
        clash.insert(Pid(2), Arc::new(ScratchPlayer::new(Pid(2), Loc(9))));
        let ind = PidIndependence::from_players(&[Pid(1), Pid(2)], &clash);
        assert!(ind.is_trivial());
    }
}
