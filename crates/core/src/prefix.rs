//! Prefix-sharing lower-run exploration.
//!
//! The bounded checkers enumerate a `|D|^len` grid of schedule prefixes
//! ([`crate::contexts::ContextGen`]) and re-run the concrete (lower)
//! machine for every context. But a run under a [`ScriptScheduler`] is a
//! deterministic function of the *consumed* part of its script: every
//! strategy is a pure function of the global log (§2), and the scheduler
//! reads `script[k]` only at the `k`-th scheduling event. Two grid scripts
//! that agree on the first `k` slots therefore produce bit-identical runs
//! whenever the run consumes at most `k` scheduling events — most of the
//! grid is pure recomputation of shared prefixes.
//!
//! [`PrefixMemo`] exploits this: after a lower run executes, its outcome
//! (log, return values, error — whatever the checker folds over) is cached
//! under the schedule prefix it actually consumed, organizing the grid as
//! a prefix trie keyed by consumed depth. Any later case whose script
//! shares that consumed prefix reuses the outcome without re-running the
//! machine. Because the cached value is the *complete* per-case outcome,
//! evidence (case counts, probes, index-least first failure) stays
//! bit-identical to the unshared exploration, independent of visit order.
//!
//! Soundness of the clamp: when a run consumes *more* scheduling events
//! than the script's length (falling into the round-robin tail), the
//! outcome is cached at the full-script depth — sound because the fallback
//! is the same pure log function for every context of the grid (same
//! domain), so two contexts with equal full scripts are equal contexts.
//!
//! # Query-point snapshots
//!
//! Whole-outcome memoization cannot help a long multi-query primitive
//! (e.g. the interpreted ticket `acq`, which spins on `get_n` querying the
//! environment between polls): such a run consumes most or all of its
//! script, so no other context shares its *whole* consumed prefix. But
//! every query point is a cut point — the machine state plus a fork of the
//! in-flight run ([`crate::layer::PrimRun::fork_run`]) determine the rest
//! of the execution, and the schedule prefix consumed so far is exactly
//! the sched events in the log. [`SnapshotTrie`] stores such mid-run
//! snapshots keyed by consumed prefix: exploring a new context walks to
//! the *deepest* ancestor snapshot, forks it (cheap, Arc/COW-backed), and
//! executes only the suffix. Unlike [`PrefixMemo`] — where at most one
//! stored prefix can apply — many snapshots along a script's path apply
//! simultaneously; resuming from any of them yields the same outcome by
//! determinism, so the choice affects work done, never verdicts.
//!
//! Only contexts minted by [`crate::contexts::ContextGen`] carry a
//! [`ScheduleKey`]; hand-built contexts (notably the forensics replay
//! engine's scripted contexts) have none and structurally bypass the memo.
//!
//! `CCAL_PREFIX_SHARE=0` is the process-wide escape hatch, mirroring
//! `CCAL_POR` ([`crate::por::por_enabled`]); `CCAL_PREFIX_DEEP=0`
//! additionally disables only the query-point snapshot layer, keeping
//! PR-4-style whole-outcome sharing on.
//!
//! [`ScriptScheduler`]: crate::strategy::ScriptScheduler

use std::collections::HashMap;
use std::sync::atomic::{AtomicI8, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::id::Pid;

/// Whether prefix-sharing is enabled for this process.
///
/// Controlled by the `CCAL_PREFIX_SHARE` environment variable with the
/// shared `CCAL_*` grammar ([`crate::envflag`]): unset or any non-zero
/// integer — sharing on (the default); `0` — sharing off (the escape hatch
/// for differential debugging); garbage warns once and is ignored. The
/// variable is read once and cached for the lifetime of the process.
pub fn prefix_share_enabled() -> bool {
    crate::envflag::bool_flag("CCAL_PREFIX_SHARE", true)
}

/// Whether query-point (deep) snapshot sharing is enabled for this
/// process. Same grammar and caching as [`prefix_share_enabled`], read
/// from `CCAL_PREFIX_DEEP`. Deep sharing is additionally subordinate to
/// prefix sharing: checkers only consult the snapshot trie when both are
/// on.
pub fn prefix_deep_enabled() -> bool {
    crate::envflag::bool_flag("CCAL_PREFIX_DEEP", true)
}

/// Whether the compiled ClightX bytecode tier is enabled by this process's
/// environment. Same grammar and caching as [`prefix_share_enabled`], read
/// from `CCAL_BYTECODE`: unset or any non-zero integer — compiled tier on
/// (the default); `0` — interpret everything (the differential-debugging
/// escape hatch). Checkers install a scoped override on top of this via
/// [`BytecodeOverride`]; instantiation sites should consult
/// [`bytecode_effective`], not this function.
pub fn bytecode_enabled() -> bool {
    crate::envflag::bool_flag("CCAL_BYTECODE", true)
}

/// Scoped override of the bytecode tier: -1 = no override (fall back to
/// [`bytecode_enabled`]), 0 = force interpreter, 1 = force compiled.
/// Strategy closures are built long before any checker decides its
/// options, so the tier must be read at *instantiation* time; the checkers
/// install their [`crate::sim::SimOptions`] choice here for the duration
/// of a check.
fn bytecode_override() -> &'static AtomicI8 {
    static OVERRIDE: AtomicI8 = AtomicI8::new(-1);
    &OVERRIDE
}

/// The bytecode-tier choice in effect right now: the innermost
/// [`BytecodeOverride`] if one is live, else the `CCAL_BYTECODE`
/// environment default. Strategy instantiation sites (notably
/// `ccal_clightx::module_from_lowered`'s closures) consult this on every
/// call, so one compiled module serves both tiers.
pub fn bytecode_effective() -> bool {
    match bytecode_override().load(Ordering::Relaxed) {
        -1 => bytecode_enabled(),
        0 => false,
        _ => true,
    }
}

/// RAII guard forcing the bytecode tier on or off process-wide until
/// dropped. Overrides do not nest meaningfully — the guard restores the
/// value it displaced, and concurrent checker runs with *different* tier
/// choices would race (the benchmarks and differential tests that toggle
/// the tier run checks serially).
pub struct BytecodeOverride {
    prev: i8,
}

impl BytecodeOverride {
    /// Forces the tier to `on` until the guard drops.
    pub fn force(on: bool) -> Self {
        let prev = bytecode_override().swap(i8::from(on), Ordering::Relaxed);
        Self { prev }
    }
}

impl Drop for BytecodeOverride {
    fn drop(&mut self) {
        bytecode_override().store(self.prev, Ordering::Relaxed);
    }
}

/// Whether convergence deduplication — the canonical-state-fingerprint
/// suffix cache in [`crate::explore::Kernel`] — is enabled by this
/// process's environment. Same grammar and caching as
/// [`prefix_share_enabled`], read from `CCAL_STATE_DEDUP`: unset or any
/// non-zero integer — dedup on (the default); `0` — every context executes
/// its full suffix (the differential-debugging escape hatch). Consumers
/// should consult [`state_dedup_effective`], which also honors scoped
/// [`StateDedupOverride`] guards.
pub fn state_dedup_enabled() -> bool {
    crate::envflag::bool_flag("CCAL_STATE_DEDUP", true)
}

/// Scoped override of convergence dedup: -1 = no override (fall back to
/// [`state_dedup_enabled`]), 0 = force off, 1 = force on. The forensics
/// replay engine forces dedup off so replays re-execute every recorded
/// step, and the B7 benchmark forces each side of its ratio.
fn state_dedup_override() -> &'static AtomicI8 {
    static OVERRIDE: AtomicI8 = AtomicI8::new(-1);
    &OVERRIDE
}

/// The convergence-dedup choice in effect right now: the innermost
/// [`StateDedupOverride`] if one is live, else the `CCAL_STATE_DEDUP`
/// environment default.
pub fn state_dedup_effective() -> bool {
    match state_dedup_override().load(Ordering::Relaxed) {
        -1 => state_dedup_enabled(),
        0 => false,
        _ => true,
    }
}

/// RAII guard forcing convergence dedup on or off process-wide until
/// dropped, with the same (non-)nesting discipline as
/// [`BytecodeOverride`]: the guard restores the value it displaced, and
/// concurrent runs wanting different choices would race.
pub struct StateDedupOverride {
    prev: i8,
}

impl StateDedupOverride {
    /// Forces convergence dedup to `on` until the guard drops.
    pub fn force(on: bool) -> Self {
        let prev = state_dedup_override().swap(i8::from(on), Ordering::Relaxed);
        Self { prev }
    }
}

impl Drop for StateDedupOverride {
    fn drop(&mut self) {
        state_dedup_override().store(self.prev, Ordering::Relaxed);
    }
}

/// Whether **semantic sharing keys** are enabled by this process's
/// environment: warm exploration state keyed by the content identity of
/// the lower-machine family ([`crate::fingerprint::ShareKey`]) instead of
/// being pinned to each certification unit's whole-input fingerprint, so
/// units of one stack and successive requests over the same underlay
/// share one `PrefixMemo`/`SnapshotTrie`/convergence store. Same grammar
/// and caching as [`prefix_share_enabled`], read from
/// `CCAL_SHARE_SEMANTIC`: unset or any non-zero integer — semantic keys on
/// (the default); `0` — per-unit pinned families (the
/// differential-debugging escape hatch), warned once so stale CI configs
/// fail loudly. Consumers should consult [`share_semantic_effective`],
/// which also honors scoped [`ShareSemanticOverride`] guards.
pub fn share_semantic_enabled() -> bool {
    let on = crate::envflag::bool_flag("CCAL_SHARE_SEMANTIC", true);
    if !on {
        static WARNED: std::sync::OnceLock<()> = std::sync::OnceLock::new();
        WARNED.get_or_init(|| {
            eprintln!(
                "ccal: CCAL_SHARE_SEMANTIC=0 — warm exploration state is pinned \
                 per-unit (no cross-unit or cross-request semantic sharing)"
            );
        });
    }
    on
}

/// Scoped override of semantic sharing keys: -1 = no override (fall back
/// to [`share_semantic_enabled`]), 0 = force pinned families, 1 = force
/// semantic keys. The B8 benchmark measures both sides of its ratio in
/// one process, and the sharing differential pins bit-identity across the
/// two modes.
fn share_semantic_override() -> &'static AtomicI8 {
    static OVERRIDE: AtomicI8 = AtomicI8::new(-1);
    &OVERRIDE
}

/// The semantic-sharing choice in effect right now: the innermost
/// [`ShareSemanticOverride`] if one is live, else the
/// `CCAL_SHARE_SEMANTIC` environment default.
pub fn share_semantic_effective() -> bool {
    match share_semantic_override().load(Ordering::Relaxed) {
        -1 => share_semantic_enabled(),
        0 => false,
        _ => true,
    }
}

/// RAII guard forcing semantic sharing keys on or off process-wide until
/// dropped, with the same (non-)nesting discipline as
/// [`BytecodeOverride`]: the guard restores the value it displaced, and
/// concurrent runs wanting different choices would race.
pub struct ShareSemanticOverride {
    prev: i8,
}

impl ShareSemanticOverride {
    /// Forces semantic sharing keys to `on` until the guard drops.
    pub fn force(on: bool) -> Self {
        let prev = share_semantic_override().swap(i8::from(on), Ordering::Relaxed);
        Self { prev }
    }
}

impl Drop for ShareSemanticOverride {
    fn drop(&mut self) {
        share_semantic_override().store(self.prev, Ordering::Relaxed);
    }
}

/// Hands out a fresh family id for a [`crate::contexts::ContextGen`]
/// instance. Keys from different generators never collide in a
/// [`PrefixMemo`], so a checker handed a mixed slice of contexts (different
/// players, domains, or fuel) stays correct — sharing simply does not cross
/// the family boundary.
pub fn next_family() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The identity of one grid context's schedule script, attached to
/// [`crate::env::EnvContext`]s minted by a generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleKey {
    family: u64,
    script: Vec<Pid>,
    domain_len: usize,
}

impl ScheduleKey {
    /// Creates a key for a script of one generator family over a domain of
    /// `domain_len` participants.
    pub fn new(family: u64, script: Vec<Pid>, domain_len: usize) -> Self {
        Self {
            family,
            script,
            domain_len,
        }
    }

    /// The generator family the script belongs to.
    pub fn family(&self) -> u64 {
        self.family
    }

    /// The schedule script (slot 0 first).
    pub fn script(&self) -> &[Pid] {
        &self.script
    }

    /// The size of the scheduler domain the script draws from.
    pub fn domain_len(&self) -> usize {
        self.domain_len
    }
}

/// A consumed-prefix outcome memo: per `(family, inner-index)` a trie over
/// schedule prefixes, stored flat as a map from the consumed prefix to the
/// cached per-case outcome. `inner` distinguishes sub-cases that share a
/// context (the argument-vector index in the simulation checker, the script
/// index in the sequence-refinement checker); checkers with one case per
/// context pass `0`.
///
/// The store is sharded by `(family, inner)` so a probe can borrow the
/// key's script (`Vec<Pid>: Borrow<[Pid]>`) — looking up every prefix
/// depth allocates nothing while the lock is held.
pub struct PrefixMemo<T> {
    map: Mutex<HashMap<(u64, usize), PrefixShard<T>>>,
}

/// One `(family, inner)` shard: consumed prefix → cached outcome.
type PrefixShard<T> = HashMap<Vec<Pid>, T>;

impl<T: Clone> PrefixMemo<T> {
    /// Creates an empty memo.
    pub fn new() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Looks up the outcome cached for any consumed prefix of `key`'s
    /// script (including the empty prefix — a run that consumed no
    /// scheduling events — and the full script). At most one stored prefix
    /// can apply: a cached entry at depth `d` certifies that runs reading
    /// those `d` slots consume exactly `d` of them, so a second entry at a
    /// deeper extension of the same prefix can never be inserted.
    pub fn lookup(&self, key: &ScheduleKey, inner: usize) -> Option<T> {
        self.lookup_at(key, inner).map(|(_, v)| v)
    }

    /// [`PrefixMemo::lookup`], additionally reporting the depth of the
    /// matched prefix — the number of schedule slots the memoized run
    /// consumed (clamped at insert time for runs that outlived their
    /// script). Callers that re-cache a derived outcome must key it at
    /// this depth, *not* at zero: a depth-0 entry matches every script of
    /// the family, which is only sound for runs that truly read no slots.
    pub fn lookup_at(&self, key: &ScheduleKey, inner: usize) -> Option<(usize, T)> {
        let map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let shard = map.get(&(key.family, inner))?;
        (0..=key.script.len())
            .find_map(|d| shard.get(&key.script[..d]).map(|v| (d, v.clone())))
    }

    /// Caches `value` under the prefix of `key`'s script that the run
    /// actually consumed (`consumed` scheduling events, clamped to the
    /// script length for runs that outlived their script — see the module
    /// docs). First insert wins: two workers racing to compute the same
    /// prefix computed the same deterministic value.
    pub fn insert(&self, key: &ScheduleKey, inner: usize, consumed: usize, value: T) {
        let depth = consumed.min(key.script.len());
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry((key.family, inner))
            .or_default()
            .entry(key.script[..depth].to_vec())
            .or_insert(value);
    }

    /// Number of cached outcomes (distinct consumed prefixes executed).
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .map(HashMap::len)
            .sum()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Clone> Default for PrefixMemo<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Default cap on live snapshots in a [`SnapshotTrie`] — the same order of
/// magnitude as [`crate::sim::SimOptions`]'s upper-run cache cap, chosen
/// to hold a full branching-factor × depth grid of cut points for the
/// schedule lengths the checkers explore.
pub const DEFAULT_SNAPSHOT_CAP: usize = 4096;

/// A mid-run machine snapshot that can be forked into an independent copy
/// per use. The trie stores one *master* per cut point and hands out forks
/// — masters are never resumed themselves, so an entry stays valid for any
/// number of contexts. `fork` may return `None` when some captured
/// component does not support forking; the lookup then falls back to a
/// shallower snapshot (or a fresh run), which is always sound.
pub trait ForkSnapshot: Sized + Send {
    /// Forks an independent copy of the snapshot.
    fn fork(&self) -> Option<Self>;
}

/// A schedule-prefix trie of query-point snapshots: per `(family, inner)`
/// a map from consumed schedule prefix to the machine state captured just
/// before that query's environment delivery. See the module docs for the
/// sharing model; `inner` plays the same role as in [`PrefixMemo`] and
/// must fully determine the execution's input (primitive, arguments,
/// phase) so that snapshots of one shard are interchangeable.
///
/// Memory is bounded by `cap` with **deepest-first eviction**: when an
/// insert would exceed the cap, the snapshots at the longest stored
/// prefixes — the most specific cut points, each reusable only by the few
/// contexts sharing that long prefix — are dropped first, *including the
/// incoming snapshot itself* when it is the deepest. Root and shallow
/// snapshots, which every later context of the family re-derives from
/// scratch after a whole-trie clear, survive squeezes. Ties on depth evict
/// the newest entry first (first insert wins), so a serial run's
/// hit/evict sequence is deterministic; evictions are batched (about an
/// eighth of the cap per scan, at least one) to amortize the victim scan
/// on saturated tries. Snapshots are a pure work-saving device, so
/// eviction costs re-execution, never correctness.
pub struct SnapshotTrie<S> {
    map: Mutex<SnapshotStore<S>>,
    cap: usize,
    hits: AtomicU64,
    evictions: AtomicU64,
}

/// One resident snapshot per `(family, inner)` shard, keyed by consumed
/// schedule prefix and tagged with its insertion sequence number.
type SnapshotShards<S> = HashMap<(u64, usize), HashMap<Vec<Pid>, (u64, S)>>;

struct SnapshotStore<S> {
    shards: SnapshotShards<S>,
    len: usize,
    next_seq: u64,
}

impl<S: ForkSnapshot> SnapshotTrie<S> {
    /// Creates an empty trie holding at most `cap` snapshots (clamped to
    /// at least 1).
    pub fn new(cap: usize) -> Self {
        Self {
            map: Mutex::new(SnapshotStore {
                shards: HashMap::new(),
                len: 0,
                next_seq: 0,
            }),
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Forks the snapshot at the *deepest* stored prefix of `key`'s script
    /// (deepest saves the most re-execution), reporting the matched depth
    /// and counting a hit. Unlike [`PrefixMemo::lookup_at`], many stored
    /// prefixes can apply at once; determinism makes the choice
    /// observationally irrelevant.
    pub fn lookup_deepest(&self, key: &ScheduleKey, inner: usize) -> Option<(usize, S)> {
        let store = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let shard = store.shards.get(&(key.family, inner))?;
        let hit = (0..=key.script.len()).rev().find_map(|d| {
            shard
                .get(&key.script[..d])
                .and_then(|(_, s)| s.fork())
                .map(|s| (d, s))
        });
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Stores the snapshot produced by `make` under the prefix of `key`'s
    /// script consumed so far (`consumed` scheduling events, clamped to
    /// the script length — same soundness argument as
    /// [`PrefixMemo::insert`]). First insert wins, and `make` is only
    /// called when the cut point is vacant. When the trie is full, the
    /// deepest snapshots are evicted first; an incoming snapshot at least
    /// as deep as every resident is rejected instead (`make` is then never
    /// called). Either way the drop is counted in [`SnapshotTrie::evictions`].
    pub fn insert_with(
        &self,
        key: &ScheduleKey,
        inner: usize,
        consumed: usize,
        make: impl FnOnce() -> Option<S>,
    ) {
        let depth = consumed.min(key.script.len());
        let mut store = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if store
            .shards
            .get(&(key.family, inner))
            .is_some_and(|shard| shard.contains_key(&key.script[..depth]))
        {
            return;
        }
        if store.len >= self.cap {
            // The sequence number the incoming snapshot would be stored
            // under — strictly newer than every resident's.
            let incoming_seq = store.next_seq + 1;
            type Victim = Option<((u64, usize), Vec<Pid>)>;
            let mut cand: Vec<(usize, u64, Victim)> = Vec::with_capacity(store.len + 1);
            for (sk, shard) in &store.shards {
                for (prefix, (seq, _)) in shard {
                    cand.push((prefix.len(), *seq, Some((*sk, prefix.clone()))));
                }
            }
            cand.push((depth, incoming_seq, None));
            // Deepest first; newest first among equal depths.
            cand.sort_by_key(|c| std::cmp::Reverse((c.0, c.1)));
            let batch = (self.cap / 8).max(1);
            for (_, _, victim) in cand.into_iter().take(batch) {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                match victim {
                    Some((sk, prefix)) => {
                        let emptied = store.shards.get_mut(&sk).is_some_and(|shard| {
                            let removed = shard.remove(&prefix).is_some();
                            debug_assert!(removed, "victim scan saw a live entry");
                            shard.is_empty()
                        });
                        store.len -= 1;
                        if emptied {
                            store.shards.remove(&sk);
                        }
                    }
                    // The incoming snapshot is the victim: drop it and
                    // stop evicting residents — the trie no longer
                    // overflows.
                    None => return,
                }
            }
        }
        if let Some(snap) = make() {
            store.next_seq += 1;
            let seq = store.next_seq;
            store
                .shards
                .entry((key.family, inner))
                .or_default()
                .insert(key.script[..depth].to_vec(), (seq, snap));
            store.len += 1;
        }
    }

    /// Number of live snapshots across all shards.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len
    }

    /// Whether no snapshot is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that forked a stored snapshot since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Snapshots dropped (or incoming inserts rejected) by the
    /// deepest-first eviction since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

fn steps_counter() -> &'static AtomicU64 {
    static STEPS: AtomicU64 = AtomicU64::new(0);
    &STEPS
}

fn shared_counter() -> &'static AtomicU64 {
    static SHARED: AtomicU64 = AtomicU64::new(0);
    &SHARED
}

fn deep_counter() -> &'static AtomicU64 {
    static DEEP: AtomicU64 = AtomicU64::new(0);
    &DEEP
}

fn prim_steps_counter() -> &'static AtomicU64 {
    static PRIM: AtomicU64 = AtomicU64::new(0);
    &PRIM
}

fn converged_counter() -> &'static AtomicU64 {
    static CONV: AtomicU64 = AtomicU64::new(0);
    &CONV
}

fn conv_evictions_counter() -> &'static AtomicU64 {
    static EVICT: AtomicU64 = AtomicU64::new(0);
    &EVICT
}

/// Resets the process-wide lower-run work accounting (all counters).
/// Benchmarks bracket a checker run with [`steps_reset`] / [`steps_total`]
/// to measure executed atom-steps; the counters are only meaningful when
/// the bracketed run is not concurrent with other checker runs.
pub fn steps_reset() {
    steps_counter().store(0, Ordering::Relaxed);
    shared_counter().store(0, Ordering::Relaxed);
    deep_counter().store(0, Ordering::Relaxed);
    prim_steps_counter().store(0, Ordering::Relaxed);
    converged_counter().store(0, Ordering::Relaxed);
    conv_evictions_counter().store(0, Ordering::Relaxed);
}

/// Total lower-machine atom-steps executed since the last [`steps_reset`].
pub fn steps_total() -> u64 {
    steps_counter().load(Ordering::Relaxed)
}

/// Number of lower runs answered from a [`PrefixMemo`] since the last
/// [`steps_reset`].
pub fn shared_total() -> u64 {
    shared_counter().load(Ordering::Relaxed)
}

/// Records `n` executed lower-machine atom-steps. Checkers call this once
/// per *executed* (non-cached) lower run with a work proxy — machine fuel
/// consumed plus events appended — so the sharing ratio in the benchmarks
/// counts real machine work, not memo hits.
pub fn record_steps(n: u64) {
    steps_counter().fetch_add(n, Ordering::Relaxed);
}

/// Records one lower run answered from the memo instead of executed.
pub fn record_shared() {
    shared_counter().fetch_add(1, Ordering::Relaxed);
}

/// Records one lower run resumed from a [`SnapshotTrie`] snapshot instead
/// of executed from scratch.
pub fn record_deep() {
    deep_counter().fetch_add(1, Ordering::Relaxed);
}

/// Number of lower runs resumed from a snapshot since [`steps_reset`].
pub fn deep_total() -> u64 {
    deep_counter().load(Ordering::Relaxed)
}

/// Records `n` intra-primitive execution steps — interpreter work items
/// popped or VM instructions retired *inside* a ClightX primitive body.
/// Distinct from [`record_steps`]: the machine-level counter charges one
/// unit per query-point resume plus log growth, identical for both
/// execution tiers, whereas this counter measures the per-statement work
/// the bytecode tier actually eliminates. The B6 benchmark gates on the
/// ratio of this counter between tiers.
pub fn record_prim_steps(n: u64) {
    prim_steps_counter().fetch_add(n, Ordering::Relaxed);
}

/// Total intra-primitive execution steps since the last [`steps_reset`].
pub fn prim_steps_total() -> u64 {
    prim_steps_counter().load(Ordering::Relaxed)
}

/// Records one suffix answered by the convergence cache instead of
/// executed — the context completed from a fingerprint-identical state
/// without running a single further atom step.
pub fn record_converged() {
    converged_counter().fetch_add(1, Ordering::Relaxed);
}

/// Number of convergence-cache suffix hits since the last [`steps_reset`].
pub fn converged_total() -> u64 {
    converged_counter().load(Ordering::Relaxed)
}

/// Records `n` convergence-cache evictions. The kernel accumulates its
/// per-run [`crate::explore::BoundedCache`] eviction count here on drop,
/// so benches can report pressure across whole checker invocations.
pub fn record_conv_evictions(n: u64) {
    conv_evictions_counter().fetch_add(n, Ordering::Relaxed);
}

/// Total convergence-cache evictions since the last [`steps_reset`].
pub fn conv_evictions_total() -> u64 {
    conv_evictions_counter().load(Ordering::Relaxed)
}

/// A queue-order permutation for [`crate::par::run_cases_ordered`] that
/// turns flat chunk claiming into subtree claiming: consecutive queue
/// positions map to case indices whose schedule scripts share *long*
/// prefixes (the grid encodes slot 0 as the least significant digit, so
/// ascending indices share suffixes; digit-reversing the context index
/// makes a claimed chunk a subtree of the prefix trie). Workers then mostly
/// extend prefixes they themselves populated, instead of racing all
/// subtrees at once.
///
/// Returns `None` — no reordering — unless every context carries a
/// [`ScheduleKey`] of one family over one domain whose grid is fully
/// enumerated in index order (`contexts.len() == n^len`), which is exactly
/// what [`crate::contexts::ContextGen`] produces for unsampled grids.
/// `nargs` is the number of per-context sub-cases (case index = `ctx_index
/// * nargs + sub_index`); sub-cases stay adjacent.
pub fn subtree_case_order(
    keys: &[Option<&ScheduleKey>],
    nargs: usize,
) -> Option<Vec<usize>> {
    let first = keys.first().copied().flatten()?;
    let n = first.domain_len();
    let len = first.script().len();
    if n < 2 || nargs == 0 {
        return None;
    }
    let total = n.checked_pow(u32::try_from(len).ok()?)?;
    if keys.len() != total {
        return None;
    }
    if !keys.iter().all(|k| {
        k.is_some_and(|k| {
            k.family() == first.family() && k.domain_len() == n && k.script().len() == len
        })
    }) {
        return None;
    }
    let rev = |mut i: usize| -> usize {
        let mut out = 0;
        for _ in 0..len {
            out = out * n + i % n;
            i /= n;
        }
        out
    };
    Some(
        (0..total * nargs)
            .map(|j| rev(j / nargs) * nargs + j % nargs)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(family: u64, script: &[u32]) -> ScheduleKey {
        ScheduleKey::new(family, script.iter().map(|&p| Pid(p)).collect(), 2)
    }

    #[test]
    fn lookup_hits_any_consumed_prefix() {
        let memo = PrefixMemo::new();
        let k_short = key(7, &[0, 1, 0]);
        // A run under [0,1,0] that consumed 2 slots.
        memo.insert(&k_short, 0, 2, "shared");
        // Scripts agreeing on the first two slots hit; others miss.
        assert_eq!(memo.lookup(&key(7, &[0, 1, 1]), 0), Some("shared"));
        assert_eq!(memo.lookup(&key(7, &[0, 0, 0]), 0), None);
        assert_eq!(memo.lookup(&key(7, &[1, 1, 0]), 0), None);
    }

    #[test]
    fn depth_zero_entries_hit_every_script() {
        let memo = PrefixMemo::new();
        memo.insert(&key(3, &[1, 1]), 0, 0, 42);
        assert_eq!(memo.lookup(&key(3, &[0, 0]), 0), Some(42));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn consumed_depth_clamps_to_script_length() {
        let memo = PrefixMemo::new();
        // A run that outlived its script (round-robin tail): cached at the
        // full script, so only the identical script hits.
        memo.insert(&key(1, &[0, 1]), 0, 9, "tail");
        assert_eq!(memo.lookup(&key(1, &[0, 1]), 0), Some("tail"));
        assert_eq!(memo.lookup(&key(1, &[0, 0]), 0), None);
    }

    #[test]
    fn lookup_at_reports_the_matched_depth() {
        let memo = PrefixMemo::new();
        memo.insert(&key(9, &[0, 1, 0]), 2, 2, "deep");
        assert_eq!(memo.lookup_at(&key(9, &[0, 1, 1]), 2), Some((2, "deep")));
        // Runs that outlived their script are clamped at insert time, so
        // the reported depth is the stored (full-script) depth.
        memo.insert(&key(9, &[1, 1]), 2, 7, "tail");
        assert_eq!(memo.lookup_at(&key(9, &[1, 1]), 2), Some((2, "tail")));
        assert_eq!(memo.lookup_at(&key(9, &[0, 0, 0]), 2), None);
    }

    #[test]
    fn families_and_inner_indices_do_not_cross() {
        let memo = PrefixMemo::new();
        memo.insert(&key(1, &[0]), 0, 0, 1);
        assert_eq!(memo.lookup(&key(2, &[0]), 0), None, "family boundary");
        assert_eq!(memo.lookup(&key(1, &[0]), 1), None, "inner boundary");
    }

    #[test]
    fn first_insert_wins() {
        let memo = PrefixMemo::new();
        memo.insert(&key(1, &[0, 1]), 0, 1, "first");
        memo.insert(&key(1, &[0, 0]), 0, 1, "second");
        assert_eq!(memo.lookup(&key(1, &[0, 1]), 0), Some("first"));
    }

    #[test]
    fn step_counters_accumulate_and_reset() {
        // Serialized by the global counters themselves being process-wide:
        // this test only checks the arithmetic, tolerating interference by
        // measuring deltas.
        steps_reset();
        record_steps(10);
        record_steps(5);
        record_shared();
        assert!(steps_total() >= 15);
        assert!(shared_total() >= 1);
        steps_reset();
    }

    #[test]
    fn subtree_order_is_a_digit_reversal_permutation() {
        // 2-pid domain, len 2 grid (4 contexts), 3 args per context.
        let keys_owned: Vec<ScheduleKey> = (0..4)
            .map(|i| key(5, &[i % 2, (i / 2) % 2]))
            .collect();
        let keys: Vec<Option<&ScheduleKey>> = keys_owned.iter().map(Some).collect();
        let order = subtree_case_order(&keys, 3).expect("full grid reorders");
        assert_eq!(order.len(), 12);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>(), "a permutation");
        // Queue position 1 is context rev(0)=0 arg 1; position 3 is context
        // rev(1) = 2 (digit reversal of 01 is 10), arg 0.
        assert_eq!(order[1], 1);
        assert_eq!(order[3], 2 * 3);
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Snap(&'static str, bool);

    impl ForkSnapshot for Snap {
        fn fork(&self) -> Option<Self> {
            self.1.then(|| self.clone())
        }
    }

    #[test]
    fn snapshot_lookup_prefers_the_deepest_prefix() {
        let trie = SnapshotTrie::new(16);
        trie.insert_with(&key(4, &[0, 1, 0]), 0, 1, || Some(Snap("shallow", true)));
        trie.insert_with(&key(4, &[0, 1, 0]), 0, 2, || Some(Snap("deep", true)));
        assert_eq!(
            trie.lookup_deepest(&key(4, &[0, 1, 1]), 0),
            Some((2, Snap("deep", true)))
        );
        // A script diverging after slot 0 only reaches the shallow one.
        assert_eq!(
            trie.lookup_deepest(&key(4, &[0, 0, 0]), 0),
            Some((1, Snap("shallow", true)))
        );
        assert_eq!(trie.lookup_deepest(&key(4, &[1, 0, 0]), 0), None);
    }

    #[test]
    fn snapshot_unforkable_masters_fall_back_shallower() {
        let trie = SnapshotTrie::new(16);
        trie.insert_with(&key(6, &[0, 1]), 0, 1, || Some(Snap("ok", true)));
        trie.insert_with(&key(6, &[0, 1]), 0, 2, || Some(Snap("stuck", false)));
        assert_eq!(
            trie.lookup_deepest(&key(6, &[0, 1]), 0),
            Some((1, Snap("ok", true)))
        );
    }

    #[test]
    fn snapshot_insert_is_first_wins_and_skips_make_when_present() {
        let trie = SnapshotTrie::new(16);
        trie.insert_with(&key(2, &[0, 1]), 0, 1, || Some(Snap("first", true)));
        let mut called = false;
        trie.insert_with(&key(2, &[0, 0]), 0, 1, || {
            called = true;
            Some(Snap("second", true))
        });
        assert!(!called, "make ran for an occupied cut point");
        assert_eq!(
            trie.lookup_deepest(&key(2, &[0, 1]), 0),
            Some((1, Snap("first", true)))
        );
        assert_eq!(trie.len(), 1);
    }

    #[test]
    fn snapshot_cap_evicts_deepest_first() {
        let trie = SnapshotTrie::new(2);
        trie.insert_with(&key(8, &[0, 0]), 0, 1, || Some(Snap("a", true)));
        trie.insert_with(&key(8, &[1, 0]), 0, 2, || Some(Snap("b", true)));
        assert_eq!(trie.len(), 2);
        // Full trie, shallower incoming snapshot: the deepest resident
        // ([1,0] at depth 2) is the victim; the shallow one survives.
        trie.insert_with(&key(8, &[1, 1]), 0, 1, || Some(Snap("c", true)));
        assert_eq!(trie.len(), 2);
        assert_eq!(
            trie.lookup_deepest(&key(8, &[0, 0]), 0),
            Some((1, Snap("a", true)))
        );
        assert_eq!(trie.lookup_deepest(&key(8, &[1, 0]), 0).map(|(d, _)| d), Some(1));
        assert_eq!(
            trie.lookup_deepest(&key(8, &[1, 1]), 0),
            Some((1, Snap("c", true)))
        );
        assert_eq!(trie.evictions(), 1);
    }

    #[test]
    fn snapshot_cap_rejects_an_incoming_snapshot_deeper_than_every_resident() {
        let trie = SnapshotTrie::new(1);
        trie.insert_with(&key(8, &[0, 0]), 0, 1, || Some(Snap("shallow", true)));
        let mut made = false;
        trie.insert_with(&key(8, &[0, 1]), 0, 2, || {
            made = true;
            Some(Snap("deep", true))
        });
        assert!(!made, "rejected incoming snapshots are never made");
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.evictions(), 1);
        // The shallow resident survives the squeeze and keeps answering.
        assert_eq!(
            trie.lookup_deepest(&key(8, &[0, 1]), 0),
            Some((1, Snap("shallow", true)))
        );
        assert_eq!(trie.hits(), 1);
    }

    /// The clear-on-full regression: under a cap-1 squeeze, deepest-first
    /// eviction keeps the root snapshot every context of the family can
    /// resume from, so the simulated re-execution cost (schedule slots
    /// replayed from the matched depth) is strictly lower than with the
    /// old whole-trie clear, which repeatedly threw the root away.
    #[test]
    fn shallow_snapshots_survive_a_cap_1_squeeze_better_than_full_clears() {
        const LEN: usize = 4;
        // The interleaved workload: for each context, try to resume (cost
        // = slots not covered by the matched snapshot), then offer a
        // deep snapshot at the context's full depth.
        let scripts: Vec<Vec<u32>> = (0..8_usize)
            .map(|i| (0..LEN).map(|s| u32::from((i >> s) & 1 == 1)).collect())
            .collect();
        let evict_cost = {
            let trie = SnapshotTrie::new(1);
            let mut cost = 0_u64;
            trie.insert_with(&key(11, &scripts[0]), 0, 1, || Some(Snap("root", true)));
            for s in &scripts {
                let k = key(11, s);
                let matched = trie.lookup_deepest(&k, 0).map_or(0, |(d, _)| d);
                cost += (LEN - matched) as u64;
                trie.insert_with(&k, 0, LEN, || Some(Snap("deep", true)));
            }
            cost
        };
        // Reference model of the old clear-on-full policy over the same
        // workload: the trie holds exactly the last inserted snapshot.
        let mut clear_cost = 0_u64;
        {
            let mut resident: Option<(Vec<u32>, usize)> = Some((scripts[0].clone(), 1));
            for s in &scripts {
                let matched = resident
                    .as_ref()
                    .filter(|(held, d)| held[..*d] == s[..*d])
                    .map_or(0, |(_, d)| *d);
                clear_cost += (LEN - matched) as u64;
                resident = Some((s.clone(), LEN));
            }
        }
        assert!(
            evict_cost < clear_cost,
            "deepest-first ({evict_cost}) should beat clear-on-full ({clear_cost})"
        );
    }

    #[test]
    fn snapshot_consumed_depth_clamps_to_script_length() {
        let trie = SnapshotTrie::new(16);
        trie.insert_with(&key(3, &[0, 1]), 0, 9, || Some(Snap("tail", true)));
        assert_eq!(
            trie.lookup_deepest(&key(3, &[0, 1]), 0),
            Some((2, Snap("tail", true)))
        );
        assert_eq!(trie.lookup_deepest(&key(3, &[0, 0]), 0), None);
    }

    #[test]
    fn subtree_order_rejects_partial_or_mixed_grids() {
        let keys_owned: Vec<ScheduleKey> =
            (0..3).map(|i| key(5, &[i % 2, (i / 2) % 2])).collect();
        let keys: Vec<Option<&ScheduleKey>> = keys_owned.iter().map(Some).collect();
        assert!(subtree_case_order(&keys, 1).is_none(), "sampled grid");
        let mut mixed: Vec<Option<&ScheduleKey>> = keys_owned.iter().map(Some).collect();
        mixed.push(None);
        assert!(subtree_case_order(&mixed, 1).is_none(), "keyless context");
        assert!(subtree_case_order(&[], 1).is_none(), "empty slice");
    }
}
