//! Contextual refinement and the soundness theorem (Thm 2.2).
//!
//! "From `L′[D] ⊢_R M : L[D]`, the soundness theorem enforces a strong
//! contextual refinement property saying that, for any client program `P`,
//! ... for any log `l` in the behavior `[[P ⊕ M]]_{L′[D]}`, there must
//! exist a log `l′` in the behavior `[[P]]_{L[D]}` such that `l` and `l′`
//! satisfy `R`" (Thm 2.2).
//!
//! [`check_contextual_refinement`] is the bounded executable check: for
//! every generated environment context, it runs `P ⊕ M` over the underlay
//! (by installing `M`'s functions next to the underlay's primitives),
//! abstracts the produced log through `R`, constructs the matching
//! high-level environment by replay (the paper's "picking a suitable
//! scheduler", §2 and Thm 3.1), runs `P` over the overlay, and compares.

use std::collections::BTreeMap;

use crate::calculus::{CertifiedLayer, LayerError, Obligation, Rule};
use crate::conc::{ConcurrentMachine, ThreadScript};
use crate::env::EnvContext;
use crate::id::Pid;
use crate::log::Log;
use crate::sim::replay_env_set;

/// A client program `P`: one straight-line script of primitive calls per
/// focused participant.
pub type ClientProgram = BTreeMap<Pid, ThreadScript>;

/// The behaviors `[[P]]_{L[A]}`: the set of logs produced by running `P`
/// over the interface under each environment context. Contexts on which
/// the run is invalid (rely violation / unfairness) are omitted, mirroring
/// the quantification over *valid* contexts.
///
/// # Errors
///
/// Propagates real execution failures (stuck machines, guarantee
/// violations).
pub fn behaviors(
    iface: &crate::layer::LayerInterface,
    focused: &crate::id::PidSet,
    client: &ClientProgram,
    contexts: &[EnvContext],
    fuel: u64,
) -> Result<Vec<Log>, LayerError> {
    let mut logs = Vec::new();
    for env in contexts {
        let machine = ConcurrentMachine::new(iface.clone(), focused.clone(), env.clone())
            .with_fuel(fuel);
        match machine.run(client) {
            Ok(out) => logs.push(out.log),
            Err(e) if e.is_invalid_context() => continue,
            Err(e) => return Err(LayerError::Machine(e)),
        }
    }
    Ok(logs)
}

/// Bounded check of Theorem 2.2 for a certified layer and a client
/// program: `∀E. [[P ⊕ M]]_{L′[A]}(E) ⊑_R [[P]]_{L[A]}`.
///
/// Returns the discharged obligation (and pushes it onto a copy of the
/// layer's certificate if the caller records it).
///
/// # Errors
///
/// * [`LayerError::Machine`] if a run fails;
/// * [`LayerError::Mismatch`] if some low-level behavior has no related
///   high-level behavior.
pub fn check_contextual_refinement(
    layer: &CertifiedLayer,
    client: &ClientProgram,
    contexts: &[EnvContext],
    fuel: u64,
) -> Result<Obligation, LayerError> {
    let extended = layer.module.install(&layer.underlay)?;
    let mut cases_checked = 0;
    let mut cases_skipped = 0;
    for (ci, env) in contexts.iter().enumerate() {
        // [[P ⊕ M]]_{L′}(E)
        let lower_machine =
            ConcurrentMachine::new(extended.clone(), layer.focused.clone(), env.clone())
                .with_fuel(fuel);
        let lower = match lower_machine.run(client) {
            Ok(out) => out,
            Err(e) if e.is_invalid_context() => {
                cases_skipped += 1;
                continue;
            }
            Err(e) => return Err(LayerError::Machine(e)),
        };
        // Abstract through R and replay for the overlay run.
        let expected = layer.relation.abstracted(&lower.log).ok_or_else(|| {
            LayerError::Mismatch {
                expected: format!("log in domain of {}", layer.relation.name()),
                found: lower.log.to_string(),
                context: format!("soundness, context #{ci}"),
            }
        })?;
        let upper_env = replay_env_set(&expected, &layer.focused);
        let upper_machine =
            ConcurrentMachine::new(layer.overlay.clone(), layer.focused.clone(), upper_env)
                .with_fuel(fuel);
        let upper = match upper_machine.run(client) {
            Ok(out) => out,
            Err(e) if e.is_invalid_context() => {
                cases_skipped += 1;
                continue;
            }
            Err(e) => return Err(LayerError::Machine(e)),
        };
        if !layer.relation.holds(&lower.log, &upper.log) {
            return Err(LayerError::Mismatch {
                expected: format!("related high-level log (R = {})", layer.relation.name()),
                found: format!("low: {} / high: {}", lower.log, upper.log),
                context: format!("soundness, context #{ci}"),
            });
        }
        if lower.rets != upper.rets {
            return Err(LayerError::Mismatch {
                expected: format!("{:?}", upper.rets),
                found: format!("{:?}", lower.rets),
                context: format!("soundness return values, context #{ci}"),
            });
        }
        cases_checked += 1;
    }
    Ok(Obligation {
        rule: Rule::Soundness,
        description: format!(
            "∀P fixed: [[P ⊕ {}]]_{}{} ⊑_{} [[P]]_{}{}",
            layer.module.name,
            layer.underlay.name,
            layer.focused,
            layer.relation.name(),
            layer.overlay.name,
            layer.focused
        ),
        cases_checked,
        cases_skipped,
        cases_reduced: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculus::{check_fun, CheckOptions};
    use crate::contexts::ContextGen;
    use crate::event::EventKind;
    use crate::id::PidSet;
    use crate::layer::{LayerInterface, PrimSpec};
    use crate::machine::MachineError;
    use crate::module::{Lang, Module};
    use crate::sim::SimRelation;
    use crate::val::Val;

    fn low_iface() -> LayerInterface {
        LayerInterface::builder("L-low")
            .prim(PrimSpec::atomic("raw", |ctx, _| {
                ctx.emit(EventKind::Prim("raw".into(), vec![]));
                Ok(Val::Unit)
            }))
            .build()
    }

    fn high_iface() -> LayerInterface {
        LayerInterface::builder("L-high")
            .prim(PrimSpec::atomic("nice", |ctx, _| {
                ctx.emit(EventKind::Prim("nice".into(), vec![]));
                Ok(Val::Unit)
            }))
            .build()
    }

    fn raw_to_nice() -> SimRelation {
        SimRelation::per_event("raw→nice", |e| match &e.kind {
            EventKind::Prim(n, _) if n == "raw" => {
                vec![crate::event::Event::prim(e.pid, "nice", vec![])]
            }
            _ => vec![e.clone()],
        })
    }

    fn nice_module() -> Module {
        use crate::layer::{PrimCtx, PrimRun, PrimStep, SubCall};
        struct Nice {
            sub: Option<SubCall>,
        }
        impl PrimRun for Nice {
            fn resume(&mut self, ctx: &mut PrimCtx<'_>) -> Result<PrimStep, MachineError> {
                if self.sub.is_none() {
                    self.sub = Some(SubCall::start(ctx, "raw", vec![])?);
                }
                match self.sub.as_mut().unwrap().step(ctx)? {
                    Some(_) => Ok(PrimStep::Done(Val::Unit)),
                    None => Ok(PrimStep::Query),
                }
            }
        }
        Module::new("M-nice").with_fn(
            Lang::Native,
            PrimSpec::strategy("nice", true, |_, _| Box::new(Nice { sub: None })),
        )
    }

    #[test]
    fn soundness_holds_for_certified_wrapper() {
        let gen = ContextGen::new(vec![Pid(0), Pid(1)]).with_schedule_len(3);
        let layer = check_fun(
            &low_iface(),
            &nice_module(),
            &high_iface(),
            &raw_to_nice(),
            Pid(0),
            &CheckOptions::new(gen.contexts()),
        )
        .unwrap();
        let mut client = ClientProgram::new();
        client.insert(Pid(0), vec![("nice".to_owned(), vec![]); 2]);
        let ob =
            check_contextual_refinement(&layer, &client, &gen.contexts(), 100_000).unwrap();
        assert!(ob.cases_checked > 0);
        assert_eq!(ob.rule, Rule::Soundness);
    }

    #[test]
    fn soundness_for_two_focused_participants() {
        use crate::calculus::pcomp;
        let gen = ContextGen::new(vec![Pid(0), Pid(1)]).with_schedule_len(3);
        let opts = CheckOptions::new(gen.contexts());
        let l0 = check_fun(
            &low_iface(),
            &nice_module(),
            &high_iface(),
            &raw_to_nice(),
            Pid(0),
            &opts,
        )
        .unwrap();
        let l1 = check_fun(
            &low_iface(),
            &nice_module(),
            &high_iface(),
            &raw_to_nice(),
            Pid(1),
            &opts,
        )
        .unwrap();
        let both = pcomp(&l0, &l1).unwrap();
        assert_eq!(both.focused, PidSet::from_pids([Pid(0), Pid(1)]));
        let mut client = ClientProgram::new();
        client.insert(Pid(0), vec![("nice".to_owned(), vec![])]);
        client.insert(Pid(1), vec![("nice".to_owned(), vec![])]);
        let ob =
            check_contextual_refinement(&both, &client, &gen.contexts(), 100_000).unwrap();
        assert!(ob.cases_checked > 0);
    }

    #[test]
    fn behaviors_collects_logs_per_context() {
        let gen = ContextGen::new(vec![Pid(0), Pid(1)]).with_schedule_len(2);
        let mut client = ClientProgram::new();
        client.insert(Pid(0), vec![("raw".to_owned(), vec![])]);
        let logs = behaviors(
            &low_iface(),
            &PidSet::singleton(Pid(0)),
            &client,
            &gen.contexts(),
            100_000,
        )
        .unwrap();
        assert_eq!(logs.len(), gen.contexts().len());
        for log in logs {
            assert_eq!(log.count_by(Pid(0)), 1);
        }
    }
}
