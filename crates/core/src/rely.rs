//! Rely and guarantee conditions.
//!
//! "Each layer interface also specifies its set of valid environment
//! contexts. This validity corresponds to a generalized version of the
//! 'rely' (or 'assume') condition in rely-guarantee-based reasoning. Each
//! layer interface can also provide its own 'guarantee' condition. These
//! conditions are simply expressed as **invariants over the global log**"
//! (§2; Fig. 7: `Inv ∈ Log → Prop`, `R, G ∈ Id ⇀ Inv`).
//!
//! The `Compat` rule (Fig. 9) requires inclusions `L[B].R(i) ⊆ L[A].G(i)`.
//! In Coq these are proved; here inclusion is *checked*: structurally (a
//! named invariant implies itself) and empirically (on a probe suite of
//! logs gathered during verification). A failed inclusion rejects the
//! composition, mirroring an unprovable side condition.

use std::fmt;
use std::sync::Arc;

use crate::id::Pid;
use crate::log::Log;

/// A named invariant over the global log, parameterized by the participant
/// it concerns (Fig. 7: `Inv ∈ Log → Prop`).
#[derive(Clone)]
pub struct Invariant {
    name: String,
    #[allow(clippy::type_complexity)]
    check: Arc<dyn Fn(Pid, &Log) -> bool + Send + Sync>,
}

impl Invariant {
    /// Creates a named invariant from a predicate on `(pid, log)`.
    pub fn new<F>(name: &str, check: F) -> Self
    where
        F: Fn(Pid, &Log) -> bool + Send + Sync + 'static,
    {
        Self {
            name: name.to_owned(),
            check: Arc::new(check),
        }
    }

    /// The trivially true invariant.
    pub fn trivial() -> Self {
        Self::new("true", |_, _| true)
    }

    /// The invariant's name. Two invariants with the same name are treated
    /// as the same condition by structural inclusion checking, so names
    /// must be chosen to identify the condition globally (e.g.
    /// `"fair-sched(m=4)"`, `"ticket-lock-released-within(3)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the invariant for participant `pid` on `log`.
    pub fn holds(&self, pid: Pid, log: &Log) -> bool {
        (self.check)(pid, log)
    }
}

impl fmt::Debug for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Invariant({})", self.name)
    }
}

/// A conjunction of named invariants — the form both rely and guarantee
/// conditions take.
#[derive(Debug, Clone, Default)]
pub struct Conditions {
    invariants: Vec<Invariant>,
}

impl Conditions {
    /// The empty (trivially true) condition set.
    pub fn none() -> Self {
        Self::default()
    }

    /// A condition set from invariants.
    pub fn from_invariants<I: IntoIterator<Item = Invariant>>(invariants: I) -> Self {
        Self {
            invariants: invariants.into_iter().collect(),
        }
    }

    /// Adds an invariant.
    pub fn with(mut self, inv: Invariant) -> Self {
        self.invariants.push(inv);
        self
    }

    /// The invariants, in insertion order.
    pub fn invariants(&self) -> &[Invariant] {
        &self.invariants
    }

    /// Whether every invariant holds for `pid` on `log`.
    pub fn holds(&self, pid: Pid, log: &Log) -> bool {
        self.invariants.iter().all(|inv| inv.holds(pid, log))
    }

    /// The first violated invariant for `pid` on `log`, if any.
    pub fn first_violation(&self, pid: Pid, log: &Log) -> Option<&Invariant> {
        self.invariants.iter().find(|inv| !inv.holds(pid, log))
    }

    /// Conjunction of two condition sets (used by `Compat` for
    /// `L[A∪B].R = L[A].R ∩ L[B].R` — intersecting the *sets of valid
    /// contexts* conjoins the invariants).
    pub fn and(&self, other: &Conditions) -> Conditions {
        let mut invariants = self.invariants.clone();
        for inv in &other.invariants {
            if !invariants.iter().any(|i| i.name() == inv.name()) {
                invariants.push(inv.clone());
            }
        }
        Conditions { invariants }
    }

    /// Checks that `self` implies `other`, i.e. every invariant of `other`
    /// is entailed by `self`. The check is structural (same-named
    /// invariants entail each other) with an empirical fallback: on every
    /// probe log (and probe pid), whenever `self` holds, `other` must hold.
    ///
    /// Returns the name of the first invariant of `other` that could not
    /// be established, or `None` if the implication was established.
    pub fn implies(&self, other: &Conditions, probes: &ProbeSuite) -> Option<String> {
        for needed in &other.invariants {
            let structural = self.invariants.iter().any(|i| i.name() == needed.name());
            if structural {
                continue;
            }
            // Empirical check on the probe suite.
            let empirically_ok = probes.iter().all(|(pid, log)| {
                !self.holds(*pid, log) || needed.holds(*pid, log)
            });
            let nontrivial = !probes.is_empty();
            if !(empirically_ok && nontrivial) {
                return Some(needed.name().to_owned());
            }
        }
        None
    }

    /// Names of all invariants.
    pub fn names(&self) -> Vec<&str> {
        self.invariants.iter().map(|i| i.name()).collect()
    }
}

/// A suite of `(pid, log)` probes used for empirical implication checking.
/// Verifiers collect the logs reached while checking a layer and reuse them
/// as probes for `Compat` side conditions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbeSuite {
    probes: Vec<(Pid, Log)>,
}

impl ProbeSuite {
    /// An empty probe suite.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a probe.
    pub fn push(&mut self, pid: Pid, log: Log) {
        self.probes.push((pid, log));
    }

    /// Number of probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Iterates over probes.
    pub fn iter(&self) -> impl Iterator<Item = &(Pid, Log)> {
        self.probes.iter()
    }

    /// Merges another suite into this one.
    pub fn extend_from(&mut self, other: &ProbeSuite) {
        self.probes.extend(other.probes.iter().cloned());
    }
}

/// Per-layer rely + guarantee conditions, both maps from participant to
/// invariants over the log. We use one uniform condition set applied to
/// each participant (the paper's `Id ⇀ Inv` maps are uniform for all the
/// objects built with the toolkit; per-pid refinement can be expressed
/// inside an invariant's predicate).
#[derive(Debug, Clone, Default)]
pub struct RelyGuarantee {
    /// The rely condition `R`: what the layer assumes of its environment
    /// contexts.
    pub rely: Conditions,
    /// The guarantee condition `G`: what the layer's own participants
    /// promise about the log after each of their steps.
    pub guarantee: Conditions,
}

impl RelyGuarantee {
    /// The trivial rely/guarantee pair.
    pub fn none() -> Self {
        Self::default()
    }

    /// Creates a rely/guarantee pair.
    pub fn new(rely: Conditions, guarantee: Conditions) -> Self {
        Self { rely, guarantee }
    }

    /// The compatibility side condition of the `Compat` rule (Fig. 9) in
    /// one direction: this layer's guarantee must imply `other`'s rely.
    /// Returns the name of the first unestablished invariant, if any.
    pub fn guarantee_implies_rely_of(
        &self,
        other: &RelyGuarantee,
        probes: &ProbeSuite,
    ) -> Option<String> {
        self.guarantee.implies(&other.rely, probes)
    }

    /// Composition for `Compat` (Fig. 9): `R = R_A ∩ R_B`,
    /// `G = G_A ∪ G_B`. For invariant sets, intersecting valid-context
    /// sets conjoins rely invariants; the union of guarantees keeps the
    /// invariants common to both (what *every* member of `A ∪ B` can be
    /// relied on to uphold).
    pub fn compose_parallel(&self, other: &RelyGuarantee) -> RelyGuarantee {
        let rely = self.rely.and(&other.rely);
        // G_A ∪ G_B as sets of allowed behaviours = intersection of the
        // invariant conjunctions: keep invariants present in both.
        let guarantee = Conditions::from_invariants(
            self.guarantee
                .invariants()
                .iter()
                .filter(|i| {
                    other
                        .guarantee
                        .invariants()
                        .iter()
                        .any(|j| j.name() == i.name())
                })
                .cloned(),
        );
        RelyGuarantee { rely, guarantee }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev_count_le(name: &str, n: usize) -> Invariant {
        Invariant::new(name, move |pid, log: &Log| log.count_by(pid) <= n)
    }

    #[test]
    fn invariant_evaluates() {
        let inv = ev_count_le("le2", 2);
        let mut log = Log::new();
        assert!(inv.holds(Pid(0), &log));
        for _ in 0..3 {
            log.append(Event::prim(Pid(0), "x", vec![]));
        }
        assert!(!inv.holds(Pid(0), &log));
    }

    #[test]
    fn conditions_conjoin() {
        let c = Conditions::none()
            .with(ev_count_le("le5", 5))
            .with(ev_count_le("le1", 1));
        let mut log = Log::new();
        log.append(Event::prim(Pid(0), "x", vec![]));
        log.append(Event::prim(Pid(0), "x", vec![]));
        assert!(!c.holds(Pid(0), &log));
        assert_eq!(c.first_violation(Pid(0), &log).unwrap().name(), "le1");
    }

    #[test]
    fn structural_implication_by_name() {
        let g = Conditions::none().with(ev_count_le("le3", 3));
        let r = Conditions::none().with(ev_count_le("le3", 3));
        assert_eq!(g.implies(&r, &ProbeSuite::new()), None);
    }

    #[test]
    fn empirical_implication_needs_probes() {
        let g = Conditions::none().with(ev_count_le("le1", 1));
        let r = Conditions::none().with(ev_count_le("le5", 5));
        // No probes: cannot establish le1 ⇒ le5 empirically.
        assert_eq!(g.implies(&r, &ProbeSuite::new()), Some("le5".to_owned()));
        // With probes on which the implication holds, it is accepted.
        let mut probes = ProbeSuite::new();
        probes.push(Pid(0), Log::new());
        let mut log = Log::new();
        log.append(Event::prim(Pid(0), "x", vec![]));
        probes.push(Pid(0), log);
        assert_eq!(g.implies(&r, &probes), None);
    }

    #[test]
    fn empirical_implication_detects_counterexample() {
        let g = Conditions::none().with(Invariant::trivial());
        let r = Conditions::none().with(ev_count_le("le0", 0));
        let mut probes = ProbeSuite::new();
        let mut log = Log::new();
        log.append(Event::prim(Pid(0), "x", vec![]));
        probes.push(Pid(0), log);
        assert_eq!(g.implies(&r, &probes), Some("le0".to_owned()));
    }

    #[test]
    fn parallel_composition_of_conditions() {
        let a = RelyGuarantee::new(
            Conditions::none().with(ev_count_le("rA", 5)),
            Conditions::none()
                .with(ev_count_le("common", 5))
                .with(ev_count_le("gA", 5)),
        );
        let b = RelyGuarantee::new(
            Conditions::none().with(ev_count_le("rB", 5)),
            Conditions::none().with(ev_count_le("common", 5)),
        );
        let c = a.compose_parallel(&b);
        let rely_names = c.rely.names();
        assert!(rely_names.contains(&"rA") && rely_names.contains(&"rB"));
        assert_eq!(c.guarantee.names(), vec!["common"]);
    }

    #[test]
    fn and_deduplicates_by_name() {
        let a = Conditions::none().with(ev_count_le("x", 1));
        let b = Conditions::none().with(ev_count_le("x", 1));
        assert_eq!(a.and(&b).invariants().len(), 1);
    }
}
