//! Replay functions: reconstructing shared state from the global log.
//!
//! "Such functions that reconstruct the current shared state from the log
//! are called *replay functions*" (§2). A replay function folds over the
//! log; an impossible transition (e.g. pulling a location that is not free,
//! Fig. 8) makes replay — and hence the machine — *stuck*, which is how the
//! model detects data races and protocol violations.
//!
//! This module provides the replay functions shared by the whole toolkit:
//!
//! * [`replay_shared`] — `R_shared` of Fig. 8: value + ownership status of a
//!   shared memory location under the push/pull discipline;
//! * [`replay_ticket`] — `R_ticket` of §4.1: the ticket-lock state computed
//!   from `FAI_t`/`inc_n` events;
//! * [`replay_atomic_lock`] — holder of an *atomic* lock (the lifted `acq`/
//!   `rel` events of `L1`, §2);
//! * [`replay_atomic_queue`] — contents of an atomic shared queue (§4.2).
//!
//! Object-specific replay functions (MCS lock, scheduler, queuing lock,
//! condition variables, IPC) live in `ccal-objects` next to their layers.

use std::fmt;

use crate::event::{Event, EventKind};
use crate::id::{Loc, Pid};
use crate::log::Log;
use crate::val::Val;

/// Error raised when a log cannot be replayed: some event is impossible in
/// the state reconstructed from its prefix. In the paper this is the replay
/// function returning `None`, i.e. the machine "gets stuck" (Fig. 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Index of the offending event in the log.
    pub at: usize,
    /// Rendering of the offending event.
    pub event: String,
    /// Why the event is impossible here.
    pub reason: String,
}

impl ReplayError {
    /// Creates a replay error for event index `at`.
    pub fn new(at: usize, event: &Event, reason: impl Into<String>) -> Self {
        Self {
            at,
            event: event.to_string(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay stuck at event #{} ({}): {}",
            self.at, self.event, self.reason
        )
    }
}

impl std::error::Error for ReplayError {}

/// Ownership status of a shared memory location (Fig. 6: `free` or
/// `own c`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ownership {
    /// No participant owns the location; it may be pulled.
    #[default]
    Free,
    /// The location is owned by the given participant, which may access and
    /// push it.
    Owned(Pid),
}

/// The state of one shared location under the push/pull memory model:
/// its current (last pushed) value and its ownership status.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SharedCell {
    /// Last value pushed to the location; `Val::Undef` initially (Fig. 8
    /// line 3).
    pub value: Val,
    /// Current ownership.
    pub owner: Ownership,
}

/// `R_shared` (Fig. 8): replays the push/pull events for location `b`,
/// returning its value and ownership status.
///
/// # Errors
///
/// Returns [`ReplayError`] — the machine is stuck — if some participant
/// pulls a non-free location or pushes a location it does not own. "If a
/// program tries to pull a not-free location, or tries to access or push to
/// a location not owned by the current CPU, a data race may occur and the
/// machine gets stuck" (§3.1).
///
/// # Examples
///
/// ```
/// use ccal_core::event::{Event, EventKind};
/// use ccal_core::id::{Loc, Pid};
/// use ccal_core::log::Log;
/// use ccal_core::replay::{replay_shared, Ownership};
/// use ccal_core::val::Val;
///
/// let log = Log::from_events([
///     Event::new(Pid(0), EventKind::Pull(Loc(1))),
///     Event::new(Pid(0), EventKind::Push(Loc(1), Val::Int(7))),
/// ]);
/// let cell = replay_shared(&log, Loc(1))?;
/// assert_eq!(cell.value, Val::Int(7));
/// assert_eq!(cell.owner, Ownership::Free);
/// # Ok::<(), ccal_core::replay::ReplayError>(())
/// ```
pub fn replay_shared(log: &Log, b: Loc) -> Result<SharedCell, ReplayError> {
    let mut cell = SharedCell::default();
    for (at, e) in log.iter().enumerate() {
        match &e.kind {
            EventKind::Pull(loc) if *loc == b => match cell.owner {
                Ownership::Free => cell.owner = Ownership::Owned(e.pid),
                Ownership::Owned(_) => {
                    return Err(ReplayError::new(at, e, "pull of a non-free location"));
                }
            },
            EventKind::Push(loc, v) if *loc == b => match cell.owner {
                Ownership::Owned(owner) if owner == e.pid => {
                    cell.value = v.clone();
                    cell.owner = Ownership::Free;
                }
                _ => {
                    return Err(ReplayError::new(at, e, "push of a location not owned"));
                }
            },
            _ => {}
        }
    }
    Ok(cell)
}

/// The abstract ticket-lock state at a location: the "next ticket" counter
/// `t` and the "now serving" counter `n` (§2, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TicketState {
    /// Next ticket to hand out: number of `FAI_t` events so far.
    pub next: u64,
    /// Now-serving counter: number of `inc_n` events so far.
    pub serving: u64,
}

impl TicketState {
    /// Whether the lock is currently free (every handed-out ticket has been
    /// served).
    pub fn is_free(&self) -> bool {
        self.next == self.serving
    }
}

/// `R_ticket` (§4.1): counts `FAI_t` and `inc_n` events for the lock at
/// `b`. Never stuck — the hardware fetch-and-increment primitives are total.
pub fn replay_ticket(log: &Log, b: Loc) -> TicketState {
    let mut st = TicketState::default();
    for e in log.iter() {
        match e.kind {
            EventKind::FaiT(loc) if loc == b => st.next += 1,
            EventKind::IncN(loc) if loc == b => st.serving += 1,
            _ => {}
        }
    }
    st
}

/// The ticket obtained by `pid`'s most recent `FAI_t(b)` event: the number
/// of `FAI_t(b)` events strictly before it. `None` if `pid` has not fetched
/// a ticket. This is the "ticket number `t` calculated by a function that
/// counts the fetch-and-increment events in `l`" (§2).
pub fn my_ticket(log: &Log, b: Loc, pid: Pid) -> Option<u64> {
    let mut count = 0_u64;
    let mut mine = None;
    for e in log.iter() {
        if let EventKind::FaiT(loc) = e.kind {
            if loc == b {
                if e.pid == pid {
                    mine = Some(count);
                }
                count += 1;
            }
        }
    }
    mine
}

/// `R_lock`: replays the *atomic* lock events `acq`/`rel` of a lifted
/// interface (§2's `L1`), returning the current holder.
///
/// # Errors
///
/// Stuck if a participant acquires a held lock or releases a lock it does
/// not hold — these are protocol violations the lifted interface rules out.
pub fn replay_atomic_lock(log: &Log, b: Loc) -> Result<Option<Pid>, ReplayError> {
    let mut holder: Option<Pid> = None;
    for (at, e) in log.iter().enumerate() {
        match e.kind {
            EventKind::Acq(loc) | EventKind::AcqQ(loc) if loc == b => {
                if holder.is_some() {
                    return Err(ReplayError::new(at, e, "acquire of a held lock"));
                }
                holder = Some(e.pid);
            }
            EventKind::Rel(loc) | EventKind::RelQ(loc) if loc == b => {
                if holder != Some(e.pid) {
                    return Err(ReplayError::new(at, e, "release by a non-holder"));
                }
                holder = None;
            }
            _ => {}
        }
    }
    Ok(holder)
}

/// Replays atomic shared-queue events (§4.2), returning the queue contents
/// (front first). A `deQ` of an empty queue is *not* stuck: the paper's
/// `σ_deQ_t` returns `-1` for an empty queue.
pub fn replay_atomic_queue(log: &Log, q: crate::id::QId) -> Vec<Val> {
    replay_queue_events(log.iter(), q)
}

/// Event-stream worker for [`replay_atomic_queue`], so prefix replays (e.g.
/// [`deq_result`]) can fold over a truncated iterator without materializing
/// a prefix `Log`.
fn replay_queue_events<'a>(
    events: impl Iterator<Item = &'a Event>,
    q: crate::id::QId,
) -> Vec<Val> {
    let mut items: Vec<Val> = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::EnQ(qid, v) if *qid == q => items.push(v.clone()),
            EventKind::DeQ(qid) if *qid == q
                && !items.is_empty() => {
                    items.remove(0);
                }
            _ => {}
        }
    }
    items
}

/// The value returned by the `deQ` event at log index `at` (the element at
/// the front of the queue just before it), or `Val::Int(-1)` if the queue
/// was empty — matching `σ_deQ_t` (§4.2).
///
/// # Panics
///
/// Panics if `at` is out of bounds or the event at `at` is not a `DeQ`.
pub fn deq_result(log: &Log, at: usize) -> Val {
    let e = &log[at];
    let q = match e.kind {
        EventKind::DeQ(q) => q,
        _ => panic!("deq_result called on non-deQ event {e}"),
    };
    let items = replay_queue_events(log.iter().take(at), q);
    items.into_iter().next().unwrap_or(Val::Int(-1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::QId;

    fn ev(pid: u32, kind: EventKind) -> Event {
        Event::new(Pid(pid), kind)
    }

    #[test]
    fn shared_replay_tracks_value_and_ownership() {
        let log = Log::from_events([
            ev(0, EventKind::Pull(Loc(1))),
            ev(0, EventKind::Push(Loc(1), Val::Int(5))),
            ev(1, EventKind::Pull(Loc(1))),
        ]);
        let cell = replay_shared(&log, Loc(1)).unwrap();
        assert_eq!(cell.value, Val::Int(5));
        assert_eq!(cell.owner, Ownership::Owned(Pid(1)));
    }

    #[test]
    fn racy_pull_gets_stuck() {
        let log = Log::from_events([
            ev(0, EventKind::Pull(Loc(1))),
            ev(1, EventKind::Pull(Loc(1))),
        ]);
        let err = replay_shared(&log, Loc(1)).unwrap_err();
        assert_eq!(err.at, 1);
        assert!(err.reason.contains("non-free"));
    }

    #[test]
    fn push_without_ownership_gets_stuck() {
        let log = Log::from_events([ev(0, EventKind::Push(Loc(1), Val::Int(1)))]);
        assert!(replay_shared(&log, Loc(1)).is_err());
    }

    #[test]
    fn push_by_wrong_owner_gets_stuck() {
        let log = Log::from_events([
            ev(0, EventKind::Pull(Loc(1))),
            ev(1, EventKind::Push(Loc(1), Val::Int(1))),
        ]);
        assert!(replay_shared(&log, Loc(1)).is_err());
    }

    #[test]
    fn other_locations_do_not_interfere() {
        let log = Log::from_events([
            ev(0, EventKind::Pull(Loc(1))),
            ev(1, EventKind::Pull(Loc(2))),
        ]);
        assert!(replay_shared(&log, Loc(1)).is_ok());
        assert!(replay_shared(&log, Loc(2)).is_ok());
    }

    #[test]
    fn ticket_replay_counts_events() {
        let b = Loc(0);
        let log = Log::from_events([
            ev(1, EventKind::FaiT(b)),
            ev(2, EventKind::FaiT(b)),
            ev(1, EventKind::IncN(b)),
        ]);
        let st = replay_ticket(&log, b);
        assert_eq!(st, TicketState { next: 2, serving: 1 });
        assert!(!st.is_free());
    }

    #[test]
    fn my_ticket_is_fai_position() {
        let b = Loc(0);
        let log = Log::from_events([
            ev(1, EventKind::FaiT(b)),
            ev(2, EventKind::FaiT(b)),
        ]);
        assert_eq!(my_ticket(&log, b, Pid(1)), Some(0));
        assert_eq!(my_ticket(&log, b, Pid(2)), Some(1));
        assert_eq!(my_ticket(&log, b, Pid(3)), None);
    }

    #[test]
    fn atomic_lock_replay_tracks_holder() {
        let b = Loc(0);
        let log = Log::from_events([ev(1, EventKind::Acq(b))]);
        assert_eq!(replay_atomic_lock(&log, b).unwrap(), Some(Pid(1)));
        let log = Log::from_events([ev(1, EventKind::Acq(b)), ev(1, EventKind::Rel(b))]);
        assert_eq!(replay_atomic_lock(&log, b).unwrap(), None);
    }

    #[test]
    fn atomic_lock_replay_rejects_double_acquire_and_foreign_release() {
        let b = Loc(0);
        let log = Log::from_events([ev(1, EventKind::Acq(b)), ev(2, EventKind::Acq(b))]);
        assert!(replay_atomic_lock(&log, b).is_err());
        let log = Log::from_events([ev(1, EventKind::Acq(b)), ev(2, EventKind::Rel(b))]);
        assert!(replay_atomic_lock(&log, b).is_err());
    }

    #[test]
    fn queue_replay_is_fifo() {
        let q = QId(0);
        let log = Log::from_events([
            ev(1, EventKind::EnQ(q, Val::Int(10))),
            ev(2, EventKind::EnQ(q, Val::Int(20))),
            ev(1, EventKind::DeQ(q)),
        ]);
        assert_eq!(replay_atomic_queue(&log, q), vec![Val::Int(20)]);
        assert_eq!(deq_result(&log, 2), Val::Int(10));
    }

    #[test]
    fn deq_of_empty_queue_returns_minus_one() {
        let q = QId(0);
        let log = Log::from_events([ev(1, EventKind::DeQ(q))]);
        assert_eq!(replay_atomic_queue(&log, q), Vec::<Val>::new());
        assert_eq!(deq_result(&log, 0), Val::Int(-1));
    }
}
