//! Strategy simulation `≤_R` (Definition 2.1) and its bounded checker.
//!
//! "We say a strategy `φ` is simulated by another strategy `φ′` with a
//! simulation relation `R` ... if, and only if, for any two related
//! environmental event sequences and any two related initial logs, ... for
//! any log `l` produced by `φ`, there must exist a log `l′` that can be
//! produced by `φ′` such that `l` and `l′` also satisfy `R`" (Def. 2.1).
//!
//! # Executable relations
//!
//! Simulation relations are represented as *event abstraction functions*
//! mapping each lower-layer event to zero or more upper-layer events —
//! exactly how the paper describes `R₁`: "mapping events `i.acq` to
//! `i.hold`, `i.rel` to `i.inc_n` and other lock-related events to empty
//! ones" (§2). Abstraction functions compose, giving an executable `R ∘ S`
//! for the `Vcomp` and `Wk` rules. Scheduling events are always dropped:
//! layers have different schedulers (the §2 walkthrough's `φ′hs` vs `φhs`),
//! and what must be preserved is "the order of lock acquiring and the
//! resulting shared state".
//!
//! # The bounded check
//!
//! [`check_prim_refinement`] checks Def. 2.1 for one lower computation /
//! upper strategy pair: for every generated environment context and
//! argument vector it (1) runs the lower machine, (2) abstracts the lower
//! log through `R` to obtain the *related* environmental event sequence,
//! (3) replays that environment for the upper machine via [`replay_env`],
//! (4) runs the upper strategy under it, and (5) compares logs modulo `R`
//! and return values. Contexts that violate the rely condition are skipped
//! — the definition only quantifies over valid contexts.
//!
//! # Parallel exploration and state dedup
//!
//! The `(context × argument-vector)` grid is explored by the unified
//! exploration kernel ([`crate::explore::Kernel`]): a shared atomic work
//! queue over `std::thread::scope` workers ([`SimOptions::workers`],
//! overridable with `CCAL_WORKERS`), folding outcomes in case order so the
//! result — the evidence, the probe order, and the *first* failure — is
//! bit-identical to the serial exploration. Additionally, symmetric
//! schedules are
//! checked once: many contexts differ only in environment interleaving
//! and abstract to the same replayed upper event sequence, so the upper
//! run is memoized keyed on that sequence plus the argument vector
//! ([`SimOptions::dedup`]). Cache hits replay the recorded outcome, which
//! keeps the evidence (case counts, probes) identical to a dedup-free run.
//!
//! Symmetrically, *lower* runs are shared across contexts whose schedule
//! scripts agree on the prefix the run actually consumes
//! ([`SimOptions::prefix_share`], see [`crate::prefix`]): the grid is a
//! schedule-prefix trie, and each distinct consumed prefix is executed
//! once. With [`SimOptions::deep_share`] the trie additionally stores a
//! forked [`LayerMachine`] snapshot at *every* environment query point —
//! inside the setup phase, at each query of the checked call, and at its
//! pre-flush return — so a new context resumes from its deepest
//! snapshotted ancestor and executes only the schedule suffix
//! ([`crate::prefix::SnapshotTrie`]). Sharing never changes the verdict,
//! the first failure, or the evidence, because every shared outcome is
//! exactly what re-execution would have produced.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::env::EnvContext;
use crate::event::Event;
use crate::explore::Case;
use crate::id::Pid;
use crate::layer::{LayerInterface, PrimRun};
use crate::log::Log;
use crate::machine::LayerMachine;
use crate::rely::ProbeSuite;
use crate::strategy::{FnStrategy, StrategyMove};
use crate::val::Val;

type EventAbsFn = dyn Fn(&Event) -> Vec<Event> + Send + Sync;
type LogAbsFn = dyn Fn(&Log) -> Option<Log> + Send + Sync;

#[derive(Clone)]
enum RelStage {
    PerEvent(Arc<EventAbsFn>),
    Whole(Arc<LogAbsFn>),
}

/// An executable simulation relation `R` between a lower (concrete) and an
/// upper (abstract) layer's logs.
///
/// Internally a relation is a *chain* of abstraction stages; composition
/// ([`SimRelation::then`]) concatenates chains instead of nesting
/// closures, so an `n`-deep `Vcomp` tower abstracts a log in `n` passes
/// with no intermediate closure or relation clones.
#[derive(Clone)]
pub struct SimRelation {
    name: String,
    stages: Arc<Vec<RelStage>>,
}

/// Composed relations, memoized by `(lower name, upper name)`. Relation
/// names identify their relations globally (the same convention
/// `crate::rely::Conditions` uses for structural implication), so `Vcomp`
/// towers that re-compose the same pair — once per certified primitive —
/// reuse one chain.
fn composed_relations() -> &'static Mutex<HashMap<(String, String), SimRelation>> {
    static CACHE: OnceLock<Mutex<HashMap<(String, String), SimRelation>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl SimRelation {
    /// The identity relation `id`: logs must agree event-for-event
    /// (ignoring scheduling events). The empty stage chain — abstraction
    /// is a reference-count bump on sched-free logs.
    pub fn identity() -> Self {
        Self {
            name: "id".to_owned(),
            stages: Arc::new(Vec::new()),
        }
    }

    /// A relation given by a per-event abstraction function. Return an
    /// empty vector to erase an event, one or more events to translate it.
    /// Scheduling events are dropped automatically and never reach `f`.
    pub fn per_event<F>(name: &str, f: F) -> Self
    where
        F: Fn(&Event) -> Vec<Event> + Send + Sync + 'static,
    {
        Self {
            name: name.to_owned(),
            stages: Arc::new(vec![RelStage::PerEvent(Arc::new(f))]),
        }
    }

    /// A relation given by a whole-log abstraction function (for relations
    /// that are not per-event, e.g. ones merging event *sequences*).
    /// Returning `None` means the lower log is outside the relation's
    /// domain. The function receives the lower log with scheduling events
    /// already removed and must produce an upper log without scheduling
    /// events.
    pub fn whole_log<F>(name: &str, f: F) -> Self
    where
        F: Fn(&Log) -> Option<Log> + Send + Sync + 'static,
    {
        Self {
            name: name.to_owned(),
            stages: Arc::new(vec![RelStage::Whole(Arc::new(f))]),
        }
    }

    /// The relation's name, e.g. `"R1"`, `"id"`, `"R1 ∘ R2"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies the abstraction to a lower log, producing the related upper
    /// log (without scheduling events), or `None` if outside the domain.
    pub fn abstracted(&self, lower: &Log) -> Option<Log> {
        let mut cur = lower.without_sched();
        for stage in self.stages.iter() {
            cur = match stage {
                RelStage::PerEvent(f) => {
                    let mut out = Vec::with_capacity(cur.len());
                    for e in cur.iter() {
                        out.extend(f(e));
                    }
                    Log::from_events(out)
                }
                RelStage::Whole(f) => f(&cur)?,
            };
        }
        Some(cur)
    }

    /// Whether `R(lower, upper)` holds: the abstraction of `lower` equals
    /// `upper` modulo scheduling events.
    pub fn holds(&self, lower: &Log, upper: &Log) -> bool {
        match self.abstracted(lower) {
            Some(abs) => abs == upper.without_sched(),
            None => false,
        }
    }

    /// Relation composition `self ∘ next` in diagram order: `self` relates
    /// `L₁→L₂` and `next` relates `L₂→L₃`; the result relates `L₁→L₃`.
    /// Used by the `Vcomp` and `Wk` rules (Fig. 9). Concatenates the stage
    /// chains and memoizes the result by name pair.
    pub fn then(&self, next: &SimRelation) -> SimRelation {
        let key = (self.name.clone(), next.name.clone());
        if let Some(hit) = composed_relations()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            return hit.clone();
        }
        let stages: Vec<RelStage> = self
            .stages
            .iter()
            .chain(next.stages.iter())
            .cloned()
            .collect();
        let composed = SimRelation {
            name: format!("{} ∘ {}", self.name, next.name),
            stages: Arc::new(stages),
        };
        composed_relations()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, composed.clone());
        composed
    }
}

impl fmt::Debug for SimRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimRelation({})", self.name)
    }
}

/// Builds the environment context that *replays* a given expected log for
/// an upper-layer run: the scheduler hands control to the author of the
/// next expected event (or to `focused` when the next event is the focused
/// participant's own), and each environment player emits exactly its
/// expected events. This constructs the "related environmental event
/// sequence" required by Def. 2.1.
pub fn replay_env(expected: &Log, focused: Pid) -> EnvContext {
    replay_env_set(expected, &crate::id::PidSet::singleton(focused))
}

/// Generalization of [`replay_env`] to a focused *set*.
///
/// The derivation is *per participant*: the scheduler walks the expected
/// event sequence and hands control to the author of the earliest expected
/// event that its author has not yet emitted (comparing per-author event
/// counts). This tolerates the benign "interleavings shuffling" of the
/// log-lift pattern (§3.3) — a participant whose critical section emitted
/// several events in one turn has simply covered several of its expected
/// events early. When every expected event is covered, the scheduler falls
/// back to fair round-robin over the focused set so trailing silent work
/// can finish.
pub fn replay_env_set(expected: &Log, focused: &crate::id::PidSet) -> EnvContext {
    let expected = expected.without_sched();
    // Next author to schedule, as a pure function of the current log.
    let sched_expected = expected.clone();
    let fallback: Vec<Pid> = focused.iter().collect();
    let scheduler = FnStrategy::new("replay-sched", move |log: &Log| {
        let mut emitted: std::collections::BTreeMap<Pid, usize> = std::collections::BTreeMap::new();
        for e in log.iter().filter(|e| !e.is_sched()) {
            *emitted.entry(e.pid).or_default() += 1;
        }
        let mut seen: std::collections::BTreeMap<Pid, usize> = std::collections::BTreeMap::new();
        let mut target = None;
        for e in sched_expected.iter() {
            let i = seen.entry(e.pid).or_default();
            if *i >= emitted.get(&e.pid).copied().unwrap_or(0) {
                target = Some(e.pid);
                break;
            }
            *i += 1;
        }
        let target = target.unwrap_or_else(|| {
            let turn = log.iter().filter(|e| e.is_sched()).count();
            fallback[turn % fallback.len()]
        });
        StrategyMove::Emit(vec![Event::sched(target)])
    });
    let mut env = EnvContext::new(Arc::new(scheduler));
    let mut env_pids: Vec<Pid> = expected
        .iter()
        .map(|e| e.pid)
        .filter(|p| !focused.contains(*p))
        .collect();
    env_pids.sort_unstable();
    env_pids.dedup();
    for pid in env_pids {
        let mine: Vec<Event> = expected.iter().filter(|e| e.pid == pid).cloned().collect();
        let player = FnStrategy::new(&format!("replay-{pid}"), move |log: &Log| {
            let n = log.count_by(pid);
            match mine.get(n) {
                Some(e) => StrategyMove::Emit(vec![e.clone()]),
                None => StrategyMove::idle(),
            }
        });
        env = env.with_player(pid, Arc::new(player));
    }
    env
}

/// One counterexample to a simulation check.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// The lower computation's name.
    pub lower: String,
    /// The upper strategy's name.
    pub upper: String,
    /// Human-readable description of the failing case (context index,
    /// arguments).
    pub case: String,
    /// The lower log produced.
    pub lower_log: Log,
    /// The upper log produced (empty if the upper run failed).
    pub upper_log: Log,
    /// Why the case fails.
    pub reason: String,
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation {} ≤ {} fails on {}: {}\n  lower: {}\n  upper: {}",
            self.lower, self.upper, self.case, self.reason, self.lower_log, self.upper_log
        )
    }
}

/// Evidence gathered by a successful simulation check.
#[derive(Debug, Clone, Default)]
pub struct SimEvidence {
    /// Number of (context × argument) cases that were executed.
    pub cases_checked: usize,
    /// Number of cases skipped because the environment context violated
    /// the rely condition (invalid contexts).
    pub cases_skipped: usize,
    /// Number of cases skipped by the partial-order reduction: their
    /// context is trace-equivalent to a lower-indexed one that was
    /// checked (see [`crate::por`]).
    pub cases_reduced: usize,
    /// Logs reached during the check, reusable as probes for `Compat`
    /// side conditions.
    pub probes: ProbeSuite,
}

/// Options controlling a simulation check.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Step budget per machine run.
    pub fuel: u64,
    /// Whether return values must be equal (disable for void-like pairs
    /// with different conventions).
    pub compare_rets: bool,
    /// Setup calls run on *both* machines before the checked invocation —
    /// the executable form of Def. 2.1's quantification over related
    /// initial logs (e.g. a lock `rel` is checked from states reached by
    /// a preceding `acq`).
    pub setup: Vec<(String, Vec<Val>)>,
    /// Worker threads exploring the case grid. Defaults to
    /// [`crate::par::default_workers`] (the `CCAL_WORKERS` environment
    /// variable, else the machine's available parallelism). `1` explores
    /// serially; any value yields bit-identical results.
    pub workers: usize,
    /// Memoize upper-machine runs keyed on the replayed abstract event
    /// sequence and argument vector, so symmetric schedules — contexts
    /// whose logs abstract to the same upper environment — are explored
    /// once. Never changes the verdict or the evidence; on by default.
    pub dedup: bool,
    /// Skip contexts marked [`EnvContext::is_por_equivalent`] by the
    /// partial-order reduction — trace-equivalent to a lower-indexed
    /// context whose verdict subsumes theirs. Defaults to
    /// [`crate::por::por_enabled`] (on unless `CCAL_POR=0`).
    pub por: bool,
    /// Share lower-machine runs across contexts whose schedule scripts
    /// agree on the consumed prefix (see [`crate::prefix`]): the lower run
    /// is a deterministic function of the schedule slots it actually reads,
    /// so a grid of `n^L` contexts executes only one run per *distinct
    /// consumed prefix*. Never changes the verdict or the evidence.
    /// Defaults to [`crate::prefix::prefix_share_enabled`] (on unless
    /// `CCAL_PREFIX_SHARE=0`).
    pub prefix_share: bool,
    /// Additionally share *mid-run* snapshots of the lower machine, forked
    /// at every environment query point ([`crate::prefix::SnapshotTrie`]):
    /// a long multi-query primitive (e.g. a spinning `acq`) executes once
    /// along each distinct schedule path, and every context that diverges
    /// later forks the deepest snapshot and replays only its suffix.
    /// Effective only when `prefix_share` is on; never changes the verdict
    /// or the evidence. Defaults to
    /// [`crate::prefix::prefix_deep_enabled`] (on unless
    /// `CCAL_PREFIX_DEEP=0`).
    pub deep_share: bool,
    /// Run ClightX primitives on the compiled bytecode tier
    /// ([`crate::prefix::bytecode_effective`]): modules are slot-resolved
    /// and flattened once at lower time, and each instantiation executes
    /// the flat code instead of walking the statement tree. The tier is
    /// bit-identical to the interpreter — same events, queries, return
    /// values, and error strings — so this is purely a performance knob.
    /// Defaults to [`crate::prefix::bytecode_enabled`] (on unless
    /// `CCAL_BYTECODE=0`). The checker installs the choice process-wide
    /// for the duration of the check when it differs from the
    /// environment default, so concurrent checks with *conflicting*
    /// explicit tiers must be serialized by the caller.
    pub bytecode: bool,
    /// Capacity cap on the query-point snapshot trie, with the same
    /// deepest-first eviction as `upper_cache_cap`
    /// ([`crate::prefix::SnapshotTrie`]): snapshots only save work, so
    /// eviction costs re-execution, never correctness.
    pub snapshot_cap: usize,
    /// Capacity cap on the upper-run memo table
    /// ([`crate::explore::BoundedCache`]). When an insert would exceed the
    /// cap, the deepest entries — the longest replayed event sequences,
    /// the least likely to recur — are evicted first, so shallow entries
    /// that many later cases re-derive survive the squeeze instead of
    /// being dropped by a whole-table clear. The memory footprint stays
    /// bounded on huge grids while verdicts and evidence are unchanged —
    /// a miss merely re-runs the deterministic upper machine.
    pub upper_cache_cap: usize,
    /// Restrict exploration to the half-open window `[lo, hi)` of the
    /// flat `context·nargs+arg` case grid (see
    /// [`crate::explore::ExploreOptions::window`]). `None` — the default —
    /// explores the whole grid. Disjoint ascending windows fold to the
    /// same verdict, case accounting and index-least first failure as a
    /// whole-grid check; the certification service uses this to lease
    /// grid chunks to shard processes.
    pub window: Option<(usize, usize)>,
    /// Caller-owned warm state ([`SimWarm`]) shared across checker
    /// invocations: the prefix memo, query-point snapshot trie and
    /// upper-run cache survive the call instead of being dropped with the
    /// kernel. `None` — the default — runs cold. Soundness requires every
    /// invocation sharing one handle to check the *same* computation over
    /// the same schedule-key family; the certification service keys warm
    /// handles (and families) by the unit's content fingerprint.
    pub warm: Option<SimWarm>,
    /// Convergence deduplication ([`crate::explore::Kernel::converged`]):
    /// fingerprint the lower machine canonically at every query-point cut
    /// and complete any context whose remaining schedule suffix was
    /// already explored from a fingerprint-identical state, re-grafting
    /// the cached suffix log onto the current prefix so evidence stays
    /// byte-identical. Collapses *diamonds* (schedules that interleave
    /// replay-commuting events differently but converge to one state),
    /// which prefix sharing by construction cannot. Defaults to
    /// [`crate::prefix::state_dedup_effective`] (on unless
    /// `CCAL_STATE_DEDUP=0`).
    pub state_dedup: bool,
}

impl SimOptions {
    /// Default capacity of the upper-run memo table.
    pub const DEFAULT_UPPER_CACHE_CAP: usize = 4096;
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            fuel: LayerMachine::DEFAULT_FUEL,
            compare_rets: true,
            setup: Vec::new(),
            workers: crate::par::default_workers(),
            dedup: true,
            por: crate::por::por_enabled(),
            prefix_share: crate::prefix::prefix_share_enabled(),
            deep_share: crate::prefix::prefix_deep_enabled(),
            bytecode: crate::prefix::bytecode_enabled(),
            snapshot_cap: crate::prefix::DEFAULT_SNAPSHOT_CAP,
            upper_cache_cap: Self::DEFAULT_UPPER_CACHE_CAP,
            window: None,
            warm: None,
            state_dedup: crate::prefix::state_dedup_effective(),
        }
    }
}

impl SimOptions {
    /// Sets the worker-thread count (1 = serial exploration).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables or disables upper-run memoization.
    #[must_use]
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Enables or disables the partial-order reduction.
    #[must_use]
    pub fn with_por(mut self, por: bool) -> Self {
        self.por = por;
        self
    }

    /// Enables or disables prefix-sharing of lower-machine runs.
    #[must_use]
    pub fn with_prefix_share(mut self, prefix_share: bool) -> Self {
        self.prefix_share = prefix_share;
        self
    }

    /// Enables or disables query-point snapshot sharing (effective only
    /// when `prefix_share` is on).
    #[must_use]
    pub fn with_deep_share(mut self, deep_share: bool) -> Self {
        self.deep_share = deep_share;
        self
    }

    /// Enables or disables the compiled ClightX bytecode tier.
    #[must_use]
    pub fn with_bytecode(mut self, bytecode: bool) -> Self {
        self.bytecode = bytecode;
        self
    }

    /// Caps the query-point snapshot trie (minimum 1 snapshot).
    #[must_use]
    pub fn with_snapshot_cap(mut self, cap: usize) -> Self {
        self.snapshot_cap = cap.max(1);
        self
    }

    /// Caps the upper-run memo table (minimum 1 entry).
    #[must_use]
    pub fn with_upper_cache_cap(mut self, cap: usize) -> Self {
        self.upper_cache_cap = cap.max(1);
        self
    }

    /// Restricts exploration to the flat case-index window `[lo, hi)`.
    #[must_use]
    pub fn with_window(mut self, lo: usize, hi: usize) -> Self {
        self.window = Some((lo, hi));
        self
    }

    /// Attaches caller-owned warm state shared across invocations.
    #[must_use]
    pub fn with_warm(mut self, warm: SimWarm) -> Self {
        self.warm = Some(warm);
        self
    }

    /// Enables or disables convergence deduplication of lower runs.
    #[must_use]
    pub fn with_state_dedup(mut self, state_dedup: bool) -> Self {
        self.state_dedup = state_dedup;
        self
    }
}

/// The memoized outcome of a case's upper half — a deterministic function
/// of the replayed abstract event sequence and the argument vector, which
/// makes it memoizable across symmetric schedules. The memo is bounded
/// with deepest-first eviction: entries are keyed at the length of the
/// replayed sequence, so the long, unlikely-to-recur runs are dropped
/// before the short ones many cases share.
#[derive(Clone)]
enum UpperRun {
    Skipped,
    Failed { reason: String, upper_log: Log },
    Done { upper_log: Log, upper_ret: Val },
}

/// The memoized outcome of a case's lower half — a deterministic function
/// of the schedule prefix the run consumes and the argument vector, which
/// makes it shareable across contexts with a common consumed prefix via
/// [`crate::prefix::PrefixMemo`]. Reasons deliberately omit the case
/// description: the per-case wrapper re-attaches it.
#[derive(Clone)]
enum LowerRun {
    Skipped,
    Failed { lower_log: Log, reason: String },
    Done { lower_log: Log, lower_ret: Val },
}

/// Mid-run snapshots of the lower machine, keyed by consumed schedule
/// prefix in one [`crate::prefix::SnapshotTrie`]. The inner index is
/// **content-derived** (see [`check_prim_refinement`]'s `inner_of`): a
/// hash of the completed call history plus — for call-scoped states — the
/// call in flight and its arguments. Several checks sharing one semantic
/// family ([`crate::fingerprint::ShareKey`]) may interleave their entries
/// in one trie, and equal inners then imply equal computations, so a
/// setup call of one unit can resume the *checked* call of another (and
/// vice versa) when they run the same primitive from the same history.
///
/// Four states, three inner domains:
/// * `Inflight` — mid-call at an environment query point (needs
///   [`PrimRun::fork_run`]; stored only with deep sharing on). Valid in
///   both phases: histories matching implies the same machine state.
/// * `Done` under a **done** inner — the machine right after the call
///   returned, *before* any trailing environment flush. Also
///   phase-interchangeable: a setup phase never flushes between calls,
///   and the checked phase flushes only after its return point.
/// * `Done` under a **flush** inner — the machine mid-flush (one entry
///   per delivered slot, deep sharing only). Checked phase *only*: a
///   setup continuation would deliver those environment turns under the
///   next call instead, so resuming one mid-setup would skip turns.
/// * `Abort`/`PostSetup` under the setup **phase** inner — the sealed
///   outcome of a whole setup phase (skip/failure, or the machine after
///   every setup call).
#[allow(clippy::large_enum_variant)]
enum SimSnap {
    Abort {
        outcome: LowerRun,
    },
    PostSetup {
        machine: LayerMachine,
    },
    Inflight {
        machine: LayerMachine,
        run: Box<dyn PrimRun>,
    },
    Done {
        machine: LayerMachine,
        ret: Val,
    },
}

impl crate::prefix::ForkSnapshot for SimSnap {
    fn fork(&self) -> Option<Self> {
        Some(match self {
            SimSnap::Abort { outcome } => SimSnap::Abort {
                outcome: outcome.clone(),
            },
            SimSnap::PostSetup { machine } => SimSnap::PostSetup {
                machine: machine.fork(),
            },
            SimSnap::Inflight { machine, run } => SimSnap::Inflight {
                machine: machine.fork(),
                run: run.fork_run()?,
            },
            SimSnap::Done { machine, ret } => SimSnap::Done {
                machine: machine.fork(),
                ret: ret.clone(),
            },
        })
    }
}

/// Caller-owned warm exploration state for [`check_prim_refinement`]: the
/// schedule-prefix memo, the query-point snapshot trie and the upper-run
/// cache, kept alive across checker invocations instead of dropped with
/// each call's kernel. A long-running certification service holds one
/// handle per distinct check configuration (keyed by content
/// fingerprint), so back-to-back certifications of the same unit share
/// prefixes and replay memoized runs.
///
/// Sharing one handle between checks of *different* semantic families is
/// unsound: memo and snapshot entries are keyed by `(schedule family,
/// script prefix, inner index)` only, so the caller must guarantee that
/// equal families imply equal lower-machine explorations. The
/// certification service keys warm handles by
/// [`crate::fingerprint::ShareKey`] — the content identity of the lower
/// machine, the participant, the context-grid structure and the
/// exploration-relevant options — under which checks of *different* units
/// may legitimately share one handle: the content-derived inner indices
/// (setup history + called primitive + arguments) keep their computations
/// apart, and the upper-run cache keys carry a per-check signature for
/// the same reason. With `CCAL_SHARE_SEMANTIC=0` the service falls back
/// to pinning one handle per unit fingerprint.
#[derive(Clone, Default)]
pub struct SimWarm {
    memo: Arc<crate::prefix::PrefixMemo<LowerRun>>,
    snaps: Arc<std::sync::OnceLock<Arc<crate::prefix::SnapshotTrie<SimSnap>>>>,
    upper: Arc<std::sync::OnceLock<Arc<crate::explore::BoundedCache<(Log, u128), UpperRun>>>>,
    conv: Arc<
        std::sync::OnceLock<
            Arc<crate::explore::BoundedCache<crate::explore::ConvKey, (LowerRun, usize, usize)>>,
        >,
    >,
}

/// Point-in-time accounting for a [`SimWarm`] handle, surfaced
/// per-request by the certification service (deltas between two
/// snapshots give per-request hits/evictions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmStats {
    /// Memoized lower-run outcomes resident in the prefix memo.
    pub memo_entries: usize,
    /// Query-point snapshots resident in the trie.
    pub snapshot_entries: usize,
    /// Snapshot-trie lookups answered since the handle was created.
    pub snapshot_hits: u64,
    /// Snapshot-trie entries evicted (deepest-first) since creation.
    pub snapshot_evictions: u64,
    /// Upper-run cache entries resident.
    pub upper_entries: usize,
    /// Upper-run cache lookups answered since creation.
    pub upper_hits: u64,
    /// Upper-run cache entries evicted (deepest-first) since creation.
    pub upper_evictions: u64,
}

impl SimWarm {
    /// A fresh, empty warm handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// The snapshot trie, created at `cap` on first use (later calls keep
    /// the first capacity — one handle serves one check configuration).
    fn snaps(&self, cap: usize) -> Arc<crate::prefix::SnapshotTrie<SimSnap>> {
        self.snaps
            .get_or_init(|| Arc::new(crate::prefix::SnapshotTrie::new(cap)))
            .clone()
    }

    /// The upper-run cache, created at `cap` on first use.
    fn upper(&self, cap: usize) -> Arc<crate::explore::BoundedCache<(Log, u128), UpperRun>> {
        self.upper
            .get_or_init(|| Arc::new(crate::explore::BoundedCache::new(cap)))
            .clone()
    }

    /// The convergence cache, created at `cap` on first use.
    fn conv(
        &self,
        cap: usize,
    ) -> Arc<crate::explore::BoundedCache<crate::explore::ConvKey, (LowerRun, usize, usize)>> {
        self.conv
            .get_or_init(|| Arc::new(crate::explore::BoundedCache::new(cap)))
            .clone()
    }

    /// Current accounting for this handle.
    pub fn stats(&self) -> WarmStats {
        let mut stats = WarmStats {
            memo_entries: self.memo.len(),
            ..WarmStats::default()
        };
        if let Some(snaps) = self.snaps.get() {
            stats.snapshot_entries = snaps.len();
            stats.snapshot_hits = snaps.hits();
            stats.snapshot_evictions = snaps.evictions();
        }
        if let Some(upper) = self.upper.get() {
            stats.upper_entries = upper.len();
            stats.upper_hits = upper.hits();
            stats.upper_evictions = upper.evictions();
        }
        stats
    }
}

impl fmt::Debug for SimWarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimWarm").field("stats", &self.stats()).finish()
    }
}

/// Checks Def. 2.1 for a lower computation against an upper strategy:
/// `⟦lower_prim⟧_{lower_iface[pid]} ≤_R σ_upper`.
///
/// For every environment context and argument vector, runs the lower
/// machine, derives the related upper environment by abstraction + replay,
/// runs the upper machine, and compares. Invalid contexts (rely violations,
/// unfair scheduling) are skipped and counted.
///
/// # Errors
///
/// Returns the first [`SimFailure`] encountered.
#[allow(clippy::too_many_arguments)] // mirrors the judgment's components
pub fn check_prim_refinement(
    lower_iface: &LayerInterface,
    lower_prim: &str,
    upper_iface: &LayerInterface,
    upper_prim: &str,
    relation: &SimRelation,
    pid: Pid,
    contexts: &[EnvContext],
    arg_vectors: &[Vec<Val>],
    opts: &SimOptions,
) -> Result<SimEvidence, Box<SimFailure>> {
    // Install the execution-tier choice for the duration of the check.
    // Strategy closures read the tier at instantiation time
    // ([`crate::prefix::bytecode_effective`]), so a scoped override is the
    // only way an option chosen *after* layer construction can reach them.
    // Installed only when it differs from the environment default, so
    // checks under default options never perturb an outer override (e.g. a
    // differential harness bracketing a whole checker run).
    let _tier = (opts.bytecode != crate::prefix::bytecode_enabled())
        .then(|| crate::prefix::BytecodeOverride::force(opts.bytecode));
    let fail = |case: String, lower_log: Log, upper_log: Log, reason: String| {
        Box::new(SimFailure {
            lower: format!("{}::{}", lower_iface.name, lower_prim),
            upper: format!("{}::{}", upper_iface.name, upper_prim),
            case,
            lower_log,
            upper_log,
            reason,
        })
    };
    // The upper-run cache: caller-owned (warm) when the options carry a
    // [`SimWarm`] handle, otherwise fresh for this invocation. A warm
    // handle may be shared by every unit of one semantic family — whose
    // upper machines, relations and setups all differ — so the cache key
    // carries a content signature of everything the upper run depends on
    // besides the replayed sequence.
    let upper_cache: Arc<crate::explore::BoundedCache<(Log, u128), UpperRun>> = match &opts.warm {
        Some(w) => w.upper(opts.upper_cache_cap),
        None => Arc::new(crate::explore::BoundedCache::new(opts.upper_cache_cap)),
    };
    let upper_sig: Vec<u128> = arg_vectors
        .iter()
        .map(|args| {
            let mut h = crate::fingerprint::ContentHasher::new();
            h.section("sim.upper-sig");
            h.interface("upper", upper_iface);
            h.str("upper.prim", upper_prim);
            h.str("relation", &relation.name);
            h.u64("pid", u64::from(pid.0));
            h.u64("fuel", opts.fuel);
            h.usize("setup.len", opts.setup.len());
            for (sname, sargs) in &opts.setup {
                h.str("setup.name", sname);
                h.usize("setup.nargs", sargs.len());
                for v in sargs {
                    h.val("setup.arg", v);
                }
            }
            h.usize("nargs", args.len());
            for v in args {
                h.val("arg", v);
            }
            h.finish().0
        })
        .collect();
    let run_upper = |expected: &Log, args: &[Val]| -> UpperRun {
        let upper_env = replay_env(expected, pid);
        let mut upper =
            LayerMachine::new(upper_iface.clone(), pid, upper_env).with_fuel(opts.fuel);
        for (sname, sargs) in &opts.setup {
            match upper.call_prim(sname, sargs) {
                Ok(_) => {}
                Err(e) if e.is_invalid_context() => return UpperRun::Skipped,
                Err(e) => {
                    return UpperRun::Failed {
                        reason: format!("upper setup `{sname}` failed: {e}"),
                        upper_log: upper.log.clone(),
                    };
                }
            }
        }
        match upper.call_prim(upper_prim, args) {
            Ok(upper_ret) => {
                let _ = upper.deliver_env();
                UpperRun::Done {
                    upper_log: upper.log,
                    upper_ret,
                }
            }
            Err(e) if e.is_invalid_context() => UpperRun::Skipped,
            Err(e) => UpperRun::Failed {
                reason: format!("upper run failed: {e}"),
                upper_log: upper.log,
            },
        }
    };
    // The kernel owns the prefix memo and the snapshot trie — warm
    // (caller-owned, surviving this call) when the options carry a
    // [`SimWarm`] handle. Sim's phase accounting distinguishes shared
    // (`Abort`/`PostSetup`/`Return`) from deep (`Setup`/`Call`) snapshot
    // hits, so it resumes via the raw
    // [`crate::explore::Kernel::lookup_snapshot`] and records itself.
    let explore_opts = crate::explore::ExploreOptions {
        workers: opts.workers,
        por: opts.por,
        prefix_share: opts.prefix_share,
        deep_share: opts.deep_share,
        snapshot_cap: opts.snapshot_cap,
        window: opts.window,
        state_dedup: opts.state_dedup,
    };
    let kernel: crate::explore::Kernel<SimSnap, LowerRun> = match &opts.warm {
        Some(w) => crate::explore::Kernel::with_state_conv(
            &explore_opts,
            w.memo.clone(),
            w.snaps(opts.snapshot_cap),
            explore_opts
                .state_dedup
                .then(|| w.conv(opts.snapshot_cap.max(1))),
        ),
        None => crate::explore::Kernel::new(&explore_opts),
    };
    let deep = kernel.deep();
    let sched_consumed =
        |m: &LayerMachine| m.log.iter().filter(|e| e.is_sched()).count();
    // Content-derived inner indices. A memo/trie/convergence entry's inner
    // identifies the *computation* it belongs to — the completed call
    // history plus (for call-scoped states) the call in flight and its
    // arguments — hashed down to a `usize`. Within one check this
    // partitions sub-cases exactly as the old positional indices did;
    // across the checks of one semantic family it is what makes sharing
    // sound: equal inners imply equal deterministic computations, so e.g.
    // a `rel` unit's setup call `acq(l)` resumes the states the `acq`
    // unit's *checked* call stored, and vice versa.
    let inner_of = |tag: &str, history: usize, name: &str, args: &[Val]| -> usize {
        let mut h = crate::fingerprint::ContentHasher::new();
        h.section(tag);
        h.usize("history.len", history);
        for (sname, sargs) in &opts.setup[..history] {
            h.str("call.name", sname);
            h.usize("call.nargs", sargs.len());
            for v in sargs {
                h.val("call.arg", v);
            }
        }
        h.str("call.name", name);
        h.usize("call.nargs", args.len());
        for v in args {
            h.val("call.arg", v);
        }
        h.finish().low64() as usize
    };
    // Setup phase: per-call in-flight and completed-call inners, plus the
    // phase seal (`Abort`/`PostSetup`) keyed over the whole setup list.
    let setup_inflight: Vec<usize> = (0..opts.setup.len())
        .map(|k| inner_of("sim.inner.inflight", k, &opts.setup[k].0, &opts.setup[k].1))
        .collect();
    let setup_done: Vec<usize> = (0..opts.setup.len())
        .map(|k| inner_of("sim.inner.done", k, &opts.setup[k].0, &opts.setup[k].1))
        .collect();
    let phase_inner = inner_of("sim.inner.setup-phase", opts.setup.len(), "", &[]);
    // Checked call, per argument vector: the memo/convergence case inner,
    // the mid-call inner, the pre-flush return inner (phase-
    // interchangeable with a setup call), and the post-flush inner
    // (checked phase only — see [`SimSnap`]).
    let nsetup = opts.setup.len();
    let case_inner: Vec<usize> = arg_vectors
        .iter()
        .map(|args| inner_of("sim.inner.case", nsetup, lower_prim, args))
        .collect();
    let chk_inflight: Vec<usize> = arg_vectors
        .iter()
        .map(|args| inner_of("sim.inner.inflight", nsetup, lower_prim, args))
        .collect();
    let chk_done: Vec<usize> = arg_vectors
        .iter()
        .map(|args| inner_of("sim.inner.done", nsetup, lower_prim, args))
        .collect();
    let chk_flush: Vec<usize> = arg_vectors
        .iter()
        .map(|args| inner_of("sim.inner.flush", nsetup, lower_prim, args))
        .collect();
    // Inserts a query-point snapshot of the checked call for sub-case `ai`.
    let snap_call_point =
        |k: &crate::prefix::ScheduleKey, ai: usize, mach: &LayerMachine, run: &dyn PrimRun| {
            kernel.snapshot(k, chk_inflight[ai], sched_consumed(mach), || {
                Some(SimSnap::Inflight {
                    machine: mach.fork(),
                    run: run.fork_run()?,
                })
            });
        };
    // Runs the setup calls from index `first` on `m` — finishing `inflight`
    // first when resuming a mid-call snapshot — capturing an `Inflight`
    // snapshot at every query point when deep sharing is on and a `Done`
    // snapshot at every completed call (the pre-flush state another unit's
    // *checked* call of the same primitive can resume). Returns the abort
    // outcome when a call skips or fails.
    let run_setup = |m: &mut LayerMachine,
                     first: usize,
                     inflight: Option<Box<dyn PrimRun>>,
                     key: Option<&crate::prefix::ScheduleKey>|
     -> Option<LowerRun> {
        let call_idx = std::cell::Cell::new(first);
        let mut hook = |mach: &LayerMachine, run: &dyn PrimRun| {
            let Some(k) = key else { return };
            kernel.snapshot(k, setup_inflight[call_idx.get()], sched_consumed(mach), || {
                Some(SimSnap::Inflight {
                    machine: mach.fork(),
                    run: run.fork_run()?,
                })
            });
        };
        let seal_call = |m: &LayerMachine, call: usize, ret: &Val| {
            if let Some(k) = key {
                kernel.snapshot(k, setup_done[call], sched_consumed(m), || {
                    Some(SimSnap::Done {
                        machine: m.fork(),
                        ret: ret.clone(),
                    })
                });
            }
        };
        if let Some(run) = inflight {
            let sname = &opts.setup[first].0;
            match m.resume_query(run, &mut hook) {
                Ok(ret) => {
                    seal_call(m, first, &ret);
                    call_idx.set(first + 1);
                }
                Err(e) if e.is_invalid_context() => return Some(LowerRun::Skipped),
                Err(e) => {
                    return Some(LowerRun::Failed {
                        lower_log: m.log.clone(),
                        reason: format!("lower setup `{sname}` failed: {e}"),
                    });
                }
            }
        }
        for (i, (sname, sargs)) in opts.setup.iter().enumerate().skip(call_idx.get()) {
            call_idx.set(i);
            let res = if deep {
                m.call_prim_with_snapshots(sname, sargs, &mut hook)
            } else {
                m.call_prim(sname, sargs)
            };
            match res {
                Ok(ret) => seal_call(m, i, &ret),
                Err(e) if e.is_invalid_context() => return Some(LowerRun::Skipped),
                Err(e) => {
                    return Some(LowerRun::Failed {
                        lower_log: m.log.clone(),
                        reason: format!("lower setup `{sname}` failed: {e}"),
                    });
                }
            }
        }
        None
    };
    // Seals the setup phase at its consumed depth: an `Abort` snapshot for
    // a skip/failure (returned as the per-case outcome), a `PostSetup`
    // snapshot otherwise. A skip/failure is keyed at the matched depth,
    // never 0 — the caller re-caches it per argument index, and a depth-0
    // entry would match scripts that diverge *inside* the setup and owe a
    // different verdict.
    let seal_setup = |m: LayerMachine,
                      early: Option<LowerRun>,
                      key: Option<&crate::prefix::ScheduleKey>|
     -> Result<LayerMachine, (LowerRun, usize)> {
        let consumed = sched_consumed(&m);
        match early {
            Some(outcome) => {
                if let Some(k) = key {
                    let out = outcome.clone();
                    kernel.snapshot(k, phase_inner, consumed, || {
                        Some(SimSnap::Abort { outcome: out })
                    });
                }
                Err((outcome, consumed))
            }
            None => {
                if let Some(k) = key {
                    kernel.snapshot(k, phase_inner, consumed, || {
                        Some(SimSnap::PostSetup { machine: m.fork() })
                    });
                }
                Ok(m)
            }
        }
    };
    // Seals the checked call: a `Done` snapshot at the pre-flush return
    // point on success (phase-interchangeable — another unit's setup call
    // of this primitive can resume it), then the trailing environment
    // flush.
    let finish_call = |lower: &mut LayerMachine,
                       res: Result<Val, crate::machine::MachineError>,
                       key: Option<&crate::prefix::ScheduleKey>,
                       ai: usize|
     -> LowerRun {
        match res {
            Ok(lower_ret) => {
                if let Some(k) = key {
                    kernel.snapshot(k, chk_done[ai], sched_consumed(lower), || {
                        Some(SimSnap::Done {
                            machine: lower.fork(),
                            ret: lower_ret.clone(),
                        })
                    });
                }
                // Flush trailing environment events so handoff-style
                // abstractions (events authored during another
                // participant's turn) are fully delivered before comparing
                // — capturing a deeper `Done` snapshot per flushed slot
                // when deep sharing is on, since the flush prefix is the
                // same for every context agreeing on those slots. These
                // live under the checked-phase-only flush inner: a setup
                // continuation must never resume a post-flush state.
                match key.filter(|_| deep) {
                    Some(k) => {
                        let ret = lower_ret.clone();
                        let _ = lower.deliver_env_each_turn(&mut |m| {
                            kernel.snapshot(k, chk_flush[ai], sched_consumed(m), || {
                                Some(SimSnap::Done {
                                    machine: m.fork(),
                                    ret: ret.clone(),
                                })
                            });
                        });
                    }
                    None => {
                        let _ = lower.deliver_env();
                    }
                }
                LowerRun::Done {
                    lower_log: lower.log.clone(),
                    lower_ret,
                }
            }
            Err(e) if e.is_invalid_context() => LowerRun::Skipped,
            Err(e) => LowerRun::Failed {
                lower_log: lower.log.clone(),
                reason: format!("lower run failed: {e}"),
            },
        }
    };
    // Grafts a convergence donor's suffix log onto the borrower's executed
    // prefix (`m` is parked exactly at the cut), so the evidence a hit
    // returns is byte-identical to the run the borrower would have
    // executed. `donor_cut` is the donor's log length at the same cut.
    let graft_lower = |m: &LayerMachine, donor: LowerRun, donor_cut: usize| -> LowerRun {
        let graft = |donor_log: Log| {
            let mut log = m.log.clone();
            log.append_all(donor_log.suffix_from(donor_cut).cloned());
            log
        };
        match donor {
            LowerRun::Skipped => LowerRun::Skipped,
            LowerRun::Failed { lower_log, reason } => LowerRun::Failed {
                lower_log: graft(lower_log),
                reason,
            },
            LowerRun::Done {
                lower_log,
                lower_ret,
            } => LowerRun::Done {
                lower_log: graft(lower_log),
                lower_ret,
            },
        }
    };
    // Drives the checked call for sub-case `ai`: `start` launches (or
    // resumes) the call under an abort-capable query-point hook that
    // captures `Call` snapshots (when `snap`) and probes the convergence
    // cache. A convergence hit aborts at the cut and grafts the donor's
    // suffix; a completed run seeds the cache at every cut it passed
    // through. Returns the outcome plus the consumed schedule depth —
    // the *donor's* total depth on a hit, so memoization happens at the
    // depth the full run actually reads.
    let drive_checked = |lower: &mut LayerMachine,
                         env: &EnvContext,
                         ai: usize,
                         snap: bool,
                         start: &mut dyn FnMut(
        &mut LayerMachine,
        &mut dyn FnMut(&LayerMachine, &dyn PrimRun) -> bool,
    )
        -> Result<Option<Val>, crate::machine::MachineError>|
     -> (LowerRun, usize) {
        let key = kernel.share_key(env);
        let conv_key = kernel.conv_key(env);
        // Work executed before this point was already counted (at setup
        // time for a fresh run, by the snapshot's producer for a fork).
        let pre = lower.steps_taken() + lower.log.len() as u64;
        let mut hit: Option<(LowerRun, usize, usize)> = None;
        let mut probes: Vec<(crate::fingerprint::ContentHash, usize, usize)> = Vec::new();
        let res = {
            let mut hook = |mach: &LayerMachine, run: &dyn PrimRun| -> bool {
                if snap {
                    if let Some(k) = key {
                        snap_call_point(k, ai, mach, run);
                    }
                }
                if let Some(k) = conv_key {
                    let consumed = sched_consumed(mach);
                    if let Some(fp) = mach.conv_fingerprint(run) {
                        if let Some(h) = kernel.converged(k, case_inner[ai], consumed, fp) {
                            hit = Some(h);
                            return true;
                        }
                        probes.push((fp, consumed, mach.log.len()));
                    }
                }
                false
            };
            start(lower, &mut hook)
        };
        let (outcome, consumed) = match res {
            Ok(None) => {
                // Converged: the machine is parked at the cut; reuse the
                // donor's verdict with the donor's suffix re-grafted onto
                // this run's prefix, at the donor's consumed depth.
                let (donor, donor_cut, donor_consumed) =
                    hit.expect("an aborted lower call implies a convergence hit");
                (graft_lower(lower, donor, donor_cut), donor_consumed)
            }
            res => {
                let res = res.map(|v| v.expect("non-aborted call returns a value"));
                let outcome = finish_call(lower, res, key, ai);
                let consumed = sched_consumed(lower);
                if let Some(k) = conv_key {
                    for (fp, cut_consumed, cut_len) in probes {
                        kernel.converge_record(
                            k,
                            case_inner[ai],
                            cut_consumed,
                            fp,
                            cut_len,
                            consumed,
                            outcome.clone(),
                        );
                    }
                }
                (outcome, consumed)
            }
        };
        crate::prefix::record_steps(lower.steps_taken() + lower.log.len() as u64 - pre);
        (outcome, consumed)
    };
    // Executes the lower half of a case, resuming the setup phase from the
    // deepest stored snapshot. Returns the outcome plus the total consumed
    // schedule prefix length.
    let exec_lower = |env: &EnvContext, ai: usize, args: &[Val]| -> (LowerRun, usize) {
        let key = kernel.share_key(env);
        let fresh =
            || LayerMachine::new(lower_iface.clone(), pid, env.clone()).with_fuel(opts.fuel);
        let mut lower = if opts.setup.is_empty() {
            fresh()
        } else {
            // Resume the most-progressed stored setup state: the sealed
            // phase first, then per-call states last call first, completed
            // (`Done`) before in-flight. By determinism a sealed or
            // completed state matching `env`'s script *is* the run `env`
            // would execute, so progress order never loses schedule depth.
            // The per-call inners are exactly the ones another unit's
            // checked call of the same primitive populates, which is how a
            // warm family shares state across units.
            'setup: {
                if let Some(k) = key {
                    match kernel.lookup_snapshot(k, phase_inner) {
                        Some((depth, SimSnap::Abort { outcome })) => {
                            crate::prefix::record_shared();
                            return (outcome, depth);
                        }
                        Some((_, SimSnap::PostSetup { machine })) => {
                            // Fork at the divergence point: the snapshot's
                            // log was produced under a script agreeing with
                            // `env`'s on every slot it consumed, so
                            // resuming under `env` is identical to having
                            // run setup under it.
                            crate::prefix::record_shared();
                            break 'setup machine.fork_with_env(env.clone());
                        }
                        _ => {}
                    }
                    for call in (0..opts.setup.len()).rev() {
                        if let Some((_, SimSnap::Done { machine, .. })) =
                            kernel.lookup_snapshot(k, setup_done[call])
                        {
                            // Finish the remaining calls from the completed
                            // call's pre-flush state, counting only the
                            // suffix work.
                            crate::prefix::record_shared();
                            let mut m = machine.fork_with_env(env.clone());
                            let pre = m.steps_taken() + m.log.len() as u64;
                            let early = run_setup(&mut m, call + 1, None, key);
                            crate::prefix::record_steps(
                                m.steps_taken() + m.log.len() as u64 - pre,
                            );
                            match seal_setup(m, early, key) {
                                Ok(m) => break 'setup m,
                                Err(out) => return out,
                            }
                        }
                        if let Some((_, SimSnap::Inflight { machine, run })) =
                            kernel.lookup_snapshot(k, setup_inflight[call])
                        {
                            // Resume the in-flight setup call from its
                            // query point and finish the remaining calls.
                            crate::prefix::record_deep();
                            let mut m = machine.fork_with_env(env.clone());
                            let pre = m.steps_taken() + m.log.len() as u64;
                            let early = run_setup(&mut m, call, Some(run), key);
                            crate::prefix::record_steps(
                                m.steps_taken() + m.log.len() as u64 - pre,
                            );
                            match seal_setup(m, early, key) {
                                Ok(m) => break 'setup m,
                                Err(out) => return out,
                            }
                        }
                    }
                }
                let mut m = fresh();
                let early = run_setup(&mut m, 0, None, key);
                crate::prefix::record_steps(m.steps_taken() + m.log.len() as u64);
                match seal_setup(m, early, key) {
                    Ok(m) => m,
                    Err(out) => return out,
                }
            }
        };
        drive_checked(
            &mut lower,
            env,
            ai,
            deep,
            &mut |m, hook| m.call_prim_ctl(lower_prim, args, hook),
        )
    };
    // 1. Run the lower machine — once per distinct consumed schedule
    // prefix and argument vector when sharing is on; every context whose
    // script extends a memoized prefix replays the recorded outcome, and
    // contexts that agree only up to some snapshot's cut point fork it and
    // execute just the schedule suffix.
    let run_lower = |env: &EnvContext, ai: usize, args: &[Val]| -> LowerRun {
        let Some(k) = kernel.share_key(env) else {
            return exec_lower(env, ai, args).0;
        };
        if let Some(hit) = kernel.cached(k, case_inner[ai]) {
            return hit;
        }
        let resumed = 'hit: {
            // Progress-order walk: a completed call (post-flush first,
            // then pre-flush) beats an in-flight one. Under deterministic
            // execution, any completion entry whose consumed prefix
            // matches this script *is* the run this script would produce,
            // so no deeper mid-call state can disagree with it.
            for &inner in &[chk_flush[ai], chk_done[ai]] {
                if let Some((_, SimSnap::Done { machine, ret })) =
                    kernel.lookup_snapshot(k, inner)
                {
                    crate::prefix::record_shared();
                    let mut lower = machine.fork_with_env(env.clone());
                    let pre = lower.steps_taken() + lower.log.len() as u64;
                    if deep {
                        let r = ret.clone();
                        let _ = lower.deliver_env_each_turn(&mut |m| {
                            kernel.snapshot(k, chk_flush[ai], sched_consumed(m), || {
                                Some(SimSnap::Done {
                                    machine: m.fork(),
                                    ret: r.clone(),
                                })
                            });
                        });
                    } else {
                        let _ = lower.deliver_env();
                    }
                    crate::prefix::record_steps(
                        lower.steps_taken() + lower.log.len() as u64 - pre,
                    );
                    break 'hit Some((
                        LowerRun::Done {
                            lower_log: lower.log.clone(),
                            lower_ret: ret,
                        },
                        sched_consumed(&lower),
                    ));
                }
            }
            if let Some((_, SimSnap::Inflight { machine, run })) =
                kernel.lookup_snapshot(k, chk_inflight[ai])
            {
                crate::prefix::record_deep();
                let mut lower = machine.fork_with_env(env.clone());
                let mut inflight = Some(run);
                break 'hit Some(drive_checked(
                    &mut lower,
                    env,
                    ai,
                    true,
                    &mut |m, hook| {
                        m.resume_query_ctl(
                            inflight.take().expect("the call resumes exactly once"),
                            hook,
                        )
                    },
                ));
            }
            None
        };
        let (outcome, consumed) = resumed.unwrap_or_else(|| exec_lower(env, ai, args));
        kernel.memoize(k, case_inner[ai], consumed, outcome.clone());
        outcome
    };
    let nargs = arg_vectors.len();
    let explored = kernel.explore("sim", contexts, nargs, |ci, ai| {
        let env = &contexts[ci];
        let args = &arg_vectors[ai];
        let case = format!("context #{ci}, args #{ai} {args:?}");
        // A failing case carries the forensics payload — the witness lower
        // log, the reason, the case description — alongside the failure.
        let failed = |case: String, lower_log: Log, upper_log: Log, reason: String| {
            let (log, r, detail) = (lower_log.clone(), reason.clone(), case.clone());
            Case::failed(fail(case, lower_log, upper_log, reason), log, r, detail)
        };
        let (lower_log, lower_ret) = match run_lower(env, ai, args) {
            LowerRun::Skipped => return Case::Skipped,
            LowerRun::Failed { lower_log, reason } => {
                return failed(case, lower_log, Log::new(), reason);
            }
            LowerRun::Done {
                lower_log,
                lower_ret,
            } => (lower_log, lower_ret),
        };
        // 2. Abstract the lower log to the related upper event sequence.
        let expected = match relation.abstracted(&lower_log) {
            Some(l) => l,
            None => {
                return failed(
                    case,
                    lower_log.clone(),
                    Log::new(),
                    format!("lower log outside domain of {}", relation.name),
                );
            }
        };
        // 3–4. Replay it as the upper environment and run the upper
        // strategy — memoized on (expected sequence, argument vector)
        // when dedup is on, since the upper run depends on nothing else.
        let upper_run = if opts.dedup {
            let key = (expected.clone(), upper_sig[ai]);
            match upper_cache.get(&key) {
                Some(r) => r,
                None => {
                    let r = run_upper(&expected, args);
                    // Keyed at the replayed sequence's length: on a full
                    // table the deepest (longest-sequence) entries are
                    // evicted first, so the short entries symmetric
                    // schedules keep re-deriving survive the squeeze.
                    upper_cache.insert(key, expected.len(), r.clone());
                    r
                }
            }
        } else {
            run_upper(&expected, args)
        };
        match upper_run {
            UpperRun::Skipped => Case::Skipped,
            UpperRun::Failed { reason, upper_log } => failed(case, lower_log, upper_log, reason),
            UpperRun::Done {
                upper_log,
                upper_ret,
            } => {
                // 5. Compare logs modulo R — `expected` *is* the
                // abstraction of the lower log, so `R(lower, upper)`
                // reduces to one comparison — and return values.
                if expected != upper_log.without_sched() {
                    return failed(
                        case,
                        lower_log,
                        upper_log,
                        format!("logs not related by {}", relation.name),
                    );
                }
                if opts.compare_rets && lower_ret != upper_ret {
                    return failed(
                        case,
                        lower_log,
                        upper_log,
                        format!("return values differ: {lower_ret} vs {upper_ret}"),
                    );
                }
                Case::Checked((lower_log, upper_log))
            }
        }
    });
    if let Some(f) = explored.failure {
        return Err(f);
    }
    let mut evidence = SimEvidence {
        cases_checked: explored.cases_checked,
        cases_skipped: explored.cases_skipped,
        cases_reduced: explored.cases_reduced,
        probes: ProbeSuite::default(),
    };
    for (lower_log, upper_log) in explored.checked {
        evidence.probes.push(pid, lower_log);
        evidence.probes.push(pid, upper_log);
    }
    Ok(evidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::id::Loc;
    use crate::layer::PrimSpec;
    use crate::strategy::RoundRobinScheduler;

    fn emit_iface(name: &str, kind_of: fn(Loc) -> EventKind) -> LayerInterface {
        LayerInterface::builder(name)
            .prim(PrimSpec::atomic("op", move |ctx, args| {
                let b = args[0].as_loc()?;
                ctx.emit(kind_of(b));
                Ok(Val::Unit)
            }))
            .build()
    }

    fn rr_ctx() -> Vec<EnvContext> {
        vec![EnvContext::new(Arc::new(RoundRobinScheduler::over_domain(2)))]
    }

    #[test]
    fn identity_relation_holds_on_equal_logs() {
        let r = SimRelation::identity();
        let mut a = Log::new();
        a.append(Event::sched(Pid(0)));
        a.append(Event::prim(Pid(0), "x", vec![]));
        let b = a.without_sched();
        assert!(r.holds(&a, &b));
        assert!(r.holds(&a, &a));
    }

    #[test]
    fn per_event_relation_translates() {
        let r = SimRelation::per_event("hold→acq", |e| match e.kind {
            EventKind::Hold(b) => vec![Event::new(e.pid, EventKind::Acq(b))],
            EventKind::GetN(_) | EventKind::FaiT(_) => vec![],
            _ => vec![e.clone()],
        });
        let lower = Log::from_events([
            Event::new(Pid(1), EventKind::FaiT(Loc(0))),
            Event::new(Pid(1), EventKind::GetN(Loc(0))),
            Event::new(Pid(1), EventKind::Hold(Loc(0))),
        ]);
        let upper = Log::from_events([Event::new(Pid(1), EventKind::Acq(Loc(0)))]);
        assert!(r.holds(&lower, &upper));
        assert!(!r.holds(&lower, &lower));
    }

    #[test]
    fn composition_chains_abstractions() {
        let r1 = SimRelation::per_event("a→b", |e| match &e.kind {
            EventKind::Prim(n, _) if n == "a" => vec![Event::prim(e.pid, "b", vec![])],
            _ => vec![e.clone()],
        });
        let r2 = SimRelation::per_event("b→c", |e| match &e.kind {
            EventKind::Prim(n, _) if n == "b" => vec![Event::prim(e.pid, "c", vec![])],
            _ => vec![e.clone()],
        });
        let r = r1.then(&r2);
        assert_eq!(r.name(), "a→b ∘ b→c");
        let lower = Log::from_events([Event::prim(Pid(0), "a", vec![])]);
        let upper = Log::from_events([Event::prim(Pid(0), "c", vec![])]);
        assert!(r.holds(&lower, &upper));
    }

    #[test]
    fn replay_env_reproduces_expected_events() {
        let expected = Log::from_events([
            Event::prim(Pid(0), "noise", vec![]),
            Event::prim(Pid(1), "mine", vec![]),
            Event::prim(Pid(0), "more", vec![]),
        ]);
        let env = replay_env(&expected, Pid(1));
        let mut log = Log::new();
        // First query: p0 plays "noise", then control reaches p1.
        let got = env
            .extend_until_focused(&crate::id::PidSet::singleton(Pid(1)), &mut log)
            .unwrap();
        assert_eq!(got, Pid(1));
        assert_eq!(log.count_by(Pid(0)), 1);
        // After p1 plays its event, the env plays p0's second event.
        log.append(Event::prim(Pid(1), "mine", vec![]));
        env.extend_until_focused(&crate::id::PidSet::singleton(Pid(1)), &mut log)
            .unwrap();
        assert_eq!(log.count_by(Pid(0)), 2);
    }

    #[test]
    fn prim_refinement_identity_succeeds() {
        let lower = emit_iface("L-low", EventKind::Acq);
        let upper = emit_iface("L-up", EventKind::Acq);
        let ev = check_prim_refinement(
            &lower,
            "op",
            &upper,
            "op",
            &SimRelation::identity(),
            Pid(1),
            &rr_ctx(),
            &[vec![Val::Loc(Loc(0))]],
            &SimOptions::default(),
        )
        .unwrap();
        assert_eq!(ev.cases_checked, 1);
        assert!(ev.probes.len() >= 2);
    }

    #[test]
    fn prim_refinement_detects_mismatch() {
        let lower = emit_iface("L-low", EventKind::Acq);
        let upper = emit_iface("L-up", EventKind::Rel);
        let err = check_prim_refinement(
            &lower,
            "op",
            &upper,
            "op",
            &SimRelation::identity(),
            Pid(1),
            &rr_ctx(),
            &[vec![Val::Loc(Loc(0))]],
            &SimOptions::default(),
        )
        .unwrap_err();
        assert!(err.reason.contains("not related"));
    }

    #[test]
    fn cache_eviction_does_not_change_verdicts() {
        let lower = emit_iface("L-low", EventKind::Acq);
        let upper = emit_iface("L-up", EventKind::Acq);
        let contexts = crate::contexts::ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(3)
            .contexts();
        let args = vec![vec![Val::Loc(Loc(0))], vec![Val::Loc(Loc(1))]];
        let run = |opts: SimOptions| {
            check_prim_refinement(
                &lower,
                "op",
                &upper,
                "op",
                &SimRelation::identity(),
                Pid(1),
                &contexts,
                &args,
                &opts.with_workers(1),
            )
        };
        let base = run(SimOptions::default()).unwrap();
        // Cap 1 forces an eviction on every insert after the first.
        let capped = run(SimOptions::default().with_upper_cache_cap(1)).unwrap();
        assert_eq!(base.cases_checked, capped.cases_checked);
        assert_eq!(base.cases_skipped, capped.cases_skipped);
        assert_eq!(base.cases_reduced, capped.cases_reduced);
        assert_eq!(base.probes.len(), capped.probes.len());

        // A failing pair reports the identical first counterexample.
        let bad = emit_iface("L-bad", EventKind::Rel);
        let fail = |opts: SimOptions| {
            check_prim_refinement(
                &lower,
                "op",
                &bad,
                "op",
                &SimRelation::identity(),
                Pid(1),
                &contexts,
                &args,
                &opts.with_workers(1),
            )
            .unwrap_err()
        };
        let f1 = fail(SimOptions::default());
        let f2 = fail(SimOptions::default().with_upper_cache_cap(1));
        assert_eq!(f1.case, f2.case);
        assert_eq!(f1.reason, f2.reason);
    }

    #[test]
    fn snapshot_cap_eviction_does_not_change_verdicts() {
        let lower = emit_iface("L-low", EventKind::Acq);
        let upper = emit_iface("L-up", EventKind::Acq);
        let contexts = crate::contexts::ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(3)
            .contexts();
        let args = vec![vec![Val::Loc(Loc(0))], vec![Val::Loc(Loc(1))]];
        let run = |opts: SimOptions| {
            let mut opts = opts
                .with_workers(1)
                .with_prefix_share(true)
                .with_deep_share(true);
            opts.setup = vec![("op".to_owned(), vec![Val::Loc(Loc(2))])];
            check_prim_refinement(
                &lower,
                "op",
                &upper,
                "op",
                &SimRelation::identity(),
                Pid(1),
                &contexts,
                &args,
                &opts,
            )
        };
        let base = run(SimOptions::default()).unwrap();
        // Cap 1 forces an eviction on every snapshot insert after the
        // first, so most cases re-execute from scratch.
        let capped = run(SimOptions::default().with_snapshot_cap(1)).unwrap();
        assert_eq!(base.cases_checked, capped.cases_checked);
        assert_eq!(base.cases_skipped, capped.cases_skipped);
        assert_eq!(base.cases_reduced, capped.cases_reduced);
        assert_eq!(base.probes.len(), capped.probes.len());

        // A failing pair reports the identical first counterexample.
        let bad = emit_iface("L-bad", EventKind::Rel);
        let fail = |opts: SimOptions| {
            check_prim_refinement(
                &lower,
                "op",
                &bad,
                "op",
                &SimRelation::identity(),
                Pid(1),
                &contexts,
                &args,
                &opts
                    .with_workers(1)
                    .with_prefix_share(true)
                    .with_deep_share(true),
            )
            .unwrap_err()
        };
        let f1 = fail(SimOptions::default());
        let f2 = fail(SimOptions::default().with_snapshot_cap(1));
        assert_eq!(f1.case, f2.case);
        assert_eq!(f1.reason, f2.reason);
    }

    #[test]
    fn prim_refinement_detects_ret_mismatch() {
        let mk = |ret: i64| {
            LayerInterface::builder("L")
                .prim(PrimSpec::atomic("op", move |ctx, _| {
                    ctx.emit(EventKind::Prim("e".into(), vec![]));
                    Ok(Val::Int(ret))
                }))
                .build()
        };
        let err = check_prim_refinement(
            &mk(1),
            "op",
            &mk(2),
            "op",
            &SimRelation::identity(),
            Pid(0),
            &rr_ctx(),
            &[vec![]],
            &SimOptions::default(),
        )
        .unwrap_err();
        assert!(err.reason.contains("return values differ"));
    }
}
