//! Strategies: the game-semantic description of participants.
//!
//! "Each participant `i ∈ D` contributes its play by appending events into
//! the global log `l`; its strategy `φᵢ` is a deterministic partial function
//! from the current log `l` to its next move `φᵢ(l)` whenever the last event
//! in `l` transfers control back to `i`" (§2).
//!
//! Strategies are *stateless*: all of a participant's state is a function of
//! the log (via replay). This is what makes parallel composition of layers
//! sound — any interleaving of strategy moves is meaningful.
//!
//! The scheduler `φ₀` "acts as a judge of the game" (§2); it is itself a
//! strategy whose moves are [`EventKind::HwSched`] events.

use std::fmt;
use std::sync::Arc;

use crate::event::{Event, EventKind};
use crate::id::Pid;
use crate::log::Log;
use crate::val::Val;

/// One move of a strategy when control is transferred to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyMove {
    /// Append these events (possibly none — the idle move `!ϵ` of §2) and
    /// remain in the game.
    Emit(Vec<Event>),
    /// The strategy's play is complete; carries the value it returns
    /// (`↓ v` in the paper's automata).
    Finish(Val),
    /// The strategy is undefined at this log — the partiality of `φᵢ`.
    /// Reaching a stuck strategy is a verification failure (e.g. a data
    /// race under the push/pull model).
    Stuck,
}

impl StrategyMove {
    /// The idle move `!ϵ`.
    pub fn idle() -> Self {
        StrategyMove::Emit(Vec::new())
    }
}

/// A deterministic partial function from logs to moves.
///
/// Implementations must be deterministic and must not carry hidden mutable
/// state: two calls with equal logs must return equal moves. (The paper's
/// strategies are functions of the log; every per-participant notion of
/// "where am I" must be recomputed from the log, typically with a replay
/// function or by counting the participant's own events.)
pub trait Strategy: Send + Sync {
    /// The strategy's move at log `log`, assuming control was just
    /// transferred to the strategy's participant.
    fn next_move(&self, log: &Log) -> StrategyMove;

    /// Human-readable name, used in diagnostics and certificates.
    fn name(&self) -> &str {
        "strategy"
    }

    /// The strategy's *declared alphabet*: event kinds it may ever emit,
    /// used by the partial-order reduction ([`crate::por`]) to decide
    /// whether two environment players commute. `None` (the default) means
    /// "unknown" — the player is conservatively treated as conflicting
    /// with everything and the reduction never prunes around it.
    ///
    /// # Contract
    ///
    /// Every event the strategy can emit must match one of the returned
    /// kinds up to payload *values* (same constructor, same
    /// [`EventKind::footprints`], same [`EventKind::is_lock_ordered`]
    /// class). Declaring too small an alphabet makes the reduction
    /// unsound; declaring `None` or too large an alphabet only loses
    /// pruning. Implementations must also be *footprint-local*: their
    /// moves may depend only on their own events and on events touching
    /// their declared footprints (all strategies in this workspace are —
    /// they replay per-object shared state and count their own events).
    fn may_emit(&self) -> Option<Vec<EventKind>> {
        None
    }
}

impl fmt::Debug for dyn Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Strategy({})", self.name())
    }
}

/// A strategy defined by a closure over the log.
///
/// # Examples
///
/// ```
/// use ccal_core::strategy::{FnStrategy, Strategy, StrategyMove};
/// use ccal_core::event::Event;
/// use ccal_core::id::Pid;
/// use ccal_core::log::Log;
///
/// // A player that emits one `foo` event on its first turn, then idles.
/// let s = FnStrategy::new("foo-once", |log: &Log| {
///     if log.count_by(Pid(1)) == 0 {
///         StrategyMove::Emit(vec![Event::prim(Pid(1), "foo", vec![])])
///     } else {
///         StrategyMove::idle()
///     }
/// });
/// assert_eq!(s.name(), "foo-once");
/// ```
#[derive(Clone)]
pub struct FnStrategy {
    name: String,
    f: Arc<dyn Fn(&Log) -> StrategyMove + Send + Sync>,
}

impl FnStrategy {
    /// Creates a strategy from a name and a move function.
    pub fn new<F>(name: &str, f: F) -> Self
    where
        F: Fn(&Log) -> StrategyMove + Send + Sync + 'static,
    {
        Self {
            name: name.to_owned(),
            f: Arc::new(f),
        }
    }
}

impl Strategy for FnStrategy {
    fn next_move(&self, log: &Log) -> StrategyMove {
        (self.f)(log)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for FnStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnStrategy").field("name", &self.name).finish()
    }
}

/// The always-idle player: emits no events, forever. Used for environment
/// participants that never act.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleStrategy;

impl Strategy for IdleStrategy {
    fn next_move(&self, _log: &Log) -> StrategyMove {
        StrategyMove::idle()
    }

    fn name(&self) -> &str {
        "idle"
    }

    fn may_emit(&self) -> Option<Vec<EventKind>> {
        // The empty alphabet: vacuously independent of every other player.
        Some(Vec::new())
    }
}

/// A player that replays a fixed script of event batches: on its `k`-th
/// scheduled turn it emits the `k`-th batch, then idles forever. The turn
/// index is recovered from the log by counting scheduling events that
/// target the player — keeping the strategy a pure function of the log.
#[derive(Debug, Clone)]
pub struct ScriptPlayer {
    pid: Pid,
    script: Vec<Vec<Event>>,
}

impl ScriptPlayer {
    /// Creates a scripted player for participant `pid`.
    pub fn new(pid: Pid, script: Vec<Vec<Event>>) -> Self {
        Self { pid, script }
    }

    fn turn_index(&self, log: &Log) -> usize {
        log.iter()
            .filter(|e| matches!(e.kind, EventKind::HwSched(p) if p == self.pid))
            .count()
            .saturating_sub(1)
    }
}

impl Strategy for ScriptPlayer {
    fn next_move(&self, log: &Log) -> StrategyMove {
        match self.script.get(self.turn_index(log)) {
            Some(batch) => StrategyMove::Emit(batch.clone()),
            None => StrategyMove::idle(),
        }
    }

    fn name(&self) -> &str {
        "script-player"
    }

    fn may_emit(&self) -> Option<Vec<EventKind>> {
        // A scripted player's alphabet is exactly the kinds in its script.
        Some(
            self.script
                .iter()
                .flatten()
                .map(|e| e.kind.clone())
                .collect(),
        )
    }
}

/// An environment player that works on a *private* scratch location: on
/// each scheduled turn it pulls the location and pushes an incremented
/// counter back, forever. Its events are plain memory events on a single
/// location (not lock-ordered), so two scratch players on distinct
/// locations are fully independent — they exist to give the partial-order
/// reduction something to prune, both in benchmarks and in tests.
#[derive(Debug, Clone)]
pub struct ScratchPlayer {
    pid: Pid,
    loc: crate::id::Loc,
}

impl ScratchPlayer {
    /// Creates a scratch player for participant `pid` working on `loc`.
    pub fn new(pid: Pid, loc: crate::id::Loc) -> Self {
        Self { pid, loc }
    }
}

impl Strategy for ScratchPlayer {
    fn next_move(&self, log: &Log) -> StrategyMove {
        // The turn index doubles as the counter value — a pure function of
        // the log, as the strategy contract requires.
        let k = log.count_by(self.pid) / 2;
        StrategyMove::Emit(vec![
            Event::new(self.pid, EventKind::Pull(self.loc)),
            Event::new(self.pid, EventKind::Push(self.loc, Val::Int(k as i64))),
        ])
    }

    fn name(&self) -> &str {
        "scratch-player"
    }

    fn may_emit(&self) -> Option<Vec<EventKind>> {
        Some(vec![
            EventKind::Pull(self.loc),
            EventKind::Push(self.loc, Val::Int(0)),
        ])
    }
}

/// A fair round-robin scheduler over a fixed domain: the `k`-th scheduling
/// event targets `domain[k mod n]`.
#[derive(Debug, Clone)]
pub struct RoundRobinScheduler {
    domain: Vec<Pid>,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler over the given participants.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is empty.
    pub fn new(domain: Vec<Pid>) -> Self {
        assert!(!domain.is_empty(), "scheduler domain must be non-empty");
        Self { domain }
    }

    /// Round-robin over `D = {0, .., n-1}`.
    pub fn over_domain(n: u32) -> Self {
        Self::new((0..n).map(Pid).collect())
    }
}

impl Strategy for RoundRobinScheduler {
    fn next_move(&self, log: &Log) -> StrategyMove {
        let k = log.iter().filter(|e| e.is_sched()).count();
        let target = self.domain[k % self.domain.len()];
        StrategyMove::Emit(vec![Event::sched(target)])
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

/// A scheduler that first plays a fixed script of targets, then falls back
/// to round-robin over the domain (so that it stays fair, as the rely
/// conditions require of hardware schedulers, §4.1).
///
/// This is how the §2 walkthrough schedule "1, 2, 2, 1, 1, 2, 1, 2, 1, 1,
/// 2, 2" is expressed.
#[derive(Debug, Clone)]
pub struct ScriptScheduler {
    script: Vec<Pid>,
    fallback: RoundRobinScheduler,
}

impl ScriptScheduler {
    /// Creates a scripted scheduler with a round-robin fallback over
    /// `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is empty.
    pub fn new(script: Vec<Pid>, domain: Vec<Pid>) -> Self {
        Self {
            script,
            fallback: RoundRobinScheduler::new(domain),
        }
    }
}

impl Strategy for ScriptScheduler {
    fn next_move(&self, log: &Log) -> StrategyMove {
        let k = log.iter().filter(|e| e.is_sched()).count();
        match self.script.get(k) {
            Some(target) => StrategyMove::Emit(vec![Event::sched(*target)]),
            None => self.fallback.next_move(log),
        }
    }

    fn name(&self) -> &str {
        "script-scheduler"
    }
}

/// Checks the fairness of the scheduling events in `log`: every participant
/// of `domain` is scheduled at least once in every window of `bound`
/// scheduling events. This is the rely condition `R_hs` — "the scheduler
/// strategy φ′hs must be fair", "any CPU can be scheduled within m steps"
/// (§2, §4.1).
pub fn is_fair_schedule(log: &Log, domain: &[Pid], bound: usize) -> bool {
    let scheds: Vec<Pid> = log
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::HwSched(p) => Some(p),
            _ => None,
        })
        .collect();
    if scheds.len() < bound {
        return true;
    }
    for w in scheds.windows(bound) {
        for p in domain {
            if !w.contains(p) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_through_domain() {
        let sched = RoundRobinScheduler::over_domain(3);
        let mut log = Log::new();
        for expect in [0, 1, 2, 0, 1] {
            match sched.next_move(&log) {
                StrategyMove::Emit(evs) => {
                    assert_eq!(evs, vec![Event::sched(Pid(expect))]);
                    log.append_all(evs);
                }
                other => panic!("unexpected move {other:?}"),
            }
        }
    }

    #[test]
    fn script_scheduler_plays_script_then_round_robin() {
        let sched = ScriptScheduler::new(vec![Pid(1), Pid(1)], vec![Pid(0), Pid(1)]);
        let mut log = Log::new();
        let mut targets = Vec::new();
        for _ in 0..4 {
            if let StrategyMove::Emit(evs) = sched.next_move(&log) {
                targets.push(evs[0].pid);
                log.append_all(evs);
            }
        }
        assert_eq!(targets, vec![Pid(1), Pid(1), Pid(0), Pid(1)]);
    }

    #[test]
    fn script_player_follows_turn_count() {
        let p = ScriptPlayer::new(
            Pid(2),
            vec![vec![Event::prim(Pid(2), "a", vec![])], vec![Event::prim(Pid(2), "b", vec![])]],
        );
        let mut log = Log::new();
        log.append(Event::sched(Pid(2)));
        let m1 = p.next_move(&log);
        assert_eq!(
            m1,
            StrategyMove::Emit(vec![Event::prim(Pid(2), "a", vec![])])
        );
        if let StrategyMove::Emit(evs) = m1 {
            log.append_all(evs);
        }
        log.append(Event::sched(Pid(2)));
        assert_eq!(
            p.next_move(&log),
            StrategyMove::Emit(vec![Event::prim(Pid(2), "b", vec![])])
        );
        log.append(Event::sched(Pid(2)));
        log.append(Event::sched(Pid(2)));
        assert_eq!(p.next_move(&log), StrategyMove::idle());
    }

    #[test]
    fn idle_strategy_never_moves() {
        let log = Log::new();
        assert_eq!(IdleStrategy.next_move(&log), StrategyMove::idle());
    }

    #[test]
    fn fairness_detects_starvation() {
        let mut log = Log::new();
        for _ in 0..6 {
            log.append(Event::sched(Pid(0)));
        }
        assert!(!is_fair_schedule(&log, &[Pid(0), Pid(1)], 3));
        let mut fair = Log::new();
        for i in 0..6 {
            fair.append(Event::sched(Pid(i % 2)));
        }
        assert!(is_fair_schedule(&fair, &[Pid(0), Pid(1)], 3));
    }

    #[test]
    fn short_logs_are_vacuously_fair() {
        let log = Log::from_events([Event::sched(Pid(0))]);
        assert!(is_fair_schedule(&log, &[Pid(0), Pid(1)], 5));
    }
}
