//! Machine and abstract-state values.
//!
//! The paper's machines carry memory values `v` and abstract states `a`
//! (Fig. 7). We use a single small value universe for registers, memory
//! cells, primitive arguments/returns, event payloads and abstract-state
//! fields; structured abstract state (e.g. the logical thread-queue list of
//! §4.2) is represented with [`Val::List`].

use std::fmt;

use crate::id::{Loc, Pid, QId};

/// A dynamic value: the `Val` universe of Fig. 7 enriched with the list and
/// string values needed by abstract layer states.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Val {
    /// The undefined value `vundef` (Fig. 7): contents of uninitialised
    /// memory.
    #[default]
    Undef,
    /// The unit value returned by `void` primitives.
    Unit,
    /// A machine integer. We use a mathematical `i64` at the layer level;
    /// bounded 32-bit arithmetic is the machine substrate's concern (the
    /// ticket-lock overflow argument of §4.1 is exercised there).
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A pointer to location `b`.
    Loc(Loc),
    /// A symbolic name (used for function pointers and diagnostic payloads).
    Str(String),
    /// A finite list, used for logical queue contents and memory snapshots.
    List(Vec<Val>),
}

impl Val {
    /// Interprets the value as an integer.
    ///
    /// # Errors
    ///
    /// Returns [`ValError::Type`] if the value is not an [`Val::Int`].
    pub fn as_int(&self) -> Result<i64, ValError> {
        match self {
            Val::Int(i) => Ok(*i),
            other => Err(ValError::type_error("Int", other)),
        }
    }

    /// Interprets the value as a boolean. Integers are *not* implicitly
    /// coerced; the ClightX front end performs explicit comparisons.
    ///
    /// # Errors
    ///
    /// Returns [`ValError::Type`] if the value is not a [`Val::Bool`].
    pub fn as_bool(&self) -> Result<bool, ValError> {
        match self {
            Val::Bool(b) => Ok(*b),
            other => Err(ValError::type_error("Bool", other)),
        }
    }

    /// Interprets the value as a location.
    ///
    /// # Errors
    ///
    /// Returns [`ValError::Type`] if the value is not a [`Val::Loc`].
    pub fn as_loc(&self) -> Result<Loc, ValError> {
        match self {
            Val::Loc(loc) => Ok(*loc),
            other => Err(ValError::type_error("Loc", other)),
        }
    }

    /// Interprets the value as a list, borrowing its elements.
    ///
    /// # Errors
    ///
    /// Returns [`ValError::Type`] if the value is not a [`Val::List`].
    pub fn as_list(&self) -> Result<&[Val], ValError> {
        match self {
            Val::List(items) => Ok(items),
            other => Err(ValError::type_error("List", other)),
        }
    }

    /// Whether the value is `Undef`.
    pub fn is_undef(&self) -> bool {
        matches!(self, Val::Undef)
    }
}

impl From<i64> for Val {
    fn from(i: i64) -> Self {
        Val::Int(i)
    }
}

impl From<bool> for Val {
    fn from(b: bool) -> Self {
        Val::Bool(b)
    }
}

impl From<Loc> for Val {
    fn from(loc: Loc) -> Self {
        Val::Loc(loc)
    }
}

impl From<QId> for Val {
    fn from(q: QId) -> Self {
        Val::Int(i64::from(q.0))
    }
}

impl From<Pid> for Val {
    fn from(p: Pid) -> Self {
        Val::Int(i64::from(p.0))
    }
}

impl From<&str> for Val {
    fn from(s: &str) -> Self {
        Val::Str(s.to_owned())
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Undef => write!(f, "undef"),
            Val::Unit => write!(f, "()"),
            Val::Int(i) => write!(f, "{i}"),
            Val::Bool(b) => write!(f, "{b}"),
            Val::Loc(l) => write!(f, "{l}"),
            Val::Str(s) => write!(f, "{s:?}"),
            Val::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Error produced by dynamic value inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValError {
    /// A value had the wrong dynamic type.
    Type {
        /// The expected variant name.
        expected: &'static str,
        /// Debug rendering of the value found.
        found: String,
    },
}

impl ValError {
    fn type_error(expected: &'static str, found: &Val) -> Self {
        ValError::Type {
            expected,
            found: format!("{found}"),
        }
    }
}

impl fmt::Display for ValError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValError::Type { expected, found } => {
                write!(f, "expected {expected} value, found {found}")
            }
        }
    }
}

impl std::error::Error for ValError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        let v = Val::from(42_i64);
        assert_eq!(v.as_int().unwrap(), 42);
        assert!(v.as_bool().is_err());
    }

    #[test]
    fn bool_round_trip() {
        assert!(Val::from(true).as_bool().unwrap());
        assert!(Val::Int(1).as_bool().is_err(), "no implicit coercion");
    }

    #[test]
    fn loc_round_trip() {
        let v = Val::from(Loc(9));
        assert_eq!(v.as_loc().unwrap(), Loc(9));
    }

    #[test]
    fn list_borrowing() {
        let v = Val::List(vec![Val::Int(1), Val::Int(2)]);
        assert_eq!(v.as_list().unwrap().len(), 2);
    }

    #[test]
    fn default_is_undef() {
        assert!(Val::default().is_undef());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Val::List(vec![Val::Int(1), Val::Unit]).to_string(), "[1, ()]");
        assert_eq!(Val::Undef.to_string(), "undef");
    }

    #[test]
    fn type_error_reports_expected_and_found() {
        let err = Val::Unit.as_int().unwrap_err();
        assert_eq!(
            err,
            ValError::Type {
                expected: "Int",
                found: "()".into()
            }
        );
        assert!(err.to_string().contains("expected Int"));
    }
}
