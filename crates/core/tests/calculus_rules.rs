//! Exercises the less-traveled paths of the layer calculus (Fig. 9):
//! weakening on the underlay side, `Compat` failures, and the structural
//! rejection paths of each rule.

use ccal_core::contexts::ContextGen;
use ccal_core::event::EventKind;
use ccal_core::id::{Pid, PidSet};
use ccal_core::layer::{LayerInterface, PrimSpec};
use ccal_core::module::Module;
use ccal_core::prelude::*;

fn step_iface(name: &str) -> LayerInterface {
    LayerInterface::builder(name)
        .prim(PrimSpec::atomic("step", |ctx, _| {
            ctx.emit(EventKind::Prim("step".into(), vec![]));
            Ok(Val::Unit)
        }))
        .build()
}

fn opts() -> CheckOptions {
    CheckOptions::new(
        ContextGen::new(vec![Pid(0), Pid(1)])
            .with_schedule_len(2)
            .contexts(),
    )
}

#[test]
fn weaken_below_strengthens_the_underlay() {
    // L0' ≤_id L0, then weaken L0 ⊢ M : L1 below to L0' ⊢ M : L1.
    let l0_prime = step_iface("L0'");
    let l0 = step_iface("L0");
    let l1 = step_iface("L1");
    let below =
        check_iface_refinement(&l0_prime, &l0, &SimRelation::identity(), Pid(0), &opts())
            .expect("L0' ≤ L0");
    let layer = check_fun(
        &l0,
        &Module::new("M"),
        &l1,
        &SimRelation::identity(),
        Pid(0),
        &opts(),
    )
    .expect("L0 ⊢ M : L1");
    let weakened = weaken(Some(&below), &layer, None).expect("Wk below");
    assert_eq!(weakened.underlay.name, "L0'");
    assert_eq!(weakened.overlay.name, "L1");
    assert_eq!(weakened.relation.name(), "id ∘ id");
}

#[test]
fn weaken_rejects_misaligned_refinements() {
    let l0 = step_iface("L0");
    let l1 = step_iface("L1");
    let unrelated = step_iface("Lx");
    let bad_below =
        check_iface_refinement(&unrelated, &unrelated, &SimRelation::identity(), Pid(0), &opts())
            .expect("Lx ≤ Lx");
    let layer = check_fun(
        &l0,
        &Module::new("M"),
        &l1,
        &SimRelation::identity(),
        Pid(0),
        &opts(),
    )
    .expect("certifies");
    // The refinement's upper interface (Lx) is not the layer's underlay.
    assert!(matches!(
        weaken(Some(&bad_below), &layer, None),
        Err(LayerError::Mismatch { .. })
    ));
}

#[test]
fn pcomp_rejects_incompatible_conditions() {
    // Layer A guarantees nothing but relies on an invariant only it
    // names: B's guarantee cannot establish it, and there are no probes
    // proving the implication empirically either.
    let demanding = Conditions::none().with(Invariant::new("exotic-rely", |_, _| true));
    let iface_a = step_iface("L").with_conditions(RelyGuarantee::new(
        demanding,
        Conditions::none(),
    ));
    let iface_b = step_iface("L");
    let a = empty(&iface_a, PidSet::singleton(Pid(0)));
    let b = empty(&iface_b, PidSet::singleton(Pid(1)));
    let err = pcomp(&a, &b).expect_err("B's guarantee does not imply A's rely");
    match err {
        LayerError::Compat { invariant, .. } => assert_eq!(invariant, "exotic-rely"),
        other => panic!("expected Compat failure, got {other}"),
    }
}

#[test]
fn pcomp_accepts_structurally_shared_conditions() {
    let shared = Conditions::none().with(Invariant::new("shared-protocol", |_, _| true));
    let iface = step_iface("L").with_conditions(RelyGuarantee::new(shared.clone(), shared));
    let a = empty(&iface, PidSet::singleton(Pid(0)));
    let b = empty(&iface, PidSet::singleton(Pid(1)));
    let ab = pcomp(&a, &b).expect("same-named conditions are compatible");
    assert_eq!(ab.focused.len(), 2);
    // The composed interface keeps the shared guarantee and rely.
    assert_eq!(ab.underlay.conditions.guarantee.names(), vec!["shared-protocol"]);
    assert_eq!(ab.underlay.conditions.rely.names(), vec!["shared-protocol"]);
}

#[test]
fn hcomp_rejects_relation_mismatch() {
    let l0 = step_iface("L0");
    let a = check_fun(
        &l0,
        &Module::new("M"),
        &step_iface("La"),
        &SimRelation::identity(),
        Pid(0),
        &opts(),
    )
    .expect("certifies");
    let b = check_fun(
        &l0,
        &Module::new("N"),
        &step_iface("Lb"),
        &SimRelation::per_event("other", |e| vec![e.clone()]),
        Pid(0),
        &opts(),
    )
    .expect("certifies");
    assert!(matches!(hcomp(&a, &b), Err(LayerError::Mismatch { .. })));
}

#[test]
fn vcomp_rejects_focused_set_mismatch() {
    let l = step_iface("L");
    let a = empty(&l, PidSet::singleton(Pid(0)));
    let b = empty(&l, PidSet::singleton(Pid(1)));
    assert!(matches!(vcomp(&a, &b), Err(LayerError::Mismatch { .. })));
}

#[test]
fn certificates_compose_through_the_whole_derivation() {
    let l0 = step_iface("L0");
    let l1 = step_iface("L1");
    let l2 = step_iface("L2");
    let a = check_fun(&l0, &Module::new("M"), &l1, &SimRelation::identity(), Pid(0), &opts())
        .expect("a");
    let b = check_fun(&l1, &Module::new("N"), &l2, &SimRelation::identity(), Pid(0), &opts())
        .expect("b");
    let ab = vcomp(&a, &b).expect("vcomp");
    // The composed certificate contains both layers' cases plus the
    // Vcomp record.
    assert_eq!(
        ab.certificate.total_cases(),
        a.certificate.total_cases() + b.certificate.total_cases()
    );
    assert!(ab
        .certificate
        .obligations()
        .iter()
        .any(|o| o.rule == Rule::Vcomp));
    // And the probe suites merged for later Compat use.
    assert!(ab.certificate.probes.len() >= a.certificate.probes.len());
}
