//! Property-based tests of the core model's algebraic laws.

use ccal_core::event::{Event, EventKind};
use ccal_core::id::{Loc, Pid, PidSet, QId};
use ccal_core::log::Log;
use ccal_core::replay::{replay_atomic_queue, replay_shared, replay_ticket};
use ccal_core::sim::SimRelation;
use ccal_core::val::Val;
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    (0_u32..3, 0_u8..7, 0_u32..2, -4_i64..4).prop_map(|(pid, kind, loc, v)| {
        let pid = Pid(pid);
        let b = Loc(loc);
        let kind = match kind {
            0 => EventKind::FaiT(b),
            1 => EventKind::GetN(b),
            2 => EventKind::IncN(b),
            3 => EventKind::Acq(b),
            4 => EventKind::Rel(b),
            5 => EventKind::EnQ(QId(loc), Val::Int(v)),
            _ => EventKind::HwSched(pid),
        };
        Event::new(pid, kind)
    })
}

fn arb_log() -> impl Strategy<Value = Log> {
    proptest::collection::vec(arb_event(), 0..24).prop_map(Log::from_events)
}

proptest! {
    /// without_sched is idempotent and removes exactly the scheduling
    /// events.
    #[test]
    fn without_sched_idempotent(log in arb_log()) {
        let once = log.without_sched();
        prop_assert_eq!(once.clone(), once.without_sched());
        prop_assert!(once.iter().all(|e| !e.is_sched()));
        let removed = log.len() - once.len();
        let scheds = log.iter().filter(|e| e.is_sched()).count();
        prop_assert_eq!(removed, scheds);
    }

    /// Per-pid counters partition the non-scheduling events.
    #[test]
    fn count_by_partitions(log in arb_log()) {
        let total: usize = (0..3).map(|p| log.count_by(Pid(p))).sum();
        prop_assert_eq!(total, log.without_sched().len());
    }

    /// Replay functions are prefix-monotone folds: replaying a prefix
    /// then extending gives the same result as replaying the whole log.
    #[test]
    fn ticket_replay_is_a_fold(log in arb_log(), cut in 0_usize..24) {
        let b = Loc(0);
        let cut = cut.min(log.len());
        let prefix = Log::from_events(log.iter().take(cut).cloned());
        let st_pre = replay_ticket(&prefix, b);
        let st_all = replay_ticket(&log, b);
        // Counters never decrease along extensions.
        prop_assert!(st_all.next >= st_pre.next);
        prop_assert!(st_all.serving >= st_pre.serving);
    }

    /// Queue replay length = enqueues - successful dequeues.
    #[test]
    fn queue_replay_length_invariant(ops in proptest::collection::vec((0_u8..2, 0_i64..50), 0..20)) {
        let q = QId(0);
        let mut log = Log::new();
        let mut expected_len = 0_i64;
        for (i, (kind, v)) in ops.iter().enumerate() {
            let pid = Pid((i % 2) as u32);
            if *kind == 0 {
                log.append(Event::new(pid, EventKind::EnQ(q, Val::Int(*v))));
                expected_len += 1;
            } else {
                log.append(Event::new(pid, EventKind::DeQ(q)));
                if expected_len > 0 {
                    expected_len -= 1;
                }
            }
        }
        prop_assert_eq!(replay_atomic_queue(&log, q).len() as i64, expected_len);
    }

    /// Identity relation: reflexive modulo scheduling, and composition
    /// with identity is identity.
    #[test]
    fn identity_relation_laws(log in arb_log()) {
        let id = SimRelation::identity();
        prop_assert!(id.holds(&log, &log));
        prop_assert!(id.holds(&log, &log.without_sched()));
        let id2 = id.then(&SimRelation::identity());
        prop_assert_eq!(id2.abstracted(&log), id.abstracted(&log));
    }

    /// Relation composition is associative on per-event relations.
    #[test]
    fn relation_composition_associative(log in arb_log()) {
        let f = SimRelation::per_event("f", |e| match e.kind {
            EventKind::FaiT(b) => vec![Event::new(e.pid, EventKind::GetN(b))],
            _ => vec![e.clone()],
        });
        let g = SimRelation::per_event("g", |e| match e.kind {
            EventKind::GetN(_) => vec![],
            _ => vec![e.clone()],
        });
        let h = SimRelation::per_event("h", |e| vec![e.clone(), e.clone()]);
        let left = f.then(&g).then(&h);
        let right = f.then(&g.then(&h));
        prop_assert_eq!(left.abstracted(&log), right.abstracted(&log));
    }

    /// Pull/push well-bracketed logs always replay; the final owner is
    /// determined by parity.
    #[test]
    fn bracketed_pushpull_replays(rounds in 0_usize..6, open in proptest::bool::ANY) {
        let b = Loc(0);
        let mut log = Log::new();
        for i in 0..rounds {
            let pid = Pid((i % 2) as u32);
            log.append(Event::new(pid, EventKind::Pull(b)));
            log.append(Event::new(pid, EventKind::Push(b, Val::Int(i as i64))));
        }
        if open {
            log.append(Event::new(Pid(0), EventKind::Pull(b)));
        }
        let cell = replay_shared(&log, b).expect("bracketed log replays");
        if open {
            prop_assert_eq!(cell.owner, ccal_core::replay::Ownership::Owned(Pid(0)));
        } else {
            prop_assert_eq!(cell.owner, ccal_core::replay::Ownership::Free);
        }
    }

    /// PidSet union is commutative, associative and idempotent; domain
    /// absorbs subsets.
    #[test]
    fn pidset_lattice_laws(xs in proptest::collection::vec(0_u32..8, 0..8),
                           ys in proptest::collection::vec(0_u32..8, 0..8)) {
        let a = PidSet::from_pids(xs.iter().copied().map(Pid));
        let b = PidSet::from_pids(ys.iter().copied().map(Pid));
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert!(a.is_subset(&a.union(&b)));
        let d = PidSet::domain(8);
        prop_assert_eq!(a.union(&d), d);
    }

    /// Log prefix relation is a partial order compatible with append.
    #[test]
    fn log_prefix_order(log in arb_log(), extra in arb_event()) {
        let mut bigger = log.clone();
        bigger.append(extra);
        prop_assert!(bigger.has_prefix(&log));
        prop_assert!(log.has_prefix(&log));
        prop_assert!(!log.has_prefix(&bigger));
        prop_assert_eq!(bigger.suffix_from(log.len()).count(), 1);
    }
}
