//! Offline wall-clock stand-in for the [`criterion`] benchmark harness.
//!
//! The crates.io registry is unreachable in this workspace's build
//! environment, so the real `criterion` cannot be resolved. This crate
//! implements the API subset the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `criterion_group!`/`criterion_main!` — with a tiny wall-clock harness:
//! warm up, run until a time budget is spent, report the mean.
//!
//! No statistics, plots, or history are produced. Pass `--quick` (or set
//! `CCAL_BENCH_QUICK=1`) to shrink the time budget for smoke runs:
//!
//! ```text
//! cargo bench -p ccal-bench --bench composition_scaling -- --quick
//! ```
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt;
use std::time::{Duration, Instant};

/// Mirror of `criterion::BatchSize` (only the variant the workspace uses).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output; setup runs once per iteration.
    SmallInput,
}

/// Identifies one benchmark within a group (mirror of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Re-export parity with `criterion::black_box` (benches may also use
/// `std::hint::black_box` directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
struct Budget {
    warmup: Duration,
    measure: Duration,
}

impl Budget {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                warmup: Duration::from_millis(5),
                measure: Duration::from_millis(20),
            }
        } else {
            Self {
                warmup: Duration::from_millis(50),
                measure: Duration::from_millis(250),
            }
        }
    }
}

/// Measures one benchmark routine (mirror of `criterion::Bencher`).
pub struct Bencher {
    budget: Budget,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, including nothing else, reporting the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            let start = Instant::now();
            std::hint::black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            start.elapsed()
        });
    }

    /// Drives one timed iteration closure through warmup + measurement.
    fn run<F: FnMut() -> Duration>(&mut self, mut one: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.budget.warmup {
            one();
        }
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.budget.measure && iters < 10_000_000 {
            total += one();
            iters += 1;
        }
        if iters == 0 {
            total = one();
            iters = 1;
        }
        self.result = Some((total / u32::try_from(iters).unwrap_or(u32::MAX), iters));
    }
}

fn render_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks (mirror of
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the wall-clock harness sizes runs
    /// by time budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `group-name/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut routine);
        self
    }

    /// Benchmarks `routine` on `input` under `group-name/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Ends the group (no-op beyond API parity).
    pub fn finish(self) {}
}

/// The harness entry point (mirror of `criterion::Criterion`).
pub struct Criterion {
    budget: Budget,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CCAL_BENCH_QUICK").is_some();
        Self {
            budget: Budget::new(quick),
        }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.to_string();
        self.run_one(&full, &mut routine);
        self
    }

    fn run_one(&mut self, name: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            budget: self.budget,
            result: None,
        };
        routine(&mut bencher);
        match bencher.result {
            Some((mean, iters)) => {
                println!("{name:<50} time: [{}]  ({iters} iterations)", render_duration(mean));
            }
            None => println!("{name:<50} (no measurement recorded)"),
        }
    }
}

/// Groups benchmark functions into one callable (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups (mirror of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            budget: Budget::new(true),
            result: None,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        let (mean, iters) = b.result.expect("measured");
        assert!(iters > 0);
        assert!(mean < Duration::from_secs(1));
    }

    #[test]
    fn batched_excludes_setup() {
        let mut b = Bencher {
            budget: Budget::new(true),
            result: None,
        };
        b.iter_batched(|| vec![0_u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.result.is_some());
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("ticket", 4).to_string(), "ticket/4");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
