//! Offline wall-clock stand-in for the [`criterion`] benchmark harness.
//!
//! The crates.io registry is unreachable in this workspace's build
//! environment, so the real `criterion` cannot be resolved. This crate
//! implements the API subset the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `criterion_group!`/`criterion_main!` — with a tiny wall-clock harness:
//! warm up, collect per-iteration samples until a time budget is spent,
//! reject outliers by median absolute deviation, and report the median ± σ
//! of the surviving samples.
//!
//! No plots or history are produced. Pass `--quick` (or set
//! `CCAL_BENCH_QUICK=1`) to shrink the time budget for smoke runs:
//!
//! ```text
//! cargo bench -p ccal-bench --bench composition_scaling -- --quick
//! ```
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt;
use std::time::{Duration, Instant};

/// Mirror of `criterion::BatchSize` (only the variant the workspace uses).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output; setup runs once per iteration.
    SmallInput,
}

/// Identifies one benchmark within a group (mirror of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Re-export parity with `criterion::black_box` (benches may also use
/// `std::hint::black_box` directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
struct Budget {
    warmup: Duration,
    measure: Duration,
}

impl Budget {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                warmup: Duration::from_millis(5),
                measure: Duration::from_millis(20),
            }
        } else {
            Self {
                warmup: Duration::from_millis(50),
                measure: Duration::from_millis(250),
            }
        }
    }
}

/// A robust summary of one benchmark's per-iteration samples.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median per-iteration time over the samples that survived outlier
    /// rejection.
    pub median: Duration,
    /// Standard deviation of the surviving samples.
    pub sigma: Duration,
    /// Samples collected (= iterations timed).
    pub iters: u64,
    /// Samples rejected as outliers (beyond 5 MADs from the median).
    pub outliers: u64,
}

/// Summarizes raw per-iteration samples (in nanoseconds): sort, take the
/// median, reject samples farther than 5 median-absolute-deviations from
/// it, then report the median and standard deviation of the survivors.
/// With `MAD = 0` (more than half the samples identical) nothing is
/// rejected — a zero-width band would throw away legitimate samples.
fn summarize(mut ns: Vec<u64>) -> Measurement {
    assert!(!ns.is_empty(), "summarize needs at least one sample");
    let total = ns.len() as u64;
    ns.sort_unstable();
    let median_of = |sorted: &[u64]| -> u64 {
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) {
            u64::midpoint(sorted[mid - 1], sorted[mid])
        } else {
            sorted[mid]
        }
    };
    let med = median_of(&ns);
    let mut devs: Vec<u64> = ns.iter().map(|&x| x.abs_diff(med)).collect();
    devs.sort_unstable();
    let mad = median_of(&devs);
    let kept: Vec<u64> = if mad == 0 {
        ns
    } else {
        ns.into_iter()
            .filter(|&x| x.abs_diff(med) <= mad.saturating_mul(5))
            .collect()
    };
    let outliers = total - kept.len() as u64;
    let median = median_of(&kept);
    let mean = kept.iter().map(|&x| x as f64).sum::<f64>() / kept.len() as f64;
    let var = kept
        .iter()
        .map(|&x| {
            let d = x as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / kept.len() as f64;
    Measurement {
        median: Duration::from_nanos(median),
        sigma: Duration::from_nanos(var.sqrt() as u64),
        iters: total,
        outliers,
    }
}

/// Measures one benchmark routine (mirror of `criterion::Bencher`).
pub struct Bencher {
    budget: Budget,
    result: Option<Measurement>,
}

impl Bencher {
    /// Times `routine`, including nothing else, reporting the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            let start = Instant::now();
            std::hint::black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            start.elapsed()
        });
    }

    /// Drives one timed iteration closure through warmup + measurement,
    /// collecting per-iteration samples for the robust summary.
    fn run<F: FnMut() -> Duration>(&mut self, mut one: F) {
        const MAX_SAMPLES: usize = 100_000;
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.budget.warmup {
            one();
        }
        let mut samples: Vec<u64> = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.budget.measure && samples.len() < MAX_SAMPLES {
            samples.push(u64::try_from(one().as_nanos()).unwrap_or(u64::MAX));
        }
        if samples.is_empty() {
            samples.push(u64::try_from(one().as_nanos()).unwrap_or(u64::MAX));
        }
        self.result = Some(summarize(samples));
    }
}

fn render_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks (mirror of
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the wall-clock harness sizes runs
    /// by time budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `group-name/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut routine);
        self
    }

    /// Benchmarks `routine` on `input` under `group-name/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Ends the group (no-op beyond API parity).
    pub fn finish(self) {}
}

/// The harness entry point (mirror of `criterion::Criterion`).
pub struct Criterion {
    budget: Budget,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CCAL_BENCH_QUICK").is_some();
        Self {
            budget: Budget::new(quick),
        }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.to_string();
        self.run_one(&full, &mut routine);
        self
    }

    fn run_one(&mut self, name: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            budget: self.budget,
            result: None,
        };
        routine(&mut bencher);
        match bencher.result {
            Some(m) => {
                println!(
                    "{name:<50} time: [{} ± {}]  ({} iterations, {} outliers rejected)",
                    render_duration(m.median),
                    render_duration(m.sigma),
                    m.iters,
                    m.outliers
                );
            }
            None => println!("{name:<50} (no measurement recorded)"),
        }
    }
}

/// Groups benchmark functions into one callable (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups (mirror of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            budget: Budget::new(true),
            result: None,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        let m = b.result.expect("measured");
        assert!(m.iters > 0);
        assert!(m.median < Duration::from_secs(1));
        assert!(m.outliers < m.iters, "rejection must keep some samples");
    }

    #[test]
    fn summary_is_median_with_outliers_rejected() {
        // A tight cluster around 100ns plus one wild 10µs spike: the spike
        // must be rejected and neither the median nor σ may feel it.
        let mut samples = vec![98, 99, 100, 100, 101, 102, 99, 101, 100, 98];
        samples.push(10_000);
        let m = summarize(samples);
        assert_eq!(m.iters, 11);
        assert_eq!(m.outliers, 1);
        assert_eq!(m.median, Duration::from_nanos(100));
        assert!(m.sigma < Duration::from_nanos(5), "sigma {:?}", m.sigma);
    }

    #[test]
    fn summary_of_identical_samples_rejects_nothing() {
        let m = summarize(vec![50; 32]);
        assert_eq!(m.outliers, 0);
        assert_eq!(m.median, Duration::from_nanos(50));
        assert_eq!(m.sigma, Duration::ZERO);
    }

    #[test]
    fn batched_excludes_setup() {
        let mut b = Bencher {
            budget: Budget::new(true),
            result: None,
        };
        b.iter_batched(|| vec![0_u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.result.is_some());
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("ticket", 4).to_string(), "ticket/4");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
