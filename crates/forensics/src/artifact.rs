//! Versioned, self-describing trace artifacts.
//!
//! A [`TraceArtifact`] is the on-disk witness of one minimized checker
//! failure: which checker and object failed, the 1-minimal scripted
//! environment context that forces the failure, the options fingerprint
//! the replay must use, the expected verdict (reason + full first-failure
//! log), and the shrink accounting. Artifacts are plain JSON
//! (`FORMAT_VERSION` gates future migrations) and are replayed by
//! [`crate::registry::replay_artifact`] / the `ccal-replay` binary.

use std::path::{Path, PathBuf};

use ccal_core::forensics::ShrinkNote;
use ccal_core::log::Log;

use crate::json::Json;
use crate::scripted::ScriptedContext;
use crate::wire::{self, WireError};

/// Current artifact format version.
pub const FORMAT_VERSION: i64 = 1;

/// The expected verdict a replay must reproduce bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpectedFailure {
    /// The failure reason exactly as the checker reported it.
    pub reason: String,
    /// The case detail string (context/args/script indices).
    pub detail: String,
    /// The full first-failure log.
    pub log: Log,
}

/// The options fingerprint a replay runs under. Replay always bypasses
/// the parallel/POR/dedup machinery — these fields *record* that, so an
/// artifact is self-describing about the configuration that validates it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOptions {
    /// Machine fuel of the checker run.
    pub machine_fuel: u64,
    /// Worker threads (always 1 for replay).
    pub workers: u64,
    /// Upper-run memoization (always off for replay).
    pub dedup: bool,
    /// Partial-order reduction (always off for replay).
    pub por: bool,
    /// Prefix-sharing of lower runs (always off for replay; decoded
    /// tolerantly — artifacts written before the knob existed read as
    /// `false`).
    pub prefix_share: bool,
    /// Deep prefix-sharing via query-point snapshots (always off for
    /// replay; decoded tolerantly like `prefix_share`).
    pub deep_share: bool,
    /// ClightX execution tier at capture time: `true` if primitive bodies
    /// ran on the compiled bytecode VM, `false` for the tree-walking
    /// interpreter. Informational — the tiers are bit-identical, so a
    /// replay validates on either — and decoded tolerantly (artifacts
    /// written before the compile tier existed read as `false`).
    pub bytecode: bool,
    /// Convergence dedup of execution states (always off for replay — a
    /// replay must *execute* the witness, never answer it from a cache;
    /// decoded tolerantly like `prefix_share`).
    pub state_dedup: bool,
    /// Semantic sharing keys at capture time: `true` if warm-state
    /// families were keyed by content (`ShareKey`), `false` under the
    /// `CCAL_SHARE_SEMANTIC=0` pin. Informational — replay runs
    /// memo-free, so the key space is irrelevant to validation — and
    /// decoded tolerantly (artifacts written before the flag existed
    /// read as `false`).
    pub share_semantic: bool,
}

/// One serialized failure witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceArtifact {
    /// Format version ([`FORMAT_VERSION`]).
    pub version: i64,
    /// The checker that failed: `sim`, `live`, `linz`, `race`, `seqref`.
    pub checker: String,
    /// The seeded-bug object the checker ran against.
    pub object: String,
    /// The replay configuration fingerprint.
    pub options: ReplayOptions,
    /// The minimized adversarial context.
    pub context: ScriptedContext,
    /// The verdict the replay must reproduce.
    pub expected: ExpectedFailure,
    /// Shrink accounting (original/minimized steps, oracle runs).
    pub shrink: ShrinkNote,
}

impl TraceArtifact {
    /// Encodes the artifact as a JSON document.
    pub fn encode(&self) -> Json {
        Json::obj([
            ("version", Json::Int(self.version)),
            ("checker", Json::Str(self.checker.clone())),
            ("object", Json::Str(self.object.clone())),
            (
                "options",
                Json::obj([
                    ("machine_fuel", Json::Int(self.options.machine_fuel as i64)),
                    ("workers", Json::Int(self.options.workers as i64)),
                    ("dedup", Json::Bool(self.options.dedup)),
                    ("por", Json::Bool(self.options.por)),
                    ("prefix_share", Json::Bool(self.options.prefix_share)),
                    ("deep_share", Json::Bool(self.options.deep_share)),
                    ("bytecode", Json::Bool(self.options.bytecode)),
                    ("state_dedup", Json::Bool(self.options.state_dedup)),
                    ("share_semantic", Json::Bool(self.options.share_semantic)),
                ]),
            ),
            ("context", self.context.encode()),
            (
                "expected",
                Json::obj([
                    ("reason", Json::Str(self.expected.reason.clone())),
                    ("detail", Json::Str(self.expected.detail.clone())),
                    ("log", wire::encode_log(&self.expected.log)),
                ]),
            ),
            (
                "shrink",
                Json::obj([
                    (
                        "original_steps",
                        Json::Int(self.shrink.original_steps as i64),
                    ),
                    (
                        "minimized_steps",
                        Json::Int(self.shrink.minimized_steps as i64),
                    ),
                    ("iterations", Json::Int(self.shrink.iterations as i64)),
                ]),
            ),
        ])
    }

    /// Decodes an artifact from JSON.
    ///
    /// # Errors
    ///
    /// [`WireError`] on shape mismatches or unsupported versions.
    pub fn decode(j: &Json) -> Result<Self, WireError> {
        let version = j
            .get("version")
            .and_then(Json::as_int)
            .ok_or_else(|| WireError("artifact missing `version`".into()))?;
        if version != FORMAT_VERSION {
            return Err(WireError(format!(
                "unsupported artifact version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let s = |field: &str| -> Result<String, WireError> {
            j.get(field)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| WireError(format!("artifact missing `{field}`")))
        };
        let checker = s("checker")?;
        let object = s("object")?;
        let oj = j
            .get("options")
            .ok_or_else(|| WireError("artifact missing `options`".into()))?;
        let ou64 = |field: &str| -> Result<u64, WireError> {
            oj.get(field)
                .and_then(Json::as_int)
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| WireError(format!("options missing `{field}`")))
        };
        let obool = |field: &str| -> Result<bool, WireError> {
            oj.get(field)
                .and_then(Json::as_bool)
                .ok_or_else(|| WireError(format!("options missing `{field}`")))
        };
        let options = ReplayOptions {
            machine_fuel: ou64("machine_fuel")?,
            workers: ou64("workers")?,
            dedup: obool("dedup")?,
            por: obool("por")?,
            // Tolerant: the field postdates FORMAT_VERSION 1, and replay
            // bypasses the memo structurally either way.
            prefix_share: oj
                .get("prefix_share")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            deep_share: oj
                .get("deep_share")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            // Tolerant like `prefix_share`: predates nothing an old
            // artifact depends on — both tiers validate identically.
            bytecode: oj.get("bytecode").and_then(Json::as_bool).unwrap_or(false),
            // Tolerant: replay forces convergence dedup off structurally,
            // so artifacts written before the flag existed read as `false`.
            state_dedup: oj
                .get("state_dedup")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            // Tolerant: informational provenance only — replay runs
            // memo-free, on either key space.
            share_semantic: oj
                .get("share_semantic")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        };
        let context = ScriptedContext::decode(
            j.get("context")
                .ok_or_else(|| WireError("artifact missing `context`".into()))?,
        )?;
        let ej = j
            .get("expected")
            .ok_or_else(|| WireError("artifact missing `expected`".into()))?;
        let es = |field: &str| -> Result<String, WireError> {
            ej.get(field)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| WireError(format!("expected missing `{field}`")))
        };
        let expected = ExpectedFailure {
            reason: es("reason")?,
            detail: es("detail")?,
            log: wire::decode_log(
                ej.get("log")
                    .ok_or_else(|| WireError("expected missing `log`".into()))?,
            )?,
        };
        let sj = j
            .get("shrink")
            .ok_or_else(|| WireError("artifact missing `shrink`".into()))?;
        let susize = |field: &str| -> Result<usize, WireError> {
            sj.get(field)
                .and_then(Json::as_int)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| WireError(format!("shrink missing `{field}`")))
        };
        let shrink = ShrinkNote {
            checker: checker.clone(),
            object: object.clone(),
            original_steps: susize("original_steps")?,
            minimized_steps: susize("minimized_steps")?,
            iterations: susize("iterations")?,
            artifact: String::new(),
        };
        Ok(Self {
            version,
            checker,
            object,
            options,
            context,
            expected,
            shrink,
        })
    }

    /// The canonical file name: `<checker>-<object>-<hash>.json`, where
    /// the hash is FNV-1a over the encoded context (so distinct minimized
    /// contexts for the same fixture get distinct names, and re-emitting
    /// the same one is idempotent).
    pub fn file_name(&self) -> String {
        let payload = self.context.encode().pretty();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in payload.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{}-{}-{:08x}.json", self.checker, self.object, h as u32)
    }

    /// Writes the artifact into `dir`, creating it if needed. Returns the
    /// full path.
    ///
    /// # Errors
    ///
    /// Any I/O error, stringified.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.encode().pretty())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        Ok(path)
    }

    /// Loads an artifact from a file.
    ///
    /// # Errors
    ///
    /// I/O or decode errors, stringified.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let j = crate::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::decode(&j).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccal_core::event::Event;
    use ccal_core::id::Pid;
    use std::collections::BTreeMap;

    fn sample() -> TraceArtifact {
        TraceArtifact {
            version: FORMAT_VERSION,
            checker: "sim".into(),
            object: "scratch-sensitive".into(),
            options: ReplayOptions {
                machine_fuel: 10_000,
                workers: 1,
                dedup: false,
                por: false,
                prefix_share: false,
                deep_share: false,
                bytecode: false,
                state_dedup: false,
                share_semantic: false,
            },
            context: ScriptedContext {
                domain: vec![Pid(0), Pid(1)],
                env_fuel: 10_000,
                schedule: vec![Pid(1)],
                players: BTreeMap::new(),
            },
            expected: ExpectedFailure {
                reason: "return values differ: 1 vs 0".into(),
                detail: "context #0, args #0 []".into(),
                log: ccal_core::log::Log::from_events([Event::sched(Pid(1))]),
            },
            shrink: ShrinkNote {
                checker: "sim".into(),
                object: "scratch-sensitive".into(),
                original_steps: 20,
                minimized_steps: 1,
                iterations: 42,
                artifact: String::new(),
            },
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let a = sample();
        let text = a.encode().pretty();
        let back = TraceArtifact::decode(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn version_gate_rejects_future_formats() {
        let mut j = sample().encode();
        if let Json::Obj(m) = &mut j {
            m.insert("version".into(), Json::Int(99));
        }
        assert!(TraceArtifact::decode(&j).is_err());
    }

    #[test]
    fn file_name_is_deterministic_and_tagged() {
        let a = sample();
        let n1 = a.file_name();
        assert_eq!(n1, a.file_name());
        assert!(n1.starts_with("sim-scratch-sensitive-"));
        assert!(n1.ends_with(".json"));
        let mut b = sample();
        b.context.schedule.push(Pid(0));
        assert_ne!(b.file_name(), n1);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("ccal-forensics-test-artifacts");
        let a = sample();
        let path = a.save(&dir).unwrap();
        let back = TraceArtifact::load(&path).unwrap();
        assert_eq!(back, a);
        let _ = std::fs::remove_file(path);
    }
}
