//! `ccal-replay` — deterministic replay of failure-forensics trace
//! artifacts.
//!
//! ```text
//! ccal-replay <artifact.json | corpus-dir>...   replay artifacts/corpora
//! ccal-replay --emit <dir>                      investigate every fixture,
//!                                               write minimized artifacts
//! ccal-replay --selftest                        investigate + replay +
//!                                               1-minimality, every fixture
//! ```
//!
//! Exit codes: `0` all verdicts reproduced; `1` verdict drift or a failed
//! investigation; `2` usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ccal_forensics::{
    all_fixtures, investigate, one_minimal, probe, replay_artifact, RunConfig, TraceArtifact,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: ccal-replay <artifact.json | corpus-dir>...\n       \
         ccal-replay --emit <dir>\n       \
         ccal-replay --selftest"
    );
    ExitCode::from(2)
}

/// Expands artifact files and corpus directories into a flat file list.
fn collect_artifacts(paths: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for p in paths {
        let path = Path::new(p);
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect();
            entries.sort();
            if entries.is_empty() {
                return Err(format!("no .json artifacts in {}", path.display()));
            }
            files.extend(entries);
        } else if path.is_file() {
            files.push(path.to_path_buf());
        } else {
            return Err(format!("no such file or directory: {}", path.display()));
        }
    }
    Ok(files)
}

fn replay_files(files: &[PathBuf]) -> ExitCode {
    let mut drifted = 0_usize;
    for f in files {
        let a = match TraceArtifact::load(f) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        match replay_artifact(&a) {
            Ok(()) => println!(
                "ok   {}/{} ({} steps): {}",
                a.checker,
                a.object,
                a.context.steps(),
                a.expected.reason
            ),
            Err(e) => {
                drifted += 1;
                eprintln!("FAIL {}: {e}", f.display());
            }
        }
    }
    if drifted == 0 {
        println!("replayed {} artifact(s), all verdicts reproduced", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("{drifted} of {} artifact(s) drifted", files.len());
        ExitCode::FAILURE
    }
}

fn emit(dir: &Path) -> ExitCode {
    let cfg = RunConfig::replay();
    let mut failed = false;
    for fx in all_fixtures() {
        match investigate(&fx, &cfg) {
            Ok(a) => match a.save(dir) {
                Ok(path) => println!("{} — wrote {}", a.shrink, path.display()),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                failed = true;
                eprintln!("FAIL {}/{}: {e}", fx.checker, fx.object);
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn selftest() -> ExitCode {
    let cfg = RunConfig::replay();
    let mut failed = false;
    for fx in all_fixtures() {
        let a = match investigate(&fx, &cfg) {
            Ok(a) => a,
            Err(e) => {
                failed = true;
                eprintln!("FAIL {}/{}: investigate: {e}", fx.checker, fx.object);
                continue;
            }
        };
        if let Err(e) = replay_artifact(&a) {
            failed = true;
            eprintln!("FAIL {}/{}: replay: {e}", fx.checker, fx.object);
            continue;
        }
        if !one_minimal(&a.context, &mut |sc| probe(&fx, sc).is_some()) {
            failed = true;
            eprintln!(
                "FAIL {}/{}: minimized context is not 1-minimal",
                fx.checker, fx.object
            );
            continue;
        }
        println!("ok   {}", a.shrink);
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("selftest passed for every fixture");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        None => usage(),
        Some((flag, rest)) if flag == "--selftest" => {
            if rest.is_empty() {
                selftest()
            } else {
                usage()
            }
        }
        Some((flag, rest)) if flag == "--emit" => match rest {
            [dir] => emit(Path::new(dir)),
            _ => usage(),
        },
        Some((flag, _)) if flag.starts_with('-') => usage(),
        _ => match collect_artifacts(&args) {
            Ok(files) => replay_files(&files),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
    }
}
